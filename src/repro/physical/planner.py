"""Compilation of logical SGA plans into physical dataflow graphs.

Each logical operator maps to one physical operator; PATTERN expands
internally into its binary join tree (Section 6.2.2) and PATH selects one
of the two physical implementations (Sections 6.2.3-6.2.4).  Identical
logical sub-plans are compiled once and shared — plans are immutable
value objects, so structural equality identifies common sub-expressions.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass

from repro.algebra.operators import Filter, Path, Pattern, Plan, Relabel, Union, WScan
from repro.dataflow.graph import DataflowGraph, PhysicalOperator, SinkOp
from repro.errors import PlanError
from repro.physical.coalesce_op import CoalesceOp
from repro.physical.exchange import (
    ShardBroadcastOp,
    ShardPartitionFilterOp,
    ShardRouteOp,
)
from repro.physical.filter import FilterOp
from repro.physical.join import PatternOp
from repro.physical.rpq_negative import NegativeTupleRpqOp
from repro.physical.spath import SPathOp
from repro.physical.union import UnionOp
from repro.physical.wscan import WScanOp

#: Available physical PATH implementations (Table 3 swaps these).
PATH_IMPLS = ("spath", "negative")


class ShardSpec:
    """Compilation-time shard parameters (sharded execution only).

    Carries the shard's routing :class:`~repro.core.partition.ShardContext`
    plus a deterministic uid allocator for exchange endpoints.
    Compilation is deterministic, so compiling the same plan sequence on
    every shard — each with a ``ShardSpec`` starting from the same
    ``next_uid`` — assigns identical uids to corresponding operators,
    which is what lets shard ``i`` route a delta to "endpoint ``k`` on
    shard ``j``" without any name exchange.
    """

    def __init__(self, ctx, next_uid: int = 0):
        self.ctx = ctx
        self.next_uid = next_uid

    def allocate(self) -> int:
        uid = self.next_uid
        self.next_uid += 1
        return uid


@dataclass
class PhysicalPlan:
    """A compiled dataflow with its default slide interval and sink."""

    graph: DataflowGraph
    sink: SinkOp
    slide: int


def compile_plan(
    plan: Plan,
    path_impl: str = "spath",
    materialize_paths: bool = True,
    coalesce_intermediate: bool = True,
) -> PhysicalPlan:
    """Compile a logical plan; results arrive at the returned sink.

    ``materialize_paths=False`` makes PATH operators emit plain derived
    edges instead of reconstructing hop sequences — cheaper when only
    reachability pairs are consumed (the DD baseline cannot return paths
    at all, so the comparative benchmarks disable materialization).
    """
    graph = DataflowGraph()
    cache: dict[Plan, PhysicalOperator] = {}
    sink = compile_into(
        plan, graph, cache, path_impl, materialize_paths, coalesce_intermediate
    )
    return PhysicalPlan(graph=graph, sink=sink, slide=plan_slide(plan))


def compile_into(
    plan: Plan,
    graph: DataflowGraph,
    cache: dict[Plan, PhysicalOperator],
    path_impl: str = "spath",
    materialize_paths: bool = True,
    coalesce_intermediate: bool = True,
    shard: ShardSpec | None = None,
) -> SinkOp:
    """Compile a plan into an existing dataflow, sharing cached sub-plans.

    Plans are immutable value objects, so compiling several queries into
    one graph with a shared ``cache`` deduplicates every common
    sub-expression — the multi-query sharing of
    :class:`repro.engine.multi.MultiQueryProcessor`.  Returns the
    query's private sink.

    With a :class:`ShardSpec`, the compiled dataflow is one shard of a
    partition-parallel deployment: PATH forests are partitioned by root,
    PATTERN joins by join key, and exchange operators are spliced onto
    the edges where derived streams must be re-partitioned or
    replicated (see :mod:`repro.physical.exchange`).  A replicated
    stream feeding the sink is filtered to this shard's partition, so
    merging all shards' sinks yields exactly the serial result multiset.
    """
    if path_impl not in PATH_IMPLS:
        raise PlanError(
            f"unknown PATH implementation {path_impl!r}; expected one of {PATH_IMPLS}"
        )
    plan = fuse_relabels(plan)
    options = _Options(path_impl, materialize_paths, coalesce_intermediate, shard)
    root = _build(plan, graph, cache, options)
    sink = SinkOp()
    graph.add(sink)
    if shard is not None and not _stream_partitioned(plan):
        filt = ShardPartitionFilterOp(shard.ctx, plan.out_label)
        graph.add(filt)
        graph.connect(root, filt, 0)
        root = filt
    graph.connect(root, sink, 0)
    return sink


def evict_dead(
    cache: dict[Plan, PhysicalOperator],
    removed: list[PhysicalOperator],
) -> int:
    """Evict cache entries whose physical operator left the dataflow.

    The shared-subexpression cache maps (sub-)plans to compiled
    operators; when a live engine unregisters a query and prunes
    now-unshared operators, the corresponding entries must go too —
    otherwise a later registration of the same sub-plan would splice a
    dangling operator back into the graph.  Returns the number of
    entries evicted.
    """
    dead = set(map(id, removed))
    stale = [key for key, op in cache.items() if id(op) in dead]
    for key in stale:
        del cache[key]
    return len(stale)


def fuse_relabels(plan: Plan) -> Plan:
    """The plan-level rewrite the physical compiler applies before
    operator selection — the "optimized plan" stage of the
    :mod:`repro.ql` pipeline.  Idempotent; semantics-preserving."""
    return _fuse_relabels(plan, Counter(_walk(plan)))


def _fuse_relabels(plan: Plan, refs: Counter) -> Plan:
    """Fuse ``Relabel`` into its producer where the producer is private.

    PATH, PATTERN and UNION carry their own output label, so a relabel of
    an unshared producer is just a different label on the same operator —
    fusing it removes one per-result tuple rewrite from the hot path.
    Shared producers (referenced elsewhere in the plan) are left alone.
    """
    if isinstance(plan, Relabel):
        child = _fuse_relabels(plan.child, refs)
        if refs[plan.child] == 1:
            if isinstance(child, (Path, Pattern, Union)):
                return dataclasses.replace(child, label=plan.label)
            if isinstance(child, Relabel):
                return dataclasses.replace(child, label=plan.label)
        return Relabel(child, plan.label)
    if isinstance(plan, Filter):
        return Filter(_fuse_relabels(plan.child, refs), plan.predicate)
    if isinstance(plan, Union):
        return Union(
            _fuse_relabels(plan.left, refs),
            _fuse_relabels(plan.right, refs),
            plan.label,
        )
    if isinstance(plan, Pattern):
        conjuncts = tuple(
            dataclasses.replace(c, plan=_fuse_relabels(c.plan, refs))
            for c in plan.inputs
        )
        return dataclasses.replace(plan, inputs=conjuncts)
    if isinstance(plan, Path):
        pairs = tuple(
            (label, _fuse_relabels(child, refs)) for label, child in plan.inputs
        )
        return dataclasses.replace(plan, inputs=pairs)
    return plan


def plan_slide(plan: Plan) -> int:
    """The slide driving watermark advancement: the finest one in the plan."""
    slides = [
        node.window.slide
        for node in _walk(plan)
        if isinstance(node, WScan)
    ]
    if not slides:
        raise PlanError("plan has no WSCAN leaves")
    return min(slides)


def _walk(plan: Plan):
    yield plan
    for child in plan.children():
        yield from _walk(child)


def _stateful_input(
    child_plan: Plan,
    child_op: PhysicalOperator,
    graph: DataflowGraph,
    cache: dict[Plan, PhysicalOperator],
    options: "_Options",
    rep: bool = False,
) -> PhysicalOperator:
    """Interpose the Section 5.1 set-semantics coalescing stage.

    PATTERN and PATH may emit value-equivalent results with overlapping
    validity (one per witness subgraph / extension); feeding those
    duplicates into another *stateful* operator multiplies its state and
    probe work, so a coalescing stage is inserted exactly on
    stateful→stateful edges.  Stateless consumers and the sink see the
    raw stream (coalescing there would be pure overhead).

    Sharded: coalescing is keyed per result, so a *partitioned* input
    stream (whose duplicates for one result key may live on several
    shards) is first re-partitioned by result key through a
    :class:`~repro.physical.exchange.ShardRouteOp` — each shard's
    coalescer then sees exactly the serial duplicate stream for the keys
    it owns.  A replicated input (``rep`` chains, i.e. PATH ports) feeds
    a coalescer replicated on every shard instead.
    """
    producer = _strip_relabels(child_plan)
    if not isinstance(producer, (Pattern, Path)):
        return child_op
    shard = options.shard
    key = (
        ("coalesce", child_plan)
        if shard is None
        else ("coalesce", child_plan, rep)
    )
    cached = cache.get(key)  # type: ignore[arg-type]
    if cached is not None:
        return cached
    if shard is not None and not rep and _stream_partitioned(child_plan):
        route_key = ("route", child_plan)
        route = cache.get(route_key)  # type: ignore[arg-type]
        if route is None:
            route = ShardRouteOp(
                shard.ctx, shard.allocate(), child_plan.out_label
            )
            graph.add(route)
            graph.connect(child_op, route, 0)
            cache[route_key] = route  # type: ignore[index]
        child_op = route
    stage = CoalesceOp(child_plan.out_label)
    if shard is not None and not rep:
        # The coalescer owns result keys routed to this shard; shard
        # rebalancing re-partitions its state instead of copying it.
        stage.partitioned = True
    graph.add(stage)
    graph.connect(child_op, stage, 0)
    cache[key] = stage  # type: ignore[index]
    return stage


def _strip_relabels(plan: Plan) -> Plan:
    while isinstance(plan, Relabel):
        plan = plan.child
    return plan


@dataclass(frozen=True)
class _Options:
    path_impl: str
    materialize_paths: bool
    coalesce_intermediate: bool
    shard: ShardSpec | None = None


def _stream_partitioned(plan: Plan) -> bool:
    """Whether a (non-``rep``) compiled plan's output stream is
    *partitioned* across shards — each delta produced on exactly one
    shard — as opposed to *replicated* (full stream on every shard).

    WSCAN streams are replicated (every shard windows every input
    edge); a PATH partitions by tree root, a multi-conjunct PATTERN by
    its final join key; stateless operators inherit (mixed UNIONs are
    aligned to partitioned by the compiler).
    """
    if isinstance(plan, WScan):
        return False
    if isinstance(plan, (Filter, Relabel)):
        return _stream_partitioned(plan.child)
    if isinstance(plan, Union):
        return _stream_partitioned(plan.left) or _stream_partitioned(plan.right)
    if isinstance(plan, Pattern):
        if len(plan.inputs) == 1:
            return _stream_partitioned(plan.inputs[0].plan)
        return True
    if isinstance(plan, Path):
        return True
    raise PlanError(f"cannot compile plan node {plan!r}")


def _shard_filter(
    child_plan: Plan,
    child_op: PhysicalOperator,
    graph: DataflowGraph,
    cache: dict,
    shard: ShardSpec,
) -> PhysicalOperator:
    """Cached partition filter turning a replicated stream partitioned."""
    key = ("pfilter", child_plan)
    cached = cache.get(key)
    if cached is not None:
        return cached
    filt = ShardPartitionFilterOp(shard.ctx, child_plan.out_label)
    graph.add(filt)
    graph.connect(child_op, filt, 0)
    cache[key] = filt
    return filt


def _build(
    plan: Plan,
    graph: DataflowGraph,
    cache: dict[Plan, PhysicalOperator],
    options: "_Options",
    rep: bool = False,
) -> PhysicalOperator:
    """Compile one plan node (and, recursively, its inputs).

    ``rep`` marks the *replication zone*: the subtree feeds a PATH
    operator (directly or through stateless stages), whose windowed
    adjacency needs the full stream on every shard.  Inside the zone,
    PATH nodes compile unpartitioned (their rederivations then stay
    shard-local, preserving serial emission order) and partitioned
    PATTERN outputs are broadcast.  PATTERN inputs reset the zone: joins
    are order-insensitive at the net level, so partitioned streams feed
    them via key exchange instead of replication.  Unsharded compilation
    ignores the flag entirely.
    """
    shard = options.shard
    if shard is None:
        key: object = plan
        rep = False
    elif isinstance(plan, WScan):
        key = plan  # replicated either way: one instance serves both zones
    else:
        key = (plan, rep)
    cached = cache.get(key)
    if cached is not None:
        return cached

    if shard is not None and rep and isinstance(plan, Pattern):
        if _stream_partitioned(plan):
            # A partitioned producer inside the replication zone: build
            # the bare operator (shared with non-zone consumers), then
            # replicate its output through a broadcast exchange.
            bare = _build(plan, graph, cache, options, rep=False)
            op = ShardBroadcastOp(shard.ctx, shard.allocate(), plan.out_label)
            graph.add(op)
            graph.connect(bare, op, 0)
            cache[key] = op
            return op
        op = _build(plan, graph, cache, options, rep=False)
        cache[key] = op
        return op

    if isinstance(plan, WScan):
        source = graph.add_source(plan.label)
        op = WScanOp(plan.label, plan.window, plan.prefilter)
        graph.add(op)
        graph.connect(source, op, 0)
    elif isinstance(plan, Filter):
        child = _build(plan.child, graph, cache, options, rep)
        op = FilterOp(plan.predicate)
        graph.add(op)
        graph.connect(child, op, 0)
    elif isinstance(plan, Relabel):
        child = _build(plan.child, graph, cache, options, rep)
        # The degenerate single-input UNION: relabel, payloads preserved.
        op = UnionOp(plan.label)
        graph.add(op)
        graph.connect(child, op, 0)
    elif isinstance(plan, Union):
        left = _build(plan.left, graph, cache, options, rep)
        right = _build(plan.right, graph, cache, options, rep)
        if shard is not None and not rep:
            # Mixed input statuses would make the merged stream neither
            # replicated nor partitioned; filter the replicated side to
            # this shard's partition so the union is cleanly partitioned.
            left_part = _stream_partitioned(plan.left)
            right_part = _stream_partitioned(plan.right)
            if left_part and not right_part:
                right = _shard_filter(plan.right, right, graph, cache, shard)
            elif right_part and not left_part:
                left = _shard_filter(plan.left, left, graph, cache, shard)
        op = UnionOp(plan.label)
        graph.add(op)
        graph.connect(left, op, 0)
        graph.connect(right, op, 1)
    elif isinstance(plan, Pattern):
        op = PatternOp(
            [(c.src_var, c.trg_var) for c in plan.inputs],
            plan.src_var,
            plan.trg_var,
            plan.label,
        )
        graph.add(op)
        port_replicated: list[bool] = []
        for port, conjunct in enumerate(plan.inputs):
            child = _build(conjunct.plan, graph, cache, options, rep=False)
            if options.coalesce_intermediate:
                child = _stateful_input(
                    conjunct.plan, child, graph, cache, options, rep=False
                )
            port_replicated.append(not _stream_partitioned(conjunct.plan))
            graph.connect(child, op, port)
        if shard is not None:
            op.configure_shard(shard.ctx, shard.allocate(), port_replicated)
    elif isinstance(plan, Path):
        labels = [label for label, _ in plan.inputs]
        if options.path_impl == "spath":
            op = SPathOp(
                labels, plan.regex, plan.label, options.materialize_paths
            )
        else:
            op = NegativeTupleRpqOp(
                labels, plan.regex, plan.label, options.materialize_paths
            )
        graph.add(op)
        if shard is not None and not rep:
            op.set_shard(shard.ctx)
        for port, (_, child_plan) in enumerate(plan.inputs):
            child = _build(child_plan, graph, cache, options, rep=True)
            if options.coalesce_intermediate:
                child = _stateful_input(
                    child_plan, child, graph, cache, options, rep=True
                )
            graph.connect(child, op, port)
    else:
        raise PlanError(f"cannot compile plan node {plan!r}")

    cache[key] = op
    return op
