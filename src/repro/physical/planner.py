"""Compilation of logical SGA plans into physical dataflow graphs.

Each logical operator maps to one physical operator; PATTERN expands
internally into its binary join tree (Section 6.2.2) and PATH selects one
of the two physical implementations (Sections 6.2.3-6.2.4).  Identical
logical sub-plans are compiled once and shared — plans are immutable
value objects, so structural equality identifies common sub-expressions.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass

from repro.algebra.operators import Filter, Path, Pattern, Plan, Relabel, Union, WScan
from repro.dataflow.graph import DataflowGraph, PhysicalOperator, SinkOp
from repro.errors import PlanError
from repro.physical.coalesce_op import CoalesceOp
from repro.physical.filter import FilterOp
from repro.physical.join import PatternOp
from repro.physical.rpq_negative import NegativeTupleRpqOp
from repro.physical.spath import SPathOp
from repro.physical.union import UnionOp
from repro.physical.wscan import WScanOp

#: Available physical PATH implementations (Table 3 swaps these).
PATH_IMPLS = ("spath", "negative")


@dataclass
class PhysicalPlan:
    """A compiled dataflow with its default slide interval and sink."""

    graph: DataflowGraph
    sink: SinkOp
    slide: int


def compile_plan(
    plan: Plan,
    path_impl: str = "spath",
    materialize_paths: bool = True,
    coalesce_intermediate: bool = True,
) -> PhysicalPlan:
    """Compile a logical plan; results arrive at the returned sink.

    ``materialize_paths=False`` makes PATH operators emit plain derived
    edges instead of reconstructing hop sequences — cheaper when only
    reachability pairs are consumed (the DD baseline cannot return paths
    at all, so the comparative benchmarks disable materialization).
    """
    graph = DataflowGraph()
    cache: dict[Plan, PhysicalOperator] = {}
    sink = compile_into(
        plan, graph, cache, path_impl, materialize_paths, coalesce_intermediate
    )
    return PhysicalPlan(graph=graph, sink=sink, slide=plan_slide(plan))


def compile_into(
    plan: Plan,
    graph: DataflowGraph,
    cache: dict[Plan, PhysicalOperator],
    path_impl: str = "spath",
    materialize_paths: bool = True,
    coalesce_intermediate: bool = True,
) -> SinkOp:
    """Compile a plan into an existing dataflow, sharing cached sub-plans.

    Plans are immutable value objects, so compiling several queries into
    one graph with a shared ``cache`` deduplicates every common
    sub-expression — the multi-query sharing of
    :class:`repro.engine.multi.MultiQueryProcessor`.  Returns the
    query's private sink.
    """
    if path_impl not in PATH_IMPLS:
        raise PlanError(
            f"unknown PATH implementation {path_impl!r}; expected one of {PATH_IMPLS}"
        )
    plan = fuse_relabels(plan)
    options = _Options(path_impl, materialize_paths, coalesce_intermediate)
    root = _build(plan, graph, cache, options)
    sink = SinkOp()
    graph.add(sink)
    graph.connect(root, sink, 0)
    return sink


def evict_dead(
    cache: dict[Plan, PhysicalOperator],
    removed: list[PhysicalOperator],
) -> int:
    """Evict cache entries whose physical operator left the dataflow.

    The shared-subexpression cache maps (sub-)plans to compiled
    operators; when a live engine unregisters a query and prunes
    now-unshared operators, the corresponding entries must go too —
    otherwise a later registration of the same sub-plan would splice a
    dangling operator back into the graph.  Returns the number of
    entries evicted.
    """
    dead = set(map(id, removed))
    stale = [key for key, op in cache.items() if id(op) in dead]
    for key in stale:
        del cache[key]
    return len(stale)


def fuse_relabels(plan: Plan) -> Plan:
    """The plan-level rewrite the physical compiler applies before
    operator selection — the "optimized plan" stage of the
    :mod:`repro.ql` pipeline.  Idempotent; semantics-preserving."""
    return _fuse_relabels(plan, Counter(_walk(plan)))


def _fuse_relabels(plan: Plan, refs: Counter) -> Plan:
    """Fuse ``Relabel`` into its producer where the producer is private.

    PATH, PATTERN and UNION carry their own output label, so a relabel of
    an unshared producer is just a different label on the same operator —
    fusing it removes one per-result tuple rewrite from the hot path.
    Shared producers (referenced elsewhere in the plan) are left alone.
    """
    if isinstance(plan, Relabel):
        child = _fuse_relabels(plan.child, refs)
        if refs[plan.child] == 1:
            if isinstance(child, (Path, Pattern, Union)):
                return dataclasses.replace(child, label=plan.label)
            if isinstance(child, Relabel):
                return dataclasses.replace(child, label=plan.label)
        return Relabel(child, plan.label)
    if isinstance(plan, Filter):
        return Filter(_fuse_relabels(plan.child, refs), plan.predicate)
    if isinstance(plan, Union):
        return Union(
            _fuse_relabels(plan.left, refs),
            _fuse_relabels(plan.right, refs),
            plan.label,
        )
    if isinstance(plan, Pattern):
        conjuncts = tuple(
            dataclasses.replace(c, plan=_fuse_relabels(c.plan, refs))
            for c in plan.inputs
        )
        return dataclasses.replace(plan, inputs=conjuncts)
    if isinstance(plan, Path):
        pairs = tuple(
            (label, _fuse_relabels(child, refs)) for label, child in plan.inputs
        )
        return dataclasses.replace(plan, inputs=pairs)
    return plan


def plan_slide(plan: Plan) -> int:
    """The slide driving watermark advancement: the finest one in the plan."""
    slides = [
        node.window.slide
        for node in _walk(plan)
        if isinstance(node, WScan)
    ]
    if not slides:
        raise PlanError("plan has no WSCAN leaves")
    return min(slides)


def _walk(plan: Plan):
    yield plan
    for child in plan.children():
        yield from _walk(child)


def _stateful_input(
    child_plan: Plan,
    child_op: PhysicalOperator,
    graph: DataflowGraph,
    cache: dict[Plan, PhysicalOperator],
) -> PhysicalOperator:
    """Interpose the Section 5.1 set-semantics coalescing stage.

    PATTERN and PATH may emit value-equivalent results with overlapping
    validity (one per witness subgraph / extension); feeding those
    duplicates into another *stateful* operator multiplies its state and
    probe work, so a coalescing stage is inserted exactly on
    stateful→stateful edges.  Stateless consumers and the sink see the
    raw stream (coalescing there would be pure overhead).
    """
    producer = _strip_relabels(child_plan)
    if not isinstance(producer, (Pattern, Path)):
        return child_op
    key = ("coalesce", child_plan)
    cached = cache.get(key)  # type: ignore[arg-type]
    if cached is not None:
        return cached
    stage = CoalesceOp(child_plan.out_label)
    graph.add(stage)
    graph.connect(child_op, stage, 0)
    cache[key] = stage  # type: ignore[index]
    return stage


def _strip_relabels(plan: Plan) -> Plan:
    while isinstance(plan, Relabel):
        plan = plan.child
    return plan


@dataclass(frozen=True)
class _Options:
    path_impl: str
    materialize_paths: bool
    coalesce_intermediate: bool


def _build(
    plan: Plan,
    graph: DataflowGraph,
    cache: dict[Plan, PhysicalOperator],
    options: "_Options",
) -> PhysicalOperator:
    cached = cache.get(plan)
    if cached is not None:
        return cached

    if isinstance(plan, WScan):
        source = graph.add_source(plan.label)
        op = WScanOp(plan.label, plan.window, plan.prefilter)
        graph.add(op)
        graph.connect(source, op, 0)
    elif isinstance(plan, Filter):
        child = _build(plan.child, graph, cache, options)
        op = FilterOp(plan.predicate)
        graph.add(op)
        graph.connect(child, op, 0)
    elif isinstance(plan, Relabel):
        child = _build(plan.child, graph, cache, options)
        # The degenerate single-input UNION: relabel, payloads preserved.
        op = UnionOp(plan.label)
        graph.add(op)
        graph.connect(child, op, 0)
    elif isinstance(plan, Union):
        left = _build(plan.left, graph, cache, options)
        right = _build(plan.right, graph, cache, options)
        op = UnionOp(plan.label)
        graph.add(op)
        graph.connect(left, op, 0)
        graph.connect(right, op, 1)
    elif isinstance(plan, Pattern):
        op = PatternOp(
            [(c.src_var, c.trg_var) for c in plan.inputs],
            plan.src_var,
            plan.trg_var,
            plan.label,
        )
        graph.add(op)
        for port, conjunct in enumerate(plan.inputs):
            child = _build(conjunct.plan, graph, cache, options)
            if options.coalesce_intermediate:
                child = _stateful_input(conjunct.plan, child, graph, cache)
            graph.connect(child, op, port)
    elif isinstance(plan, Path):
        labels = [label for label, _ in plan.inputs]
        if options.path_impl == "spath":
            op = SPathOp(
                labels, plan.regex, plan.label, options.materialize_paths
            )
        else:
            op = NegativeTupleRpqOp(
                labels, plan.regex, plan.label, options.materialize_paths
            )
        graph.add(op)
        for port, (_, child_plan) in enumerate(plan.inputs):
            child = _build(child_plan, graph, cache, options)
            if options.coalesce_intermediate:
                child = _stateful_input(child_plan, child, graph, cache)
            graph.connect(child, op, port)
    else:
        raise PlanError(f"cannot compile plan node {plan!r}")

    cache[plan] = op
    return op
