"""Physical output coalescing (the Section 5.1 set-semantics stage).

SGA operators may produce several value-equivalent sgts with overlapping
validity (PATTERN finds one result per witness subgraph, PATH re-emits on
interval extension).  The paper coalesces operator outputs so streaming
graphs keep set semantics; operationally this also protects downstream
stateful operators from duplicate-derivation blow-up — a PATH over a
derived relation must not re-traverse once per witness.

Exactness with retractions: our operators emit *derivation-balanced*
streams (every DELETE matches one earlier INSERT with the same interval).
When an INSERT is dropped because its interval is already covered, the
drop is recorded in a ledger; the matching DELETE, if it ever arrives, is
absorbed against the ledger instead of being forwarded.  Net coverage
downstream is therefore exactly the net coverage upstream.
"""

from __future__ import annotations

from collections import Counter

from repro.core.intervals import Interval, cover, subtract_cover
from repro.core.tuples import Label
from repro.dataflow.graph import DELETE, INSERT, Event, PhysicalOperator


class CoalesceOp(PhysicalOperator):
    """Suppresses already-covered duplicate results per value key."""

    def __init__(self, label: Label):
        super().__init__(f"coalesce[{label}]")
        #: per key: net emitted validity cover (disjoint, sorted)
        self._cover: dict[tuple, list[Interval]] = {}
        #: per key: multiset of dropped insert intervals awaiting their
        #: balanced retraction
        self._dropped: dict[tuple, Counter] = {}

    def on_event(self, port: int, event: Event) -> None:
        key = event.sgt.key()
        interval = event.sgt.interval
        if event.sign == INSERT:
            existing = self._cover.get(key)
            if existing is not None and _covered(interval, existing):
                self._dropped.setdefault(key, Counter())[interval] += 1
                return
            merged = cover((existing or []) + [interval])
            self._cover[key] = merged
            self.emit(event)
        else:
            ledger = self._dropped.get(key)
            if ledger is not None and ledger.get(interval, 0) > 0:
                ledger[interval] -= 1
                if ledger[interval] == 0:
                    del ledger[interval]
                return
            remaining = subtract_cover(self._cover.get(key, []), [interval])
            self.emit(event)
            # Dropped duplicates that the shrunk cover no longer contains
            # are still supported upstream: resurrect them so net coverage
            # downstream stays exact.
            if ledger:
                resurrect: list[Interval] = []
                for dropped_interval, count in list(ledger.items()):
                    if not _covered(dropped_interval, remaining):
                        resurrect.extend([dropped_interval] * count)
                        del ledger[dropped_interval]
                for dropped_interval in resurrect:
                    remaining = cover(remaining + [dropped_interval])
                    self.emit(
                        Event(
                            event.sgt.with_interval(dropped_interval), INSERT
                        )
                    )
            self._cover[key] = remaining

    def on_advance(self, t: int) -> None:
        dead_keys = []
        for key, intervals in self._cover.items():
            kept = [iv for iv in intervals if iv.exp > t]
            if kept:
                self._cover[key] = kept
            else:
                dead_keys.append(key)
        for key in dead_keys:
            del self._cover[key]
            self._dropped.pop(key, None)
        for key, ledger in list(self._dropped.items()):
            for interval in [iv for iv in ledger if iv.exp <= t]:
                del ledger[interval]
            if not ledger:
                del self._dropped[key]

    def state_size(self) -> int:
        return sum(len(ivs) for ivs in self._cover.values())


def _covered(interval: Interval, intervals: list[Interval]) -> bool:
    """True iff ``interval`` lies within one interval of a disjoint cover."""
    for candidate in intervals:
        if candidate.ts <= interval.ts and interval.exp <= candidate.exp:
            return True
        if candidate.ts > interval.ts:
            break
    return False
