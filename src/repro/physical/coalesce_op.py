"""Physical output coalescing (the Section 5.1 set-semantics stage).

SGA operators may produce several value-equivalent sgts with overlapping
validity (PATTERN finds one result per witness subgraph, PATH re-emits on
interval extension).  The paper coalesces operator outputs so streaming
graphs keep set semantics; operationally this also protects downstream
stateful operators from duplicate-derivation blow-up — a PATH over a
derived relation must not re-traverse once per witness.

Exactness with retractions: our operators emit *derivation-balanced*
streams (every DELETE matches one earlier INSERT with the same interval).
When an INSERT is dropped because its interval is already covered, the
drop is recorded in a ledger; the matching DELETE, if it ever arrives, is
absorbed against the ledger instead of being forwarded.  Net coverage
downstream is therefore exactly the net coverage upstream.

Expiry is driven by a :class:`~repro.core.expiry.TimingWheel` of result
keys: every stored cover piece and ledger entry schedules its key at its
expiry instant, so a watermark advance touches exactly the keys that can
hold expired state — never the whole cover map (the historical
implementation re-scanned all retained keys whenever the cheapest
min-expiry bound tripped).
"""

from __future__ import annotations

from collections import Counter

from repro.core.batch import DeltaBatch
from repro.core.columns import DeltaColumns
from repro.core.expiry import TimingWheel
from repro.core.intervals import FOREVER, Interval, cover, subtract_cover
from repro.core.nplib import as_array
from repro.core.tuples import Label
from repro.dataflow.graph import INSERT, Event, PhysicalOperator


class CoalesceOp(PhysicalOperator):
    """Suppresses already-covered duplicate results per value key."""

    def __init__(self, label: Label):
        super().__init__(f"coalesce[{label}]")
        #: per key: net emitted validity cover (disjoint, sorted)
        self._cover: dict[tuple, list[Interval]] = {}
        #: per key: multiset of dropped insert intervals awaiting their
        #: balanced retraction
        self._dropped: dict[tuple, Counter] = {}
        #: keys to re-examine when the watermark reaches an expiry
        #: instant of one of their cover pieces / ledger entries
        self._wheel = TimingWheel()
        #: sharded placement: ``True`` when this instance's keys are
        #: routed by shard ownership (stamped by the planner; shard
        #: rebalancing re-partitions partitioned instances and copies
        #: replicated ones)
        self.partitioned = False

    def on_event(self, port: int, event: Event) -> None:
        sgt = event.sgt
        key = (sgt.src, sgt.trg, sgt.label)
        interval = sgt.interval
        wheel = self._wheel
        if event.sign == INSERT:
            existing = self._cover.get(key)
            exp = interval.exp
            bucket = wheel.fine.get(exp)
            if bucket is not None:
                bucket.append(key)
            else:
                wheel.schedule(exp, key)
            if existing is None:
                self._cover[key] = [interval]
            elif _covered(interval.ts, interval.exp, existing):
                self._dropped.setdefault(key, Counter())[interval] += 1
                return
            else:
                self._extend_cover(key, existing, interval.ts, interval.exp)
            self.emit(event)
        else:
            ledger = self._dropped.get(key)
            if ledger is not None and ledger.get(interval, 0) > 0:
                ledger[interval] -= 1
                if ledger[interval] == 0:
                    del ledger[interval]
                return
            # A retraction can cut a cover piece short anywhere at or
            # after its start; re-examine the key from that instant on.
            wheel.schedule(interval.ts, key)
            remaining = subtract_cover(self._cover.get(key, []), [interval])
            self.emit(event)
            # Dropped duplicates that the shrunk cover no longer contains
            # are still supported upstream: resurrect them so net coverage
            # downstream stays exact.
            if ledger:
                resurrect: list[Interval] = []
                for dropped_interval, count in list(ledger.items()):
                    if not _covered(
                        dropped_interval.ts, dropped_interval.exp, remaining
                    ):
                        resurrect.extend([dropped_interval] * count)
                        del ledger[dropped_interval]
                for dropped_interval in resurrect:
                    remaining = cover(remaining + [dropped_interval])
                    self.emit(
                        Event(
                            event.sgt.with_interval(dropped_interval), INSERT
                        )
                    )
            self._cover[key] = remaining

    def on_batch(self, port: int, batch: DeltaBatch) -> None:
        """Bulk coalescing with per-event decisions preserved.

        The covered/duplicate decision for each event depends on the
        events before it, so the loop stays strictly in arrival order;
        the batch win is amortized dispatch (dictionary lookups hoisted,
        suppressed duplicates never touch the output buffer, and one
        downstream flush for the whole batch).  Columnar batches stay
        columnar: intervals are compared as scalars and an
        :class:`~repro.core.intervals.Interval` is allocated only for the
        pieces actually retained in the cover state.
        """
        signs = batch.signs
        if signs is not None:
            # Mixed batches carry retractions whose ledger interplay is
            # exactly the per-event logic; replay through the shim.
            super().on_batch(port, batch)
            return
        cols = batch.columns
        if cols is not None:
            self._on_columns(batch.boundary, cols)
            return
        self._begin_batch()
        try:
            cover_map = self._cover
            dropped = self._dropped
            emit_sgt = self.emit_sgt
            wheel = self._wheel
            fine = wheel.fine
            for sgt in batch.sgts:
                key = sgt.key()
                interval = sgt.interval
                exp = interval.exp
                bucket = fine.get(exp)
                if bucket is not None:
                    bucket.append(key)
                else:
                    wheel.schedule(exp, key)
                existing = cover_map.get(key)
                if existing is None:
                    cover_map[key] = [interval]
                elif _covered(interval.ts, interval.exp, existing):
                    ledger = dropped.get(key)
                    if ledger is None:
                        ledger = dropped[key] = Counter()
                    ledger[interval] += 1
                    continue
                else:
                    self._extend_cover(key, existing, interval.ts, interval.exp)
                emit_sgt(sgt, INSERT)
        finally:
            self._end_batch(batch.boundary)

    def _on_columns(self, boundary: int, cols: DeltaColumns) -> None:
        """Columnar insert-only coalescing: scalar covered-checks, one
        columnar output batch of the surviving rows.

        The covered/duplicate decision is inherently sequential (each
        event's outcome depends on the ones before it), so vector
        batches are not mask-selected; instead the arrays are converted
        to plain ints in one C call per column, and — the vector-mode
        win — a constant expiry column (the common case: wscan quantizes
        exp per slide) hoists the timing-wheel bucket lookup out of the
        loop, one dict op for the whole batch instead of one per row.
        """
        label = cols.label
        src, dst, ts_col, exp_col = cols.src, cols.dst, cols.ts, cols.exp
        const_exp = False
        was_vector = cols.is_vector()
        if was_vector:
            if len(exp_col) and bool((exp_col == exp_col[0]).all()):
                const_exp = True
            src, dst, ts_col, exp_col = cols.row_lists()
        cover_map = self._cover
        dropped = self._dropped
        wheel = self._wheel
        fine = wheel.fine
        bucket0: list | None = None
        out_src: list[int] = []
        out_dst: list[int] = []
        out_ts: list[int] = []
        out_exp: list[int] = []
        for i in range(len(src)):
            s = src[i]
            d = dst[i]
            ts = ts_col[i]
            exp = exp_col[i]
            key = (s, d, label)
            if const_exp:
                if bucket0 is not None:
                    bucket0.append(key)
                else:
                    bucket0 = fine.get(exp)
                    if bucket0 is not None:
                        bucket0.append(key)
                    else:
                        wheel.schedule(exp, key)
                        bucket0 = fine.get(exp)
            else:
                bucket = fine.get(exp)
                if bucket is not None:
                    bucket.append(key)
                else:
                    wheel.schedule(exp, key)
            existing = cover_map.get(key)
            if existing is None:
                cover_map[key] = [Interval(ts, exp)]
            elif _covered(ts, exp, existing):
                ledger = dropped.get(key)
                if ledger is None:
                    ledger = dropped[key] = Counter()
                ledger[Interval(ts, exp)] += 1
                continue
            else:
                self._extend_cover(key, existing, ts, exp)
            out_src.append(s)
            out_dst.append(d)
            out_ts.append(ts)
            out_exp.append(exp)
        if out_src:
            if was_vector:
                # Stay array-backed downstream (a pattern or path fed by
                # this coalesce keeps its vector kernel).
                out = DeltaColumns(
                    label,
                    as_array(out_src),
                    as_array(out_dst),
                    as_array(out_ts),
                    as_array(out_exp),
                )
            else:
                out = DeltaColumns(label, out_src, out_dst, out_ts, out_exp)
            self.emit_batch(DeltaBatch(boundary, columns=out))

    def _extend_cover(
        self, key: tuple, existing: list[Interval], ts: int, exp: int
    ) -> None:
        """Add ``[ts, exp)`` (known not covered) to a non-empty cover.

        Streams arrive roughly ts-ordered, so the new interval almost
        always extends or follows the *last* cover piece; patch the
        sorted-disjoint list in place and fall back to the full
        normalization only for out-of-order arrivals.
        """
        if not existing:
            # A retraction may have emptied the key's cover in place.
            existing.append(Interval(ts, exp))
            return
        last = existing[-1]
        if last.ts <= ts:
            if ts <= last.exp:
                # Mergeable with the last piece; exp > last.exp, because
                # containment was already ruled out by the covered check.
                existing[-1] = Interval(last.ts, max(exp, last.exp))
            else:
                existing.append(Interval(ts, exp))
        else:
            self._cover[key] = cover(existing + [Interval(ts, exp)])

    def on_advance(self, t: int) -> None:
        # Bulk epoch drain: one wheel call hands over every due bucket;
        # a key scheduled at several due instants is examined once.
        epochs = self._wheel.drain_epochs(t)
        if not epochs:
            return
        seen: set[tuple] = set()
        expire = self._expire_key
        for _, fired in epochs:
            for key in fired:
                if key in seen:
                    continue
                seen.add(key)
                expire(key, t)

    def _expire_key(self, key: tuple, t: int) -> None:
        """Drop this key's pieces/ledger entries with ``exp <= t``;
        re-schedule the key at the earliest expiry that remains."""
        next_exp = FOREVER
        intervals = self._cover.get(key)
        if intervals is not None:
            kept = [iv for iv in intervals if iv.exp > t]
            if kept:
                self._cover[key] = kept
                for iv in kept:
                    if iv.exp < next_exp:
                        next_exp = iv.exp
            else:
                del self._cover[key]
        ledger = self._dropped.get(key)
        if ledger:
            for interval in [iv for iv in ledger if iv.exp <= t]:
                del ledger[interval]
            if not ledger:
                del self._dropped[key]
            else:
                for interval in ledger:
                    if interval.exp < next_exp:
                        next_exp = interval.exp
        if next_exp < FOREVER:
            self._wheel.schedule(next_exp, key)

    def state_size(self) -> int:
        return sum(len(ivs) for ivs in self._cover.values())

    def state_breakdown(self) -> dict:
        rows = self.state_size()
        ledger = sum(len(c) for c in self._dropped.values())
        return {"rows": rows + ledger, "bytes": (rows + ledger) * 144}

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "kind": "coalesce",
            "partitioned": self.partitioned,
            "cover": [
                (key, [(iv.ts, iv.exp) for iv in ivs])
                for key, ivs in self._cover.items()
            ],
            "dropped": [
                (
                    key,
                    [
                        ((iv.ts, iv.exp), count)
                        for iv, count in ledger.items()
                    ],
                )
                for key, ledger in self._dropped.items()
            ],
            "wheel": self._wheel.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("kind") != "coalesce":
            from repro.errors import CheckpointError

            raise CheckpointError(
                f"operator {self.name}: expected a coalesce state blob, "
                f"got kind={state.get('kind')!r}"
            )
        self._cover = {
            tuple(key): [Interval(ts, exp) for ts, exp in ivs]
            for key, ivs in state["cover"]
        }
        self._dropped = {
            tuple(key): Counter(
                {
                    Interval(ts, exp): count
                    for (ts, exp), count in entries
                }
            )
            for key, entries in state["dropped"]
        }
        wheel = TimingWheel()
        wheel.restore(state["wheel"], decode=tuple)
        self._wheel = wheel


def _covered(ts: int, exp: int, intervals: list[Interval]) -> bool:
    """True iff ``[ts, exp)`` lies within one interval of a disjoint cover."""
    for candidate in intervals:
        if candidate.ts <= ts and exp <= candidate.exp:
            return True
        if candidate.ts > ts:
            break
    return False
