"""Physical output coalescing (the Section 5.1 set-semantics stage).

SGA operators may produce several value-equivalent sgts with overlapping
validity (PATTERN finds one result per witness subgraph, PATH re-emits on
interval extension).  The paper coalesces operator outputs so streaming
graphs keep set semantics; operationally this also protects downstream
stateful operators from duplicate-derivation blow-up — a PATH over a
derived relation must not re-traverse once per witness.

Exactness with retractions: our operators emit *derivation-balanced*
streams (every DELETE matches one earlier INSERT with the same interval).
When an INSERT is dropped because its interval is already covered, the
drop is recorded in a ledger; the matching DELETE, if it ever arrives, is
absorbed against the ledger instead of being forwarded.  Net coverage
downstream is therefore exactly the net coverage upstream.
"""

from __future__ import annotations

from collections import Counter

from repro.core.batch import DeltaBatch
from repro.core.intervals import FOREVER, Interval, cover, subtract_cover
from repro.core.tuples import Label
from repro.dataflow.graph import INSERT, Event, PhysicalOperator


class CoalesceOp(PhysicalOperator):
    """Suppresses already-covered duplicate results per value key."""

    def __init__(self, label: Label):
        super().__init__(f"coalesce[{label}]")
        #: per key: net emitted validity cover (disjoint, sorted)
        self._cover: dict[tuple, list[Interval]] = {}
        #: per key: multiset of dropped insert intervals awaiting their
        #: balanced retraction
        self._dropped: dict[tuple, Counter] = {}
        #: lower bound on the earliest expiry anywhere in the state; lets
        #: :meth:`on_advance` skip the full-state scan on slides where
        #: nothing can have expired
        self._min_exp = FOREVER

    def on_event(self, port: int, event: Event) -> None:
        key = event.sgt.key()
        interval = event.sgt.interval
        # Maintain the expiry lower bound: inserts introduce pieces ending
        # no earlier than their own exp; a retraction can cut an existing
        # piece short anywhere at or after its start.
        bound = interval.exp if event.sign == INSERT else interval.ts
        if bound < self._min_exp:
            self._min_exp = bound
        if event.sign == INSERT:
            existing = self._cover.get(key)
            if existing is not None and _covered(interval, existing):
                self._dropped.setdefault(key, Counter())[interval] += 1
                return
            merged = cover((existing or []) + [interval])
            self._cover[key] = merged
            self.emit(event)
        else:
            ledger = self._dropped.get(key)
            if ledger is not None and ledger.get(interval, 0) > 0:
                ledger[interval] -= 1
                if ledger[interval] == 0:
                    del ledger[interval]
                return
            remaining = subtract_cover(self._cover.get(key, []), [interval])
            self.emit(event)
            # Dropped duplicates that the shrunk cover no longer contains
            # are still supported upstream: resurrect them so net coverage
            # downstream stays exact.
            if ledger:
                resurrect: list[Interval] = []
                for dropped_interval, count in list(ledger.items()):
                    if not _covered(dropped_interval, remaining):
                        resurrect.extend([dropped_interval] * count)
                        del ledger[dropped_interval]
                for dropped_interval in resurrect:
                    remaining = cover(remaining + [dropped_interval])
                    self.emit(
                        Event(
                            event.sgt.with_interval(dropped_interval), INSERT
                        )
                    )
            self._cover[key] = remaining

    def on_batch(self, port: int, batch: DeltaBatch) -> None:
        """Bulk coalescing with per-event decisions preserved.

        The covered/duplicate decision for each event depends on the
        events before it, so the loop stays strictly in arrival order;
        the batch win is amortized dispatch (dictionary lookups hoisted,
        suppressed duplicates never touch the capture buffer, and one
        downstream flush for the whole batch).
        """
        signs = batch.signs
        if signs is not None:
            # Mixed batches carry retractions whose ledger interplay is
            # exactly the per-event logic; replay through the shim.
            super().on_batch(port, batch)
            return
        self._begin_batch()
        try:
            cover_map = self._cover
            dropped = self._dropped
            emit_sgt = self.emit_sgt
            min_exp = self._min_exp
            for sgt in batch.sgts:
                key = sgt.key()
                interval = sgt.interval
                if interval.exp < min_exp:
                    min_exp = interval.exp
                existing = cover_map.get(key)
                if existing is not None and _covered(interval, existing):
                    ledger = dropped.get(key)
                    if ledger is None:
                        ledger = dropped[key] = Counter()
                    ledger[interval] += 1
                    continue
                cover_map[key] = cover((existing or []) + [interval])
                emit_sgt(sgt, INSERT)
            self._min_exp = min_exp
        finally:
            self._end_batch(batch.boundary)

    def on_advance(self, t: int) -> None:
        if t < self._min_exp:
            return  # nothing in the state can have expired yet
        min_exp = FOREVER
        dead_keys = []
        for key, intervals in self._cover.items():
            kept = [iv for iv in intervals if iv.exp > t]
            if kept:
                self._cover[key] = kept
                for iv in kept:
                    if iv.exp < min_exp:
                        min_exp = iv.exp
            else:
                dead_keys.append(key)
        for key in dead_keys:
            del self._cover[key]
            self._dropped.pop(key, None)
        for key, ledger in list(self._dropped.items()):
            for interval in [iv for iv in ledger if iv.exp <= t]:
                del ledger[interval]
            if not ledger:
                del self._dropped[key]
            else:
                for interval in ledger:
                    if interval.exp < min_exp:
                        min_exp = interval.exp
        self._min_exp = min_exp

    def state_size(self) -> int:
        return sum(len(ivs) for ivs in self._cover.values())


def _covered(interval: Interval, intervals: list[Interval]) -> bool:
    """True iff ``interval`` lies within one interval of a disjoint cover."""
    for candidate in intervals:
        if candidate.ts <= interval.ts and interval.exp <= candidate.exp:
            return True
        if candidate.ts > interval.ts:
            break
    return False
