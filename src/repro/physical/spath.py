"""S-PATH: the direct-approach streaming path navigation operator
(Section 6.2.4, Algorithms S-PATH / Expand / Propagate).

S-PATH maintains the Δ-PATH spanning forest (Definition 22) where each
tree node stores the validity interval of the *latest-expiring* path from
the tree's root — the coalesce aggregation with ``max`` over expiry
timestamps.  Because expirations have a temporal order, an expired node
can never be shadowing a still-valid alternative path, so window
maintenance is *direct*: expired nodes are simply dropped when the
watermark advances, with no re-derivation traversals.

On arrival of an sgt ``(u, v, l, [ts, exp))``:

* for every DFA transition ``t = delta(s, l)``: if ``s`` is the start
  state, ensure tree ``T_u`` exists; then for every tree containing a
  valid node ``(u, s)``, link ``(v, t)`` below it —
  *Expand* when ``(v, t)`` is absent (or expired), *Propagate* when the
  new derivation expires later than the recorded one;
* both Expand and Propagate keep traversing the snapshot graph until no
  further improvement is possible (implemented with an explicit worklist
  so deep chains cannot overflow the Python stack);
* whenever an accepting node is created or improved, a result sgt is
  emitted carrying the materialized path from the root.

Explicit deletions use negative tuples: deleting a tree edge disconnects
a subtree, which is repaired with the Dijkstra-style max-expiry
re-derivation of Section 6.2.5; results that no longer hold from the
deletion time onward are retracted.
"""

from __future__ import annotations

from repro.core.expiry import TimingWheel
from repro.core.intervals import Interval
from repro.core.tuples import SGT, Label
from repro.dataflow.graph import DELETE, INSERT, Event, PhysicalOperator
from repro.errors import ExecutionError
from repro.physical.delta_index import (
    ColumnarPathIngest,
    DeltaPathIndex,
    NodeKey,
    SpanningTree,
    TreeNode,
    WindowAdjacency,
    repair_nodes,
    reverse_transitions,
)
from repro.physical.state_arrays import (
    STATE_LAYOUTS,
    ArrayAdjacency,
    ArrayPathIndex,
    ArraySpanningTree,
    new_maintenance_counters,
    repair_nodes_arrays,
)
from repro.regex.ast import RegexNode
from repro.regex.dfa import DFA, dfa_from_regex


class SPathOp(ColumnarPathIngest, PhysicalOperator):
    """Physical PATH operator following the direct approach."""

    def __init__(
        self,
        labels: list[Label],
        regex: RegexNode | str,
        out_label: Label,
        materialize_paths: bool = True,
    ):
        super().__init__(f"spath[{out_label}]")
        self.labels = list(labels)
        self.out_label = out_label
        #: When False, result payloads are plain derived edges instead of
        #: materialized paths (cheaper; used by benchmarks comparing pair
        #: production against the path-less DD baseline).
        self.materialize_paths = materialize_paths
        self.dfa: DFA = dfa_from_regex(regex)
        if self.dfa.start_is_accepting():
            raise ExecutionError("PATH regex must not accept the empty word")
        self._reverse = reverse_transitions(self.dfa)
        #: label → [(s, t)] transition pairs, computed once: the per-edge
        #: DFA scan of ``states_with_transition_on`` is hot-path work.
        self._transitions = {
            label: self.dfa.states_with_transition_on(label)
            for label in dict.fromkeys(self.labels)
        }
        self.index = DeltaPathIndex(self.dfa.start)
        self.adjacency = WindowAdjacency()
        #: hot-loop caches of the DFA surface
        self._start = self.dfa.start
        self._accepting = self.dfa.accepting
        self._delta = self.dfa.delta
        # Expiry wheel over tree nodes; entries are (root_vertex, key).
        self._node_expiry = TimingWheel()
        self._now = -1
        #: sharded execution: when set, this operator maintains only the
        #: spanning trees whose root vertex the shard owns (the adjacency
        #: stays complete — traversals need the whole snapshot graph)
        self.shard_ctx = None
        #: "objects" (TreeNode/Interval structures; the rows/columnar
        #: golden reference) or "arrays" (struct-of-arrays forest + flat
        #: scalar adjacency); switched via :meth:`configure_state_layout`
        self.state_layout = "objects"
        self.maintenance_counters = new_maintenance_counters()

    def configure_state_layout(self, layout: str) -> bool:
        """Switch the operator's state representation (empty state only).

        Checkpoint blobs are layout-independent (identical shapes), so a
        restore after this call loads old-layout checkpoints into the new
        structures directly.  Returns True when the layout changed.
        """
        if layout not in STATE_LAYOUTS:
            raise ExecutionError(f"{self.name}: unknown state layout {layout!r}")
        if layout == self.state_layout:
            return False
        if self.state_size() or self._node_expiry:
            raise ExecutionError(
                f"{self.name}: cannot switch state layout with live state"
            )
        self.state_layout = layout
        if layout == "arrays":
            self.index = ArrayPathIndex(self._start)
            self.adjacency = ArrayAdjacency()
            self.on_event = self._on_event_arr
            self.on_batch = self._on_batch_arr
            self.on_advance = self._on_advance_arr
            self._consume_columns = self._consume_columns_arr
        else:
            self.index = DeltaPathIndex(self._start)
            self.adjacency = WindowAdjacency()
            for name in ("on_event", "on_batch", "on_advance", "_consume_columns"):
                self.__dict__.pop(name, None)
        return True

    def set_shard(self, ctx) -> None:
        """Partition the Δ-tree forest by root vertex across shards."""
        self.shard_ctx = ctx

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def on_event(self, port: int, event: Event) -> None:
        try:
            label = self.labels[port]
        except IndexError as exc:
            raise ExecutionError(f"{self.name}: unexpected port {port}") from exc
        sgt = event.sgt
        if event.sign == INSERT:
            self._insert(sgt.src, sgt.trg, label, sgt.interval)
        else:
            self._delete(sgt.src, sgt.trg, label, sgt.interval)

    def on_batch(self, port: int, batch) -> None:
        """Batched ingestion of one input label's deltas.

        Each insertion's Expand/Propagate traversal must observe exactly
        the snapshot graph left by the events before it (bulk-loading the
        whole batch into the adjacency first would let earlier edges
        traverse through later ones, changing which derivation a node
        records), so the loop stays per edge in arrival order.  The batch
        amortizes the surrounding machinery: port resolution and label
        lookup happen once, result emissions are captured without Event
        wrappers, and downstream receives one batch per input batch.
        """
        try:
            label = self.labels[port]
        except IndexError as exc:
            raise ExecutionError(f"{self.name}: unexpected port {port}") from exc
        if batch.columns is not None:
            self._ingest_columns(batch, label)
            return
        self._begin_batch()
        try:
            signs = batch.signs
            if signs is None:
                insert = self._insert
                for sgt in batch.sgts:
                    insert(sgt.src, sgt.trg, label, sgt.interval)
            else:
                for sgt, sign in zip(batch.sgts, signs):
                    if sign == INSERT:
                        self._insert(sgt.src, sgt.trg, label, sgt.interval)
                    else:
                        self._delete(sgt.src, sgt.trg, label, sgt.interval)
        finally:
            self._end_batch(batch.boundary)

    def _insert(self, u, v, label: Label, interval: Interval) -> None:
        now = self._now
        if interval.ts > now:
            now = interval.ts
            self._now = now
        self.adjacency.add(u, v, label, interval)

        transitions = self._transitions[label]
        index = self.index
        trees = index.trees
        inverted = index._inverted
        start = self._start
        # Building the task list before linking doubles as the snapshot
        # of the candidate trees (linking mutates the index).
        shard = self.shard_ctx
        tasks: list[tuple[object, int, int]] = []
        for s, t in transitions:
            if (
                s == start
                and u not in trees
                and (shard is None or shard.owns_vertex(u))
            ):
                index.ensure_tree(u)
            roots = inverted.get((u, s))
            if roots:
                for root in roots:
                    tasks.append((root, s, t))
        for root, s, t in tasks:
            tree = trees.get(root)
            if tree is None:
                continue
            self._link(tree, (u, s), (v, t), label, interval, now)

    # ------------------------------------------------------------------
    # Expand / Propagate (worklist form)
    # ------------------------------------------------------------------
    def _link(
        self,
        tree: SpanningTree,
        parent_key: NodeKey,
        child_key: NodeKey,
        label: Label,
        edge_interval: Interval,
        now: int,
    ) -> None:
        nodes_get = tree.nodes.get
        root = tree.root
        root_vertex = tree.root_vertex
        accepting = self._accepting
        dfa_delta = self._delta
        out_group = self.adjacency.out_group
        stack = [(parent_key, child_key, label, edge_interval)]
        while stack:
            parent_key, child_key, label, edge_interval = stack.pop()
            parent = nodes_get(parent_key)
            if parent is None:
                continue
            if parent.exp <= now and parent_key != root:
                continue
            ts = edge_interval.ts
            if parent.ts > ts:
                ts = parent.ts
            exp = edge_interval.exp
            if parent.exp < exp:
                exp = parent.exp
            if exp <= now:
                continue

            node = nodes_get(child_key)
            if node is not None and node.exp <= now:
                # An expired remnant: by the child.exp <= parent.exp
                # invariant its whole subtree is expired; discard and
                # treat as absent.
                for removed_key, _ in tree.remove_subtree(child_key):
                    self.index.unregister(root_vertex, removed_key)
                node = None

            if node is None:
                if child_key == root:
                    continue  # a cycle back to the root adds nothing
                node = tree.add_child(parent_key, child_key, ts, exp, label)
                self.index.register(root_vertex, child_key)
                self._schedule_expiry(root_vertex, child_key, exp)
                if child_key[1] in accepting:
                    self._emit_result(tree, child_key, node, INSERT)
            elif node.exp < exp:
                old_interval = Interval(node.ts, node.exp)
                tree.reparent(child_key, parent_key, label)
                node.ts = min(node.ts, ts)
                node.exp = max(node.exp, exp)
                self._schedule_expiry(root_vertex, child_key, node.exp)
                if child_key[1] in accepting:
                    # Keep the emitted derivation count at exactly one per
                    # node: retract the previous emission, then emit the
                    # widened interval (which always contains the old one).
                    self._emit_interval(tree, child_key, old_interval, DELETE)
                    self._emit_result(tree, child_key, node, INSERT)
            else:
                continue  # existing derivation is at least as good

            vertex, state = child_key
            group = out_group(vertex)
            if not group:
                continue
            for (out_label, w), intervals in group.items():
                next_state = dfa_delta(state, out_label)
                if next_state is None:
                    continue
                # Max-expiry interval valid at `now`, inline (this is
                # :meth:`WindowAdjacency.out_edges` without building the
                # per-call result list, and the DFA check above skips the
                # scan entirely for labels the state cannot consume).
                best = None
                best_exp = now
                for candidate in intervals:
                    exp = candidate.exp
                    if exp > best_exp and candidate.ts <= now:
                        best = candidate
                        best_exp = exp
                if best is not None:
                    stack.append((child_key, (w, next_state), out_label, best))

    # ------------------------------------------------------------------
    # Explicit deletions (negative tuples, Section 6.2.5)
    # ------------------------------------------------------------------
    def _delete(self, u, v, label: Label, interval: Interval) -> None:
        now = max(self._now, interval.ts)
        if not self.adjacency.remove(u, v, label, interval):
            return  # unknown (or already expired) edge: no effect
        for s, t in self.dfa.states_with_transition_on(label):
            child_key = (v, t)
            for root in self.index.roots_containing(child_key):
                tree = self.index.tree(root)
                if tree is None:
                    continue
                node = tree.get(child_key)
                if node is None or node.parent != (u, s) or node.via_label != label:
                    continue  # non-tree edge: spanning trees unchanged
                self._repair_subtree(tree, child_key, now)

    def _repair_subtree(self, tree: SpanningTree, key: NodeKey, now: int) -> None:
        # Mark the disconnected subtree, remember old intervals for
        # retraction, then re-derive (max-expiry alternatives).
        marked: set[NodeKey] = set()
        stack = [key]
        old_state: dict[NodeKey, tuple[int, int]] = {}
        while stack:
            current = stack.pop()
            node = tree.get(current)
            if node is None or current in marked:
                continue
            marked.add(current)
            old_state[current] = (node.ts, node.exp)
            stack.extend(node.children)

        def on_fix(fixed_key: NodeKey, node: TreeNode) -> None:
            self._schedule_expiry(tree.root_vertex, fixed_key, node.exp)
            if not self.dfa.is_accepting(fixed_key[1]):
                return
            old_ts, old_exp = old_state[fixed_key]
            # Retract the lost derivation, restore its historical part
            # (it was genuinely valid until the deletion time), and emit
            # the re-derived interval.
            self._emit_interval(tree, fixed_key, Interval(old_ts, old_exp), DELETE)
            history_end = min(now, old_exp)
            if history_end > old_ts:
                self._emit_interval(
                    tree, fixed_key, Interval(old_ts, history_end), INSERT
                )
            self._emit_result(tree, fixed_key, node, INSERT)

        def on_remove(removed_key: NodeKey, node: TreeNode) -> None:
            self.index.unregister(tree.root_vertex, removed_key)
            if self.dfa.is_accepting(removed_key[1]):
                old_ts, old_exp = old_state[removed_key]
                self._emit_interval(
                    tree, removed_key, Interval(old_ts, old_exp), DELETE
                )
                history_end = min(now, old_exp)
                if history_end > old_ts:
                    self._emit_interval(
                        tree, removed_key, Interval(old_ts, history_end), INSERT
                    )

        repair_nodes(
            tree,
            marked,
            self.adjacency,
            self.dfa,
            self._reverse,
            now,
            on_fix,
            on_remove,
        )
        self.index.drop_tree_if_trivial(tree.root_vertex)

    # ------------------------------------------------------------------
    # Window maintenance: the direct approach
    # ------------------------------------------------------------------
    def on_advance(self, t: int) -> None:
        self._now = max(self._now, t)
        self.adjacency.purge(t)
        trees = self.index.trees
        drained = self._node_expiry.advance(t)
        counters = self.maintenance_counters
        if drained:
            counters["drained_entries"] += len(drained)
        expired = 0
        for root, key in drained:
            tree = trees.get(root)
            if tree is None:
                continue
            node = tree.nodes.get(key)
            if node is None or node.exp > t:
                continue  # stale wheel entry (node improved or already gone)
            expired += 1
            for removed_key, _ in tree.remove_subtree(key):
                self.index.unregister(tree.root_vertex, removed_key)
            self.index.drop_tree_if_trivial(tree.root_vertex)
        if expired:
            counters["boundaries"] += 1
            counters["expired_nodes"] += expired

    # ------------------------------------------------------------------
    # Arrays layout (``state_layout="arrays"``): Expand/Propagate over
    # struct-of-arrays state — validity as two scalars end to end, flat
    # pair-list adjacency scans, bulk epoch drains at boundaries.
    # Iteration orders match the object layout exactly (see
    # repro.physical.state_arrays), so both layouts are bit-identical.
    # ------------------------------------------------------------------
    def _on_event_arr(self, port: int, event: Event) -> None:
        try:
            label = self.labels[port]
        except IndexError as exc:
            raise ExecutionError(f"{self.name}: unexpected port {port}") from exc
        sgt = event.sgt
        interval = sgt.interval
        if event.sign == INSERT:
            self._insert_arr(sgt.src, sgt.trg, label, interval.ts, interval.exp)
        else:
            self._delete_arr(sgt.src, sgt.trg, label, interval.ts, interval.exp)

    def _on_batch_arr(self, port: int, batch) -> None:
        try:
            label = self.labels[port]
        except IndexError as exc:
            raise ExecutionError(f"{self.name}: unexpected port {port}") from exc
        if batch.columns is not None:
            self._ingest_columns(batch, label)
            return
        self._begin_batch()
        try:
            signs = batch.signs
            if signs is None:
                insert = self._insert_arr
                for sgt in batch.sgts:
                    interval = sgt.interval
                    insert(sgt.src, sgt.trg, label, interval.ts, interval.exp)
            else:
                for sgt, sign in zip(batch.sgts, signs):
                    interval = sgt.interval
                    if sign == INSERT:
                        self._insert_arr(
                            sgt.src, sgt.trg, label, interval.ts, interval.exp
                        )
                    else:
                        self._delete_arr(
                            sgt.src, sgt.trg, label, interval.ts, interval.exp
                        )
        finally:
            self._end_batch(batch.boundary)

    def _insert_arr(self, u, v, label: Label, ts: int, exp: int) -> None:
        now = self._now
        if ts > now:
            now = ts
            self._now = now
        self.adjacency.add(u, v, label, ts, exp)

        transitions = self._transitions[label]
        index = self.index
        trees = index.trees
        inverted = index._inverted
        start = self._start
        shard = self.shard_ctx
        tasks: list[tuple[object, int, int]] = []
        for s, t in transitions:
            if (
                s == start
                and u not in trees
                and (shard is None or shard.owns_vertex(u))
            ):
                index.ensure_tree(u)
            roots = inverted.get((u, s))
            if roots:
                for root in roots:
                    tasks.append((root, s, t))
        for root, s, t in tasks:
            tree = trees.get(root)
            if tree is None:
                continue
            self._link_arr(tree, (u, s), (v, t), label, ts, exp, now)

    def _link_arr(
        self,
        tree: ArraySpanningTree,
        parent_key: NodeKey,
        child_key: NodeKey,
        label: Label,
        edge_ts: int,
        edge_exp: int,
        now: int,
    ) -> None:
        """Expand/Propagate over tree columns and flat-pair groups."""
        slots_get = tree.slots.get
        ts_col = tree.ts
        exp_col = tree.exp
        root = tree.root
        root_vertex = tree.root_vertex
        accepting = self._accepting
        dfa_delta = self._delta
        out_group = self.adjacency.out_group
        stack = [(parent_key, child_key, label, edge_ts, edge_exp)]
        while stack:
            parent_key, child_key, label, ts, exp = stack.pop()
            pslot = slots_get(parent_key)
            if pslot is None:
                continue
            parent_exp = exp_col[pslot]
            if parent_exp <= now and parent_key != root:
                continue
            parent_ts = ts_col[pslot]
            if parent_ts > ts:
                ts = parent_ts
            if parent_exp < exp:
                exp = parent_exp
            if exp <= now:
                continue

            cslot = slots_get(child_key)
            if cslot is not None and exp_col[cslot] <= now:
                # An expired remnant: by the child.exp <= parent.exp
                # invariant its whole subtree is expired; discard and
                # treat as absent.
                for removed_key in tree.remove_subtree(child_key):
                    self.index.unregister(root_vertex, removed_key)
                cslot = None

            if cslot is None:
                if child_key == root:
                    continue  # a cycle back to the root adds nothing
                cslot = tree.add_child(parent_key, child_key, ts, exp, label)
                self.index.register(root_vertex, child_key)
                self._schedule_expiry(root_vertex, child_key, exp)
                if child_key[1] in accepting:
                    self._emit_result_arr(tree, child_key, cslot, INSERT)
            elif exp_col[cslot] < exp:
                old_ts = ts_col[cslot]
                old_exp = exp_col[cslot]
                tree.reparent(child_key, parent_key, label)
                if ts < old_ts:
                    ts_col[cslot] = ts
                exp_col[cslot] = exp  # exp > old_exp in this branch
                self._schedule_expiry(root_vertex, child_key, exp)
                if child_key[1] in accepting:
                    # Keep the emitted derivation count at exactly one per
                    # node: retract the previous emission, then emit the
                    # widened interval (which always contains the old one).
                    self._emit_interval(
                        tree, child_key, Interval(old_ts, old_exp), DELETE
                    )
                    self._emit_result_arr(tree, child_key, cslot, INSERT)
            else:
                continue  # existing derivation is at least as good

            vertex, state = child_key
            group = out_group(vertex)
            if not group:
                continue
            for (out_label, w), rows in group.items():
                next_state = dfa_delta(state, out_label)
                if next_state is None:
                    continue
                # Max-expiry pair valid at `now`, two ints per candidate.
                best_ts = -1
                best_exp = now
                for i in range(0, len(rows), 2):
                    row_exp = rows[i + 1]
                    if row_exp > best_exp and rows[i] <= now:
                        best_ts = rows[i]
                        best_exp = row_exp
                if best_ts >= 0:
                    stack.append(
                        (child_key, (w, next_state), out_label, best_ts, best_exp)
                    )

    def _delete_arr(self, u, v, label: Label, ts: int, exp: int) -> None:
        now = max(self._now, ts)
        if not self.adjacency.remove(u, v, label, ts, exp):
            return  # unknown (or already expired) edge: no effect
        for s, t in self.dfa.states_with_transition_on(label):
            child_key = (v, t)
            for root in self.index.roots_containing(child_key):
                tree = self.index.tree(root)
                if tree is None:
                    continue
                slot = tree.slots.get(child_key)
                if (
                    slot is None
                    or tree.parent[slot] != (u, s)
                    or tree.via[slot] != label
                ):
                    continue  # non-tree edge: spanning trees unchanged
                self._repair_subtree_arr(tree, child_key, now)

    def _repair_subtree_arr(
        self, tree: ArraySpanningTree, key: NodeKey, now: int
    ) -> None:
        marked: set[NodeKey] = set()
        old_state: dict[NodeKey, tuple[int, int]] = {}
        slots = tree.slots
        ts_col = tree.ts
        exp_col = tree.exp
        children_col = tree.children
        stack = [key]
        while stack:
            current = stack.pop()
            slot = slots.get(current)
            if slot is None or current in marked:
                continue
            marked.add(current)
            old_state[current] = (ts_col[slot], exp_col[slot])
            stack.extend(children_col[slot])

        def on_fix(fixed_key: NodeKey, slot: int) -> None:
            self._schedule_expiry(tree.root_vertex, fixed_key, exp_col[slot])
            if not self.dfa.is_accepting(fixed_key[1]):
                return
            old_ts, old_exp = old_state[fixed_key]
            # Retract the lost derivation, restore its historical part
            # (it was genuinely valid until the deletion time), and emit
            # the re-derived interval.
            self._emit_interval(tree, fixed_key, Interval(old_ts, old_exp), DELETE)
            history_end = min(now, old_exp)
            if history_end > old_ts:
                self._emit_interval(
                    tree, fixed_key, Interval(old_ts, history_end), INSERT
                )
            self._emit_result_arr(tree, fixed_key, slot, INSERT)

        def on_remove(removed_key: NodeKey, slot: int) -> None:
            self.index.unregister(tree.root_vertex, removed_key)
            if self.dfa.is_accepting(removed_key[1]):
                old_ts, old_exp = old_state[removed_key]
                self._emit_interval(
                    tree, removed_key, Interval(old_ts, old_exp), DELETE
                )
                history_end = min(now, old_exp)
                if history_end > old_ts:
                    self._emit_interval(
                        tree, removed_key, Interval(old_ts, history_end), INSERT
                    )

        repair_nodes_arrays(
            tree,
            marked,
            self.adjacency,
            self.dfa,
            self._reverse,
            now,
            on_fix,
            on_remove,
        )
        self.index.drop_tree_if_trivial(tree.root_vertex)

    def _on_advance_arr(self, t: int) -> None:
        """Direct-approach boundary maintenance over the array forest:
        one bulk epoch drain, expired subtrees dropped with no repairs
        (and no emissions, so nothing needs batching)."""
        self._now = max(self._now, t)
        self.adjacency.purge(t)
        trees = self.index.trees
        counters = self.maintenance_counters
        drained = 0
        expired = 0
        for _, items in self._node_expiry.drain_epochs(t):
            drained += len(items)
            for root, key in items:
                tree = trees.get(root)
                if tree is None:
                    continue
                slot = tree.slots.get(key)
                if slot is None or tree.exp[slot] > t:
                    continue  # stale entry (node improved or already gone)
                expired += 1
                for removed_key in tree.remove_subtree(key):
                    self.index.unregister(tree.root_vertex, removed_key)
                self.index.drop_tree_if_trivial(tree.root_vertex)
        if drained:
            counters["drained_entries"] += drained
        if expired:
            counters["boundaries"] += 1
            counters["expired_nodes"] += expired

    def _emit_result_arr(
        self, tree: ArraySpanningTree, key: NodeKey, slot: int, sign: int
    ) -> None:
        cols = self._capture_cols
        if cols is not None:
            cols.append(tree.root_vertex, key[0], tree.ts[slot], tree.exp[slot], sign)
            return
        payload = tree.path_to(key) if self.materialize_paths else None
        sgt = SGT(
            tree.root_vertex,
            key[0],
            self.out_label,
            Interval(tree.ts[slot], tree.exp[slot]),
            payload,
        )
        self.emit_sgt(sgt, sign)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _emit_result(
        self, tree: SpanningTree, key: NodeKey, node: TreeNode, sign: int
    ) -> None:
        cols = self._capture_cols
        if cols is not None:
            cols.append(tree.root_vertex, key[0], node.ts, node.exp, sign)
            return
        payload = tree.path_to(key) if self.materialize_paths else None
        sgt = SGT(
            tree.root_vertex,
            key[0],
            self.out_label,
            Interval(node.ts, node.exp),
            payload,
        )
        self.emit_sgt(sgt, sign)

    def _emit_interval(
        self, tree: SpanningTree, key: NodeKey, interval: Interval, sign: int
    ) -> None:
        """Emit an insertion/retraction for an explicit result interval."""
        cols = self._capture_cols
        if cols is not None:
            cols.append(tree.root_vertex, key[0], interval.ts, interval.exp, sign)
            return
        sgt = SGT(tree.root_vertex, key[0], self.out_label, interval)
        self.emit_sgt(sgt, sign)

    def state_size(self) -> int:
        return self.index.state_size() + len(self.adjacency)

    def state_breakdown(self) -> dict:
        nodes = self.index.state_size()
        edges = len(self.adjacency)
        return {"rows": nodes + edges, "bytes": nodes * 200 + edges * 120}

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "kind": "path",
            "partitioned": self.shard_ctx is not None,
            "now": self._now,
            "index": self.index.snapshot_state(),
            "adjacency": self.adjacency.snapshot_state(),
            "node_expiry": self._node_expiry.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("kind") != "path":
            from repro.errors import CheckpointError

            raise CheckpointError(
                f"operator {self.name}: expected a path state blob, got "
                f"kind={state.get('kind')!r}"
            )
        self._now = state["now"]
        self.index.restore_state(state["index"])
        self.adjacency.restore_state(state["adjacency"])
        wheel = TimingWheel()
        wheel.restore(state["node_expiry"])
        self._node_expiry = wheel
