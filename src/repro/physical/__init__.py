"""Physical (non-blocking, push-based) operator implementations (Section 6.2).

* :mod:`repro.physical.wscan` — windowing as a per-tuple map.
* :mod:`repro.physical.filter` / :mod:`repro.physical.union` — stateless.
* :mod:`repro.physical.join` — PATTERN as a binary tree of pipelined
  symmetric hash joins over variable bindings (Section 6.2.2).
* :mod:`repro.physical.delta_index` — Δ-PATH spanning-forest machinery
  shared by both PATH implementations (Definitions 21-22).
* :mod:`repro.physical.spath` — the S-PATH operator (direct approach,
  Section 6.2.4).
* :mod:`repro.physical.rpq_negative` — the negative-tuple streaming RPQ
  operator of [Pacaci et al., SIGMOD 2020] (re-derivation on expiry).
* :mod:`repro.physical.planner` — compiles logical SGA plans into
  dataflow graphs, selecting PATH implementations.
"""

from repro.physical.filter import FilterOp
from repro.physical.join import PatternOp
from repro.physical.planner import PhysicalPlan, compile_plan
from repro.physical.rpq_negative import NegativeTupleRpqOp
from repro.physical.spath import SPathOp
from repro.physical.union import UnionOp
from repro.physical.wscan import WScanOp

__all__ = [
    "WScanOp",
    "FilterOp",
    "UnionOp",
    "PatternOp",
    "SPathOp",
    "NegativeTupleRpqOp",
    "compile_plan",
    "PhysicalPlan",
]
