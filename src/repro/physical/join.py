"""Physical PATTERN: a binary tree of pipelined symmetric hash joins
(Section 6.2.2).

A PATTERN over conjuncts ``(S_1: (x_1, y_1)), ..., (S_n: (x_n, y_n))`` is
compiled into a left-deep tree of symmetric hash joins over *variable
bindings* — partial assignments of pattern variables to vertices.  The
construction follows the paper: leaves are the conjunct input streams,
internal nodes are non-blocking pipelined hash joins keyed on the shared
variables, and the join order is the textual order of the conjuncts
(join-order optimization is future work in the paper too).

State maintenance uses the *direct approach*: every stored binding keeps
its validity interval (the intersection of the participating tuples'
intervals), and expired bindings are purged when the watermark advances.
Explicit deletions (negative tuples) are processed exactly like
insertions — remove from the own-side table, probe the other side, and
retract the joined results (Section 6.2.5).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.expiry import TimingWheel
from repro.core.inthash import PACK_LIMIT, pack2, pack3
from repro.core.intervals import Interval
from repro.core.tuples import SGT, Label, Vertex
from repro.dataflow.graph import INSERT, Event, PhysicalOperator
from repro.errors import CheckpointError, ExecutionError, PlanError
from repro.physical.state_arrays import STATE_LAYOUTS

Schema = tuple[str, ...]
Values = tuple[Vertex, ...]


def _pack_key(key: Values) -> int:
    """Pack a join key of up to three interned vertex ids into one int64
    for the open-addressing index; ``-1`` when unpackable (non-int
    components, ids beyond the 21-bit pack bound, or arity > 3 — such
    keys fall back to the overflow dict)."""
    n = len(key)
    if n == 1:
        v = key[0]
        if type(v) is int and v >= 0:
            return v
        return -1
    if n == 2:
        a, b = key
        if (
            type(a) is int
            and type(b) is int
            and 0 <= a < PACK_LIMIT
            and 0 <= b < PACK_LIMIT
        ):
            return pack2(a, b)
        return -1
    if n == 3:
        a, b, c = key
        if (
            type(a) is int
            and type(b) is int
            and type(c) is int
            and 0 <= a < PACK_LIMIT
            and 0 <= b < PACK_LIMIT
            and 0 <= c < PACK_LIMIT
        ):
            return pack3(a, b, c)
        return -1
    return -1


class Binding:
    """A partial assignment of pattern variables with a validity interval.

    Hand-written ``__slots__`` value class: one is allocated per input
    tuple and per probe match in the join tree's hottest loop.
    """

    __slots__ = ("values", "interval")

    def __init__(self, values: Values, interval: Interval):
        self.values = values
        self.interval = interval

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Binding:
            return (
                self.values == other.values  # type: ignore[union-attr]
                and self.interval == other.interval  # type: ignore[union-attr]
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.values, self.interval))

    def __repr__(self) -> str:
        return f"Binding(values={self.values!r}, interval={self.interval!r})"


class _HashTable:
    """One side of a symmetric hash join: key values → binding multiset.

    Bindings with identical variable values but different intervals are
    kept as separate entries (a multiset of intervals), so an explicit
    deletion can remove exactly the interval its insertion added.
    Expiration is driven by a :class:`~repro.core.expiry.TimingWheel`
    (the direct approach): each window slide pays for the tuples that
    actually expired, not a scan of all state.
    """

    def __init__(self) -> None:
        self._table: dict[Values, dict[Values, list[Interval]]] = defaultdict(dict)
        self._count = 0
        self._expiry = TimingWheel()

    def insert(self, key: Values, values: Values, interval: Interval) -> None:
        group = self._table[key]
        rows = group.get(values)
        if rows is None:
            group[values] = rows = []
        rows.append(interval)
        self._count += 1
        # The wheel entry carries a direct reference to the rows list:
        # eviction removes from it without re-walking the two dict levels.
        exp = interval.exp
        wheel = self._expiry
        bucket = wheel.fine.get(exp)
        if bucket is not None:
            bucket.append((rows, interval, key, values))
        else:
            wheel.schedule(exp, (rows, interval, key, values))

    def insert_many(
        self, rows: "list[tuple[Values, Values, Interval]]"
    ) -> None:
        """Bulk insert without intermediate probes.

        Only sound when nothing needs to observe the table between the
        individual insertions — e.g. rebuilding one side, or loading
        tuples that are known not to join with each other.
        """
        table = self._table
        schedule = self._expiry.schedule
        for key, values, interval in rows:
            entry = table[key].setdefault(values, [])
            entry.append(interval)
            schedule(interval.exp, (entry, interval, key, values))
        self._count += len(rows)

    def remove(self, key: Values, values: Values, interval: Interval) -> bool:
        """Remove one occurrence of (values, interval); False if absent."""
        group = self._table.get(key)
        if not group:
            return False
        rows = group.get(values)
        if not rows:
            return False
        try:
            rows.remove(interval)
        except ValueError:
            return False
        self._count -= 1
        if not rows:
            del group[values]
        if not group:
            del self._table[key]
        return True

    def probe(self, key: Values) -> list[tuple[Values, Interval]]:
        group = self._table.get(key)
        if not group:
            return []
        return [
            (values, interval)
            for values, intervals in group.items()
            for interval in intervals
        ]

    def purge(self, t: int) -> None:
        """Drop bindings whose validity ended at or before ``t``.

        Wheel entries for bindings already removed by explicit deletions
        are stale: their rows list no longer holds the interval (explicit
        removal empties lists before detaching them), so the ``remove``
        below raises and the entry is skipped.
        """
        table = self._table
        for rows, interval, key, values in self._expiry.advance(t):
            try:
                rows.remove(interval)
            except ValueError:
                continue  # stale entry
            self._count -= 1
            if not rows:
                group = table.get(key)
                if group is not None and group.get(values) is rows:
                    del group[values]
                    if not group:
                        del table[key]

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable table + wheel layout.

        Wheel entries hold direct references to rows lists; they are
        encoded as ``(ts, exp, key, values)`` and re-resolved against the
        rebuilt table on restore (an unresolvable entry was stale — its
        binding had already been removed — and restores as a reference to
        an empty placeholder list, which :meth:`purge` skips exactly like
        the live stale entry).
        """
        table = [
            (
                key,
                [
                    (values, [(iv.ts, iv.exp) for iv in rows])
                    for values, rows in group.items()
                ],
            )
            for key, group in self._table.items()
        ]
        wheel = self._expiry.snapshot(
            encode=lambda entry: (
                entry[1].ts,
                entry[1].exp,
                entry[2],
                entry[3],
            )
        )
        return {"table": table, "count": self._count, "wheel": wheel}

    def restore_state(self, state: dict) -> None:
        self._table = defaultdict(dict)
        for key, groups in state["table"]:
            group = self._table[key]
            for values, rows in groups:
                group[values] = [Interval(ts, exp) for ts, exp in rows]
        self._count = state["count"]
        table = self._table

        def decode(entry):
            ts, exp, key, values = entry
            group = table.get(key)
            rows = group.get(values) if group is not None else None
            if rows is None:
                rows = []  # stale entry: purge's remove() skips it
            return (rows, Interval(ts, exp), key, values)

        self._expiry = TimingWheel()
        self._expiry.restore(state["wheel"], decode=decode)


class _ArrayHashTable:
    """Array-layout join side: int64 open-addressing index over slotted
    key groups, validity as flat scalar pairs.

    The ``state_layout="arrays"`` counterpart of :class:`_HashTable`:
    join keys are packed into one int64 (:func:`pack2` / :func:`pack3`
    from :mod:`repro.core.inthash`) and resolved to a slot through a
    plain ``dict[int, int]`` — measured on the scalar hot path, one
    CPython C dict lookup on an int key beats any interpreted
    open-addressing probe loop (the
    :class:`~repro.core.inthash.Int64Table` keeps that role for
    numpy-resolved whole-array probes; single-key traffic stays on the
    dict).  The slot's group maps binding values to a flat
    ``[ts0, exp0, ts1, exp1, ...]`` list — no per-binding
    :class:`~repro.core.intervals.Interval` and no defaultdict-of-dict
    churn on the probe path.  Unpackable keys (rare: un-interned
    vertices or > 3 shared variables) live in an overflow dict with
    identical semantics.  Expiry consumes the wheel's bulk
    :meth:`~repro.core.expiry.TimingWheel.drain_epochs`.

    Snapshot blobs have the same shape as :class:`_HashTable`'s, so
    checkpoints restore across layouts.  Blob key order is slot order
    (not insertion order) — behaviorally invisible, because every probe
    is single-key and only within-group iteration order reaches the
    output.
    """

    __slots__ = (
        "_index",
        "_overflow",
        "_keys",
        "_groups",
        "_free",
        "_count",
        "_expiry",
    )

    def __init__(self) -> None:
        self._index: dict[int, int] = {}
        self._overflow: dict[Values, int] = {}
        self._keys: list[Values | None] = []
        self._groups: list[dict[Values, list[int]] | None] = []
        self._free: list[int] = []
        self._count = 0
        self._expiry = TimingWheel()

    def _slot_of(self, key: Values) -> int:
        pk = _pack_key(key)
        if pk >= 0:
            return self._index.get(pk, -1)
        return self._overflow.get(key, -1)

    def insert(self, key: Values, values: Values, ts: int, exp: int) -> None:
        pk = _pack_key(key)
        slot = (
            self._index.get(pk, -1) if pk >= 0 else self._overflow.get(key, -1)
        )
        if slot < 0:
            free = self._free
            if free:
                slot = free.pop()
                self._keys[slot] = key
                self._groups[slot] = {}
            else:
                slot = len(self._keys)
                self._keys.append(key)
                self._groups.append({})
            if pk >= 0:
                self._index[pk] = slot
            else:
                self._overflow[key] = slot
        group = self._groups[slot]
        rows = group.get(values)
        if rows is None:
            group[values] = rows = []
        rows.append(ts)
        rows.append(exp)
        self._count += 1
        # The wheel entry carries a direct reference to the rows list
        # (eviction removes from it without re-walking the index) and the
        # packed key, so purge never re-packs.
        wheel = self._expiry
        bucket = wheel.fine.get(exp)
        if bucket is not None:
            bucket.append((rows, ts, exp, key, values, pk))
        else:
            wheel.schedule(exp, (rows, ts, exp, key, values, pk))

    def remove(self, key: Values, values: Values, ts: int, exp: int) -> bool:
        """Remove one occurrence of (values, [ts, exp)); False if absent."""
        pk = _pack_key(key)
        slot = (
            self._index.get(pk, -1) if pk >= 0 else self._overflow.get(key, -1)
        )
        if slot < 0:
            return False
        group = self._groups[slot]
        rows = group.get(values)
        if not rows:
            return False
        found = -1
        for i in range(0, len(rows), 2):
            if rows[i] == ts and rows[i + 1] == exp:
                found = i
                break
        if found < 0:
            return False
        del rows[found : found + 2]
        self._count -= 1
        if not rows:
            del group[values]
            if not group:
                self._release(slot, pk, key)
        return True

    def _release(self, slot: int, pk: int, key: Values) -> None:
        if pk >= 0:
            del self._index[pk]
        else:
            del self._overflow[key]
        self._keys[slot] = None
        self._groups[slot] = None
        self._free.append(slot)

    def probe_group(self, key: Values) -> "dict[Values, list[int]] | None":
        """The key's raw ``values -> flat ts/exp pairs`` group (hot view)."""
        pk = _pack_key(key)
        slot = (
            self._index.get(pk, -1) if pk >= 0 else self._overflow.get(key, -1)
        )
        if slot < 0:
            return None
        return self._groups[slot]

    def purge(self, t: int) -> None:
        """Drop bindings whose validity ended at or before ``t`` — one
        flat wheel drain; entries already removed by explicit deletions
        find no matching pair and are skipped as stale.  The common case
        (a singleton rows list holding exactly this entry's pair) is
        recognized without the pair scan, and the wheel entry's stored
        packed key avoids re-packing on group teardown."""
        index = self._index
        overflow = self._overflow
        groups_col = self._groups
        for rows, ts, exp, key, values, pk in self._expiry.advance(t):
            n = len(rows)
            if n == 2:
                if rows[0] != ts or rows[1] != exp:
                    continue  # stale entry
                del rows[:]
            else:
                found = -1
                for i in range(0, n, 2):
                    if rows[i] == ts and rows[i + 1] == exp:
                        found = i
                        break
                if found < 0:
                    continue  # stale entry
                del rows[found : found + 2]
            self._count -= 1
            if not rows:
                slot = index.get(pk, -1) if pk >= 0 else overflow.get(key, -1)
                if slot < 0:
                    continue
                group = groups_col[slot]
                if group.get(values) is rows:
                    del group[values]
                    if not group:
                        self._release(slot, pk, key)

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Checkpointing — same blob shape as _HashTable
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        table = []
        groups_col = self._groups
        for slot, key in enumerate(self._keys):
            if key is None:
                continue
            group = groups_col[slot]
            table.append(
                (
                    key,
                    [
                        (
                            values,
                            [
                                (rows[i], rows[i + 1])
                                for i in range(0, len(rows), 2)
                            ],
                        )
                        for values, rows in group.items()
                    ],
                )
            )
        wheel = self._expiry.snapshot(
            encode=lambda entry: (entry[1], entry[2], entry[3], entry[4])
        )
        return {"table": table, "count": self._count, "wheel": wheel}

    def restore_state(self, state: dict) -> None:
        self._index = {}
        self._overflow = {}
        self._keys = []
        self._groups = []
        self._free = []
        for key, groups in state["table"]:
            key = tuple(key)
            slot = len(self._keys)
            self._keys.append(key)
            group: dict[Values, list[int]] = {}
            for values, rows in groups:
                flat: list[int] = []
                for ts, exp in rows:
                    flat.append(ts)
                    flat.append(exp)
                group[tuple(values)] = flat
            self._groups.append(group)
            pk = _pack_key(key)
            if pk >= 0:
                self._index[pk] = slot
            else:
                self._overflow[key] = slot
        self._count = state["count"]
        groups_col = self._groups
        index = self._index
        overflow = self._overflow

        def decode(entry):
            ts, exp, key, values = entry
            key = tuple(key)
            values = tuple(values)
            pk = _pack_key(key)
            slot = index.get(pk, -1) if pk >= 0 else overflow.get(key, -1)
            rows = groups_col[slot].get(values) if slot >= 0 else None
            if rows is None:
                rows = []  # stale entry: purge finds no pair and skips it
            return (rows, ts, exp, key, values, pk)

        self._expiry = TimingWheel()
        self._expiry.restore(state["wheel"], decode=decode)


class _Node:
    """A node of the internal join tree; produces bindings upward.

    Bindings travel as bare ``(values, interval)`` arguments — no wrapper
    object is allocated on the per-tuple hot path (:class:`Binding`
    remains as the value type for anyone materializing bindings).
    """

    schema: Schema
    parent: "_JoinNode | None"
    parent_side: int

    def output(self, values: Values, interval: Interval, sign: int) -> None:
        if self.parent is None:
            raise ExecutionError("unrooted join node")
        self.parent.on_binding(self.parent_side, values, interval, sign)


class _LeafNode(_Node):
    """Adapts an sgt stream to bindings over (src_var, trg_var).

    A conjunct with a repeated variable, e.g. ``l(x, x)``, binds a single
    variable and filters non-loop edges.
    """

    def __init__(self, src_var: str, trg_var: str):
        self.src_var = src_var
        self.trg_var = trg_var
        self.loop = src_var == trg_var
        self.schema = (src_var,) if self.loop else (src_var, trg_var)
        self.parent = None
        self.parent_side = 0

    def on_sgt(self, sgt: SGT, sign: int) -> None:
        if self.loop:
            if sgt.src != sgt.trg:
                return
            self.parent.on_binding(
                self.parent_side, (sgt.src,), sgt.interval, sign
            )
        else:
            self.parent.on_binding(
                self.parent_side, (sgt.src, sgt.trg), sgt.interval, sign
            )

    def on_row(self, src: Vertex, trg: Vertex, ts: int, exp: int, sign: int) -> None:
        """Columnar ingress: bind one scalar row without an sgt."""
        if self.loop:
            if src != trg:
                return
            self.parent.on_binding(
                self.parent_side, (src,), Interval(ts, exp), sign
            )
        else:
            self.parent.on_binding(
                self.parent_side, (src, trg), Interval(ts, exp), sign
            )


class _JoinNode(_Node):
    """A pipelined symmetric hash join of two child binding streams."""

    def __init__(self, left: _Node, right: _Node):
        self.left = left
        self.right = right
        left.parent = self
        left.parent_side = 0
        right.parent = self
        right.parent_side = 1

        shared = [v for v in left.schema if v in right.schema]
        self.key_vars = tuple(shared)
        self.schema = left.schema + tuple(
            v for v in right.schema if v not in left.schema
        )
        self._left_key = tuple(left.schema.index(v) for v in shared)
        self._right_key = tuple(right.schema.index(v) for v in shared)
        #: single shared variable (the overwhelmingly common join shape):
        #: the key is one tuple index per side — skip the generic
        #: gather-tuple construction on every binding
        self._left_single = self._left_key[0] if len(self._left_key) == 1 else None
        self._right_single = (
            self._right_key[0] if len(self._right_key) == 1 else None
        )
        #: two shared variables (the next most common shape): the pair of
        #: tuple indices per side — the arrays-layout paths inline the
        #: two-component pack ((a << 21) | b, matching ``pack2``) instead
        #: of the generic gather + _pack_key call
        self._left_pair = (
            self._left_key if len(self._left_key) == 2 else None
        )
        self._right_pair = (
            self._right_key if len(self._right_key) == 2 else None
        )
        # positions in the right child's values that extend the output
        self._right_extend = tuple(
            index
            for index, var in enumerate(right.schema)
            if var not in left.schema
        )
        #: single extension position (the common join shape) — lets
        #: _combine build the output tuple without a generator pass
        self._extend_single = (
            self._right_extend[0] if len(self._right_extend) == 1 else None
        )
        self._tables = (_HashTable(), _HashTable())
        self.parent = None
        self.parent_side = 0
        #: sharded execution: (ctx, exchange_uid, join_index, drop_left,
        #: drop_right) — None when the operator runs unsharded
        self._shard: tuple | None = None

    def on_rows(
        self, side: int, rows: "list[tuple[Values, int, int]]"
    ) -> "list[tuple[Values, int, int]]":
        """Insert-and-probe a whole run of insertions through this node.

        ``rows`` are ``(values, ts, exp)`` triples in arrival order; the
        return value is the joined output run, again in exact emission
        order.  This is the vector-mode join kernel: because a batch
        enters the pattern through *one* port, per-row
        insert-then-probe inside a single node call reproduces the
        per-tuple event order bit for bit, while hoisting the table /
        wheel lookups out of the call chain and carrying probe matches
        as bare scalars — no :class:`Interval` (and no ``on_binding``
        frame) per match.  Only valid for insert-only, unsharded runs
        (the caller gates on both).
        """
        out: list[tuple[Values, int, int]] = []
        left_side = side == 0
        if left_side:
            single = self._left_single
            key_index = self._left_key
            own, other = self._tables
        else:
            single = self._right_single
            key_index = self._right_key
            other, own = self._tables
        own_table = own._table
        other_table = other._table
        wheel = own._expiry
        fine = wheel.fine
        schedule = wheel.schedule
        combine = self._combine
        append = out.append
        for values, ts, exp in rows:
            key = (
                (values[single],)
                if single is not None
                else tuple(values[i] for i in key_index)
            )
            # Inlined _HashTable.insert (wheel fast-append idiom included).
            group = own_table[key]
            stored = group.get(values)
            if stored is None:
                group[values] = stored = []
            interval = Interval(ts, exp)
            stored.append(interval)
            bucket = fine.get(exp)
            if bucket is not None:
                bucket.append((stored, interval, key, values))
            else:
                schedule(exp, (stored, interval, key, values))
            other_group = other_table.get(key)
            if not other_group:
                continue
            for other_values, intervals in other_group.items():
                if left_side:
                    joined_values = combine(values, other_values)
                else:
                    joined_values = combine(other_values, values)
                for other_interval in intervals:
                    joined_ts = ts if ts >= other_interval.ts else other_interval.ts
                    joined_exp = (
                        exp if exp <= other_interval.exp else other_interval.exp
                    )
                    if joined_ts >= joined_exp:
                        continue
                    append((joined_values, joined_ts, joined_exp))
        own._count += len(rows)
        return out

    def on_binding(
        self, side: int, values: Values, interval: Interval, sign: int
    ) -> None:
        if side == 0:
            single = self._left_single
            key = (
                (values[single],)
                if single is not None
                else tuple(values[i] for i in self._left_key)
            )
            own, other = self._tables
        else:
            single = self._right_single
            key = (
                (values[single],)
                if single is not None
                else tuple(values[i] for i in self._right_key)
            )
            other, own = self._tables
        shard = self._shard
        if shard is not None:
            # Sharded execution: this join's state is hash-partitioned by
            # its key.  A binding the local shard does not own is either
            # dropped (leaf input over a *replicated* stream — the owner
            # shard observes its own copy) or exchanged to the owner
            # (join output / leaf over a partitioned stream — this shard
            # holds the only copy).
            ctx, uid, index, drop_left, drop_right = shard
            dest = ctx.owner_of_key(key)
            if dest != ctx.shard_id:
                if drop_left if side == 0 else drop_right:
                    return
                ctx.send(
                    dest,
                    uid,
                    (index, side, values, interval.ts, interval.exp, sign),
                )
                return
        if sign == INSERT:
            own.insert(key, values, interval)
        else:
            if not own.remove(key, values, interval):
                # Retraction of a tuple this operator never stored (it may
                # have expired already); nothing joined with it remains.
                return
        group = other._table.get(key)
        if not group:
            return
        parent = self.parent
        parent_side = self.parent_side
        intersect = interval.intersect
        for other_values, intervals in group.items():
            if side == 0:
                joined_values = self._combine(values, other_values)
            else:
                joined_values = self._combine(other_values, values)
            for other_interval in intervals:
                joined = intersect(other_interval)
                if joined is None:
                    continue
                parent.on_binding(parent_side, joined_values, joined, sign)

    def on_binding2(
        self, side: int, values: Values, ts: int, exp: int, sign: int
    ) -> None:
        """Arrays-layout binding path: validity as two scalars, state in
        :class:`_ArrayHashTable`.  Mirrors :meth:`on_binding` exactly
        (including shard routing — the exchange payload format is shared
        by both layouts).  The table access is inlined: the key is
        packed once and both the own-side insert and the other-side
        probe resolve through single int-keyed dict lookups."""
        if side == 0:
            single = self._left_single
            if single is not None:
                v = values[single]
                key = (v,)
                pk = v if type(v) is int and v >= 0 else -1
            elif self._left_pair is not None:
                i, j = self._left_pair
                a = values[i]
                b = values[j]
                key = (a, b)
                if (
                    type(a) is int
                    and type(b) is int
                    and 0 <= a < PACK_LIMIT
                    and 0 <= b < PACK_LIMIT
                ):
                    pk = (a << 21) | b
                else:
                    pk = -1
            else:
                key = tuple(values[i] for i in self._left_key)
                pk = _pack_key(key)
            own, other = self._tables
        else:
            single = self._right_single
            if single is not None:
                v = values[single]
                key = (v,)
                pk = v if type(v) is int and v >= 0 else -1
            elif self._right_pair is not None:
                i, j = self._right_pair
                a = values[i]
                b = values[j]
                key = (a, b)
                if (
                    type(a) is int
                    and type(b) is int
                    and 0 <= a < PACK_LIMIT
                    and 0 <= b < PACK_LIMIT
                ):
                    pk = (a << 21) | b
                else:
                    pk = -1
            else:
                key = tuple(values[i] for i in self._right_key)
                pk = _pack_key(key)
            other, own = self._tables
        shard = self._shard
        if shard is not None:
            ctx, uid, index, drop_left, drop_right = shard
            dest = ctx.owner_of_key(key)
            if dest != ctx.shard_id:
                if drop_left if side == 0 else drop_right:
                    return
                ctx.send(dest, uid, (index, side, values, ts, exp, sign))
                return
        if sign == INSERT:
            # Inlined _ArrayHashTable.insert (packed key reused below).
            if pk >= 0:
                slot = own._index.get(pk, -1)
            else:
                slot = own._overflow.get(key, -1)
            if slot < 0:
                free = own._free
                if free:
                    slot = free.pop()
                    own._keys[slot] = key
                    own._groups[slot] = {}
                else:
                    slot = len(own._keys)
                    own._keys.append(key)
                    own._groups.append({})
                if pk >= 0:
                    own._index[pk] = slot
                else:
                    own._overflow[key] = slot
            own_group = own._groups[slot]
            stored = own_group.get(values)
            if stored is None:
                own_group[values] = stored = []
            stored.append(ts)
            stored.append(exp)
            own._count += 1
            wheel = own._expiry
            bucket = wheel.fine.get(exp)
            if bucket is not None:
                bucket.append((stored, ts, exp, key, values, pk))
            else:
                wheel.schedule(exp, (stored, ts, exp, key, values, pk))
        else:
            if not own.remove(key, values, ts, exp):
                # Retraction of a tuple this operator never stored (it may
                # have expired already); nothing joined with it remains.
                return
        if pk >= 0:
            other_slot = other._index.get(pk, -1)
        else:
            other_slot = other._overflow.get(key, -1)
        if other_slot < 0:
            return
        group = other._groups[other_slot]
        if not group:
            return
        parent = self.parent
        parent_side = self.parent_side
        combine = self._combine
        left_side = side == 0
        for other_values, rows in group.items():
            if left_side:
                joined_values = combine(values, other_values)
            else:
                joined_values = combine(other_values, values)
            for i in range(0, len(rows), 2):
                other_ts = rows[i]
                joined_ts = ts if ts >= other_ts else other_ts
                other_exp = rows[i + 1]
                joined_exp = exp if exp <= other_exp else other_exp
                if joined_ts < joined_exp:
                    parent.on_binding2(
                        parent_side, joined_values, joined_ts, joined_exp, sign
                    )

    def on_rows2(
        self, side: int, rows_in: "list[tuple[Values, int, int]]"
    ) -> "list[tuple[Values, int, int]]":
        """Arrays-layout batched insert-and-probe (the vector kernel).

        Same contract as :meth:`on_rows` — per-row insert-then-probe in
        arrival order over one node call, emission order bit-identical
        to the per-tuple path — with the hash-table access inlined over
        the int64 index: one key pack + one open-addressing lookup per
        row, flat scalar pairs per match, no Interval anywhere.  Only
        valid for insert-only, unsharded runs (the caller gates on both).
        """
        out: list[tuple[Values, int, int]] = []
        left_side = side == 0
        if left_side:
            single = self._left_single
            pair = self._left_pair
            key_index = self._left_key
            own, other = self._tables
        else:
            single = self._right_single
            pair = self._right_pair
            key_index = self._right_key
            other, own = self._tables
        wheel = own._expiry
        fine = wheel.fine
        schedule = wheel.schedule
        own_index = own._index
        own_overflow = own._overflow
        own_keys = own._keys
        own_groups = own._groups
        own_free = own._free
        other_index_get = other._index.get
        other_overflow = other._overflow
        other_groups = other._groups
        combine = self._combine
        append = out.append
        inserted = 0
        for values, ts, exp in rows_in:
            if single is not None:
                v = values[single]
                key = (v,)
                pk = v if type(v) is int and v >= 0 else -1
            elif pair is not None:
                a = values[pair[0]]
                b = values[pair[1]]
                key = (a, b)
                if (
                    type(a) is int
                    and type(b) is int
                    and 0 <= a < PACK_LIMIT
                    and 0 <= b < PACK_LIMIT
                ):
                    pk = (a << 21) | b
                else:
                    pk = -1
            else:
                key = tuple(values[i] for i in key_index)
                pk = _pack_key(key)
            if pk >= 0:
                slot = own_index.get(pk, -1)
            else:
                slot = own_overflow.get(key, -1)
            if slot < 0:
                if own_free:
                    slot = own_free.pop()
                    own_keys[slot] = key
                    own_groups[slot] = {}
                else:
                    slot = len(own_keys)
                    own_keys.append(key)
                    own_groups.append({})
                if pk >= 0:
                    own_index[pk] = slot
                else:
                    own_overflow[key] = slot
            group = own_groups[slot]
            stored = group.get(values)
            if stored is None:
                group[values] = stored = []
            stored.append(ts)
            stored.append(exp)
            inserted += 1
            bucket = fine.get(exp)
            if bucket is not None:
                bucket.append((stored, ts, exp, key, values, pk))
            else:
                schedule(exp, (stored, ts, exp, key, values, pk))
            # Probe the other side (same packed key; skip re-packing).
            if pk >= 0:
                other_slot = other_index_get(pk, -1)
            else:
                other_slot = other_overflow.get(key, -1)
            if other_slot < 0:
                continue
            other_group = other_groups[other_slot]
            if not other_group:
                continue
            for other_values, other_rows in other_group.items():
                if left_side:
                    joined_values = combine(values, other_values)
                else:
                    joined_values = combine(other_values, values)
                for i in range(0, len(other_rows), 2):
                    other_ts = other_rows[i]
                    joined_ts = ts if ts >= other_ts else other_ts
                    other_exp = other_rows[i + 1]
                    joined_exp = exp if exp <= other_exp else other_exp
                    if joined_ts < joined_exp:
                        append((joined_values, joined_ts, joined_exp))
        own._count += inserted
        return out

    def _combine(self, left_values: Values, right_values: Values) -> Values:
        single = self._extend_single
        if single is not None:
            return left_values + (right_values[single],)
        return left_values + tuple(right_values[i] for i in self._right_extend)

    def purge(self, t: int) -> None:
        self._tables[0].purge(t)
        self._tables[1].purge(t)

    def state_size(self) -> int:
        return len(self._tables[0]) + len(self._tables[1])


class PatternOp(PhysicalOperator):
    """PATTERN as one dataflow vertex wrapping the internal join tree.

    Port ``i`` carries the stream of the ``i``-th conjunct.  The output is
    an sgt stream labeled ``out_label`` with endpoints taken from the
    bindings of ``src_var`` / ``trg_var`` and validity equal to the
    intersection of the participating tuples' intervals (Definition 19).
    """

    def __init__(
        self,
        conjunct_vars: list[tuple[str, str]],
        src_var: str,
        trg_var: str,
        out_label: Label,
    ):
        super().__init__(f"pattern[{out_label}]")
        if not conjunct_vars:
            raise PlanError("PATTERN requires at least one conjunct")
        self.out_label = out_label
        self._leaves = [_LeafNode(src, trg) for src, trg in conjunct_vars]
        self._joins: list[_JoinNode] = []

        root: _Node = self._leaves[0]
        for leaf in self._leaves[1:]:
            join = _JoinNode(root, leaf)
            self._joins.append(join)
            root = join
        self._root = root
        root.parent = _ResultAdapter(self, root.schema, src_var, trg_var, out_label)  # type: ignore[assignment]
        root.parent_side = 0
        #: set by configure_shard — the batched on_rows kernel is
        #: per-node and cannot route exchanges, so sharded patterns
        #: keep the per-binding path
        self._sharded = False
        #: "objects" (_HashTable + Interval bindings; the rows/columnar
        #: golden reference) or "arrays" (_ArrayHashTable over the int64
        #: index with scalar validity); switched by the engine via
        #: :meth:`configure_state_layout`
        self.state_layout = "objects"

    def configure_state_layout(self, layout: str) -> bool:
        """Switch the join tree's state representation (empty state only).

        Checkpoint blobs are layout-independent (identical shapes), so a
        restore after this call loads old-layout checkpoints into the
        new structures directly.  Returns True when the layout changed.
        """
        if layout not in STATE_LAYOUTS:
            raise ExecutionError(f"{self.name}: unknown state layout {layout!r}")
        if layout == self.state_layout:
            return False
        if self.state_size():
            raise ExecutionError(
                f"{self.name}: cannot switch state layout with live state"
            )
        self.state_layout = layout
        if layout == "arrays":
            for join in self._joins:
                join._tables = (_ArrayHashTable(), _ArrayHashTable())
            # Instance-level rebinding: the arrays chain carries validity
            # as two scalars through on_binding2 end to end — no per-call
            # layout branching anywhere.
            self.on_event = self._on_event_arr
            self.on_batch = self._on_batch_arr
            self.receive_exchange = self._receive_exchange_arr
        else:
            for join in self._joins:
                join._tables = (_HashTable(), _HashTable())
            for name in ("on_event", "on_batch", "receive_exchange"):
                self.__dict__.pop(name, None)
        return True

    # ------------------------------------------------------------------
    # Sharded execution
    # ------------------------------------------------------------------
    def configure_shard(
        self, ctx, uid: int, port_replicated: list[bool]
    ) -> None:
        """Partition the internal join tree across shards.

        Every internal symmetric hash join stores and probes a binding
        only on the shard owning the binding's join key.  How a
        non-owned binding is handled depends on where it came from:

        * a *leaf* over a **replicated** input stream (``port_replicated
          [i]`` true): dropped — the owner shard sees its own copy;
        * a *leaf* over a **partitioned** stream, or an inner join's
          output (which exists on exactly one shard): exchanged to the
          owner via the shard context.

        ``uid`` registers this operator as the exchange endpoint; the
        compiler assigns the same uid on every shard.
        """
        if not self._joins:
            return  # single conjunct: no keys to partition
        self._sharded = True
        ctx.register(uid, self)
        for index, join in enumerate(self._joins):
            drop_left = port_replicated[0] if index == 0 else False
            drop_right = port_replicated[index + 1]
            join._shard = (ctx, uid, index, drop_left, drop_right)

    def receive_exchange(self, payload: tuple) -> None:
        """Deliver one exchanged binding into the owning join node."""
        index, side, values, ts, exp, sign = payload
        self._joins[index].on_binding(side, values, Interval(ts, exp), sign)

    def on_event(self, port: int, event: Event) -> None:
        try:
            leaf = self._leaves[port]
        except IndexError as exc:
            raise ExecutionError(f"{self.name}: no conjunct on port {port}") from exc
        # Inlined leaf.on_sgt: this is the per-event ingress of every
        # pattern conjunct, one call frame saved per tuple.
        sgt = event.sgt
        if leaf.loop:
            if sgt.src != sgt.trg:
                return
            leaf.parent.on_binding(
                leaf.parent_side, (sgt.src,), sgt.interval, event.sign
            )
        else:
            leaf.parent.on_binding(
                leaf.parent_side, (sgt.src, sgt.trg), sgt.interval, event.sign
            )

    def on_batch(self, port: int, batch) -> None:
        """Batched ingestion of one conjunct's deltas.

        Symmetric hash joins are insert-and-probe: each tuple must see
        the state left by the tuples before it (two joining tuples in
        the same batch produce their result exactly once this way), so
        the loop stays per tuple.  The batch amortizes everything around
        it: port/leaf resolution happens once, join results are captured
        without Event wrappers, and downstream receives one batch.

        A columnar batch is consumed column-at-a-time: bindings are built
        straight from the scalar rows, and the join results are captured
        as columns too (join outputs are label-constant and payload-free,
        so nothing is lost).
        """
        try:
            leaf = self._leaves[port]
        except IndexError as exc:
            raise ExecutionError(f"{self.name}: no conjunct on port {port}") from exc
        cols = batch.columns
        if cols is not None:
            if batch.signs is None and not self._sharded and cols.is_vector():
                self._on_columns_vector(leaf, batch.boundary, cols)
                return
            self._begin_batch_cols(self.out_label)
            try:
                on_row = leaf.on_row
                signs = batch.signs
                src, dst, ts, exp = cols.row_lists()
                if signs is None:
                    for i in range(len(src)):
                        on_row(src[i], dst[i], ts[i], exp[i], INSERT)
                else:
                    for i in range(len(src)):
                        on_row(src[i], dst[i], ts[i], exp[i], signs[i])
            finally:
                self._end_batch_cols(batch.boundary)
            return
        self._begin_batch()
        try:
            on_sgt = leaf.on_sgt
            signs = batch.signs
            if signs is None:
                for sgt in batch.sgts:
                    on_sgt(sgt, INSERT)
            else:
                for sgt, sign in zip(batch.sgts, signs):
                    on_sgt(sgt, sign)
        finally:
            self._end_batch(batch.boundary)

    def _on_columns_vector(self, leaf: _LeafNode, boundary: int, cols) -> None:
        """Level-wise batched join of one vector (insert-only) batch.

        The batch enters through exactly one leaf, so each node of the
        left-deep chain above it can consume its whole input run in one
        :meth:`_JoinNode.on_rows` call: the run is processed in arrival
        order at every level, which yields output order identical to the
        per-tuple event path (a node's state is modified only by its own
        inputs — the other side receives nothing during this batch).
        Results are captured straight into the operator's output columns
        without per-match sgts, intervals or adapter frames.
        """
        src, dst, ts, exp = cols.row_lists()
        if leaf.loop:
            rows = [
                ((s,), t, e)
                for s, d, t, e in zip(src, dst, ts, exp)
                if s == d
            ]
        else:
            rows = [((s, d), t, e) for s, d, t, e in zip(src, dst, ts, exp)]
        self._begin_batch_cols(self.out_label)
        try:
            node = leaf.parent
            side = leaf.parent_side
            while rows and isinstance(node, _JoinNode):
                rows = node.on_rows(side, rows)
                side = node.parent_side
                node = node.parent
            if rows:
                # node is the _ResultAdapter: project straight into the
                # capture columns (vector batches are always captured —
                # _begin_batch_cols above installed the builder).
                adapter = node
                src_index = adapter._src_index
                trg_index = adapter._trg_index
                capture = self._capture_cols
                for values, row_ts, row_exp in rows:
                    capture.append(
                        values[src_index],
                        values[trg_index],
                        row_ts,
                        row_exp,
                        INSERT,
                    )
        finally:
            self._end_batch_cols(boundary)

    # ------------------------------------------------------------------
    # Arrays layout (``state_layout="arrays"``): the same insert-and-
    # probe discipline through the scalar on_binding2 chain.  Emission
    # order is bit-identical to the object layout (same per-tuple order,
    # same within-group iteration).
    # ------------------------------------------------------------------
    def _receive_exchange_arr(self, payload: tuple) -> None:
        index, side, values, ts, exp, sign = payload
        self._joins[index].on_binding2(side, values, ts, exp, sign)

    def _on_event_arr(self, port: int, event: Event) -> None:
        try:
            leaf = self._leaves[port]
        except IndexError as exc:
            raise ExecutionError(f"{self.name}: no conjunct on port {port}") from exc
        sgt = event.sgt
        interval = sgt.interval
        if leaf.loop:
            if sgt.src != sgt.trg:
                return
            leaf.parent.on_binding2(
                leaf.parent_side, (sgt.src,), interval.ts, interval.exp, event.sign
            )
        else:
            leaf.parent.on_binding2(
                leaf.parent_side,
                (sgt.src, sgt.trg),
                interval.ts,
                interval.exp,
                event.sign,
            )

    def _on_batch_arr(self, port: int, batch) -> None:
        try:
            leaf = self._leaves[port]
        except IndexError as exc:
            raise ExecutionError(f"{self.name}: no conjunct on port {port}") from exc
        node = leaf.parent
        side = leaf.parent_side
        loop = leaf.loop
        cols = batch.columns
        if cols is not None:
            if batch.signs is None and not self._sharded and cols.is_vector():
                self._on_columns_vector2(leaf, batch.boundary, cols)
                return
            self._begin_batch_cols(self.out_label)
            try:
                signs = batch.signs
                src, dst, ts, exp = cols.row_lists()
                if signs is None:
                    for i in range(len(src)):
                        s = src[i]
                        d = dst[i]
                        if loop:
                            if s != d:
                                continue
                            node.on_binding2(side, (s,), ts[i], exp[i], INSERT)
                        else:
                            node.on_binding2(side, (s, d), ts[i], exp[i], INSERT)
                else:
                    for i in range(len(src)):
                        s = src[i]
                        d = dst[i]
                        if loop:
                            if s != d:
                                continue
                            node.on_binding2(side, (s,), ts[i], exp[i], signs[i])
                        else:
                            node.on_binding2(side, (s, d), ts[i], exp[i], signs[i])
            finally:
                self._end_batch_cols(batch.boundary)
            return
        self._begin_batch()
        try:
            signs = batch.signs
            if signs is None:
                for sgt in batch.sgts:
                    if loop and sgt.src != sgt.trg:
                        continue
                    interval = sgt.interval
                    node.on_binding2(
                        side,
                        (sgt.src,) if loop else (sgt.src, sgt.trg),
                        interval.ts,
                        interval.exp,
                        INSERT,
                    )
            else:
                for sgt, sign in zip(batch.sgts, signs):
                    if loop and sgt.src != sgt.trg:
                        continue
                    interval = sgt.interval
                    node.on_binding2(
                        side,
                        (sgt.src,) if loop else (sgt.src, sgt.trg),
                        interval.ts,
                        interval.exp,
                        sign,
                    )
        finally:
            self._end_batch(batch.boundary)

    def _on_columns_vector2(self, leaf: _LeafNode, boundary: int, cols) -> None:
        """Level-wise batched join of one vector batch over array tables
        (see :meth:`_on_columns_vector`; identical structure, with
        :meth:`_JoinNode.on_rows2` as the per-level kernel)."""
        src, dst, ts, exp = cols.row_lists()
        if leaf.loop:
            rows = [
                ((s,), t, e)
                for s, d, t, e in zip(src, dst, ts, exp)
                if s == d
            ]
        else:
            rows = [((s, d), t, e) for s, d, t, e in zip(src, dst, ts, exp)]
        self._begin_batch_cols(self.out_label)
        try:
            node = leaf.parent
            side = leaf.parent_side
            while rows and isinstance(node, _JoinNode):
                rows = node.on_rows2(side, rows)
                side = node.parent_side
                node = node.parent
            if rows:
                adapter = node
                src_index = adapter._src_index
                trg_index = adapter._trg_index
                capture = self._capture_cols
                for values, row_ts, row_exp in rows:
                    capture.append(
                        values[src_index],
                        values[trg_index],
                        row_ts,
                        row_exp,
                        INSERT,
                    )
        finally:
            self._end_batch_cols(boundary)

    def on_advance(self, t: int) -> None:
        for join in self._joins:
            join.purge(t)

    def state_size(self) -> int:
        return sum(join.state_size() for join in self._joins)

    def state_breakdown(self) -> dict:
        rows = self.state_size()
        # Estimate: one stored binding ≈ values tuple + Interval + dict /
        # list slots + one wheel entry (4-tuple).
        return {"rows": rows, "bytes": rows * 176}

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "kind": "pattern",
            "partitioned": self._sharded,
            "joins": [
                [
                    join._tables[0].snapshot_state(),
                    join._tables[1].snapshot_state(),
                ]
                for join in self._joins
            ],
        }

    def restore_state(self, state: dict) -> None:
        joins = state["joins"]
        if state.get("kind") != "pattern" or len(joins) != len(self._joins):
            raise CheckpointError(
                f"{self.name}: blob does not match this operator "
                f"(kind={state.get('kind')!r}, "
                f"{len(joins)} joins for {len(self._joins)})"
            )
        for join, (left, right) in zip(self._joins, joins):
            join._tables[0].restore_state(left)
            join._tables[1].restore_state(right)


class _ResultAdapter:
    """Projects root bindings to output sgts and emits them."""

    def __init__(
        self,
        op: PatternOp,
        schema: Schema,
        src_var: str,
        trg_var: str,
        out_label: Label,
    ):
        self._op = op
        if src_var not in schema or trg_var not in schema:
            raise PlanError(
                f"output variables ({src_var}, {trg_var}) not in schema {schema}"
            )
        self._src_index = schema.index(src_var)
        self._trg_index = schema.index(trg_var)
        self._label = out_label

    def on_binding(
        self, side: int, values: Values, interval: Interval, sign: int
    ) -> None:
        src = values[self._src_index]
        trg = values[self._trg_index]
        op = self._op
        cols = op._capture_cols
        if cols is not None:
            cols.append(src, trg, interval.ts, interval.exp, sign)
            return
        op.emit_sgt(SGT(src, trg, self._label, interval), sign)

    def on_binding2(
        self, side: int, values: Values, ts: int, exp: int, sign: int
    ) -> None:
        """Scalar-validity terminal of the arrays-layout binding chain."""
        src = values[self._src_index]
        trg = values[self._trg_index]
        op = self._op
        cols = op._capture_cols
        if cols is not None:
            cols.append(src, trg, ts, exp, sign)
            return
        op.emit_sgt(SGT(src, trg, self._label, Interval(ts, exp)), sign)
