"""Physical PATTERN: a binary tree of pipelined symmetric hash joins
(Section 6.2.2).

A PATTERN over conjuncts ``(S_1: (x_1, y_1)), ..., (S_n: (x_n, y_n))`` is
compiled into a left-deep tree of symmetric hash joins over *variable
bindings* — partial assignments of pattern variables to vertices.  The
construction follows the paper: leaves are the conjunct input streams,
internal nodes are non-blocking pipelined hash joins keyed on the shared
variables, and the join order is the textual order of the conjuncts
(join-order optimization is future work in the paper too).

State maintenance uses the *direct approach*: every stored binding keeps
its validity interval (the intersection of the participating tuples'
intervals), and expired bindings are purged when the watermark advances.
Explicit deletions (negative tuples) are processed exactly like
insertions — remove from the own-side table, probe the other side, and
retract the joined results (Section 6.2.5).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.expiry import TimingWheel
from repro.core.intervals import Interval
from repro.core.tuples import SGT, Label, Vertex
from repro.dataflow.graph import INSERT, Event, PhysicalOperator
from repro.errors import CheckpointError, ExecutionError, PlanError

Schema = tuple[str, ...]
Values = tuple[Vertex, ...]


class Binding:
    """A partial assignment of pattern variables with a validity interval.

    Hand-written ``__slots__`` value class: one is allocated per input
    tuple and per probe match in the join tree's hottest loop.
    """

    __slots__ = ("values", "interval")

    def __init__(self, values: Values, interval: Interval):
        self.values = values
        self.interval = interval

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Binding:
            return (
                self.values == other.values  # type: ignore[union-attr]
                and self.interval == other.interval  # type: ignore[union-attr]
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.values, self.interval))

    def __repr__(self) -> str:
        return f"Binding(values={self.values!r}, interval={self.interval!r})"


class _HashTable:
    """One side of a symmetric hash join: key values → binding multiset.

    Bindings with identical variable values but different intervals are
    kept as separate entries (a multiset of intervals), so an explicit
    deletion can remove exactly the interval its insertion added.
    Expiration is driven by a :class:`~repro.core.expiry.TimingWheel`
    (the direct approach): each window slide pays for the tuples that
    actually expired, not a scan of all state.
    """

    def __init__(self) -> None:
        self._table: dict[Values, dict[Values, list[Interval]]] = defaultdict(dict)
        self._count = 0
        self._expiry = TimingWheel()

    def insert(self, key: Values, values: Values, interval: Interval) -> None:
        group = self._table[key]
        rows = group.get(values)
        if rows is None:
            group[values] = rows = []
        rows.append(interval)
        self._count += 1
        # The wheel entry carries a direct reference to the rows list:
        # eviction removes from it without re-walking the two dict levels.
        exp = interval.exp
        wheel = self._expiry
        bucket = wheel.fine.get(exp)
        if bucket is not None:
            bucket.append((rows, interval, key, values))
        else:
            wheel.schedule(exp, (rows, interval, key, values))

    def insert_many(
        self, rows: "list[tuple[Values, Values, Interval]]"
    ) -> None:
        """Bulk insert without intermediate probes.

        Only sound when nothing needs to observe the table between the
        individual insertions — e.g. rebuilding one side, or loading
        tuples that are known not to join with each other.
        """
        table = self._table
        schedule = self._expiry.schedule
        for key, values, interval in rows:
            entry = table[key].setdefault(values, [])
            entry.append(interval)
            schedule(interval.exp, (entry, interval, key, values))
        self._count += len(rows)

    def remove(self, key: Values, values: Values, interval: Interval) -> bool:
        """Remove one occurrence of (values, interval); False if absent."""
        group = self._table.get(key)
        if not group:
            return False
        rows = group.get(values)
        if not rows:
            return False
        try:
            rows.remove(interval)
        except ValueError:
            return False
        self._count -= 1
        if not rows:
            del group[values]
        if not group:
            del self._table[key]
        return True

    def probe(self, key: Values) -> list[tuple[Values, Interval]]:
        group = self._table.get(key)
        if not group:
            return []
        return [
            (values, interval)
            for values, intervals in group.items()
            for interval in intervals
        ]

    def purge(self, t: int) -> None:
        """Drop bindings whose validity ended at or before ``t``.

        Wheel entries for bindings already removed by explicit deletions
        are stale: their rows list no longer holds the interval (explicit
        removal empties lists before detaching them), so the ``remove``
        below raises and the entry is skipped.
        """
        table = self._table
        for rows, interval, key, values in self._expiry.advance(t):
            try:
                rows.remove(interval)
            except ValueError:
                continue  # stale entry
            self._count -= 1
            if not rows:
                group = table.get(key)
                if group is not None and group.get(values) is rows:
                    del group[values]
                    if not group:
                        del table[key]

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable table + wheel layout.

        Wheel entries hold direct references to rows lists; they are
        encoded as ``(ts, exp, key, values)`` and re-resolved against the
        rebuilt table on restore (an unresolvable entry was stale — its
        binding had already been removed — and restores as a reference to
        an empty placeholder list, which :meth:`purge` skips exactly like
        the live stale entry).
        """
        table = [
            (
                key,
                [
                    (values, [(iv.ts, iv.exp) for iv in rows])
                    for values, rows in group.items()
                ],
            )
            for key, group in self._table.items()
        ]
        wheel = self._expiry.snapshot(
            encode=lambda entry: (
                entry[1].ts,
                entry[1].exp,
                entry[2],
                entry[3],
            )
        )
        return {"table": table, "count": self._count, "wheel": wheel}

    def restore_state(self, state: dict) -> None:
        self._table = defaultdict(dict)
        for key, groups in state["table"]:
            group = self._table[key]
            for values, rows in groups:
                group[values] = [Interval(ts, exp) for ts, exp in rows]
        self._count = state["count"]
        table = self._table

        def decode(entry):
            ts, exp, key, values = entry
            group = table.get(key)
            rows = group.get(values) if group is not None else None
            if rows is None:
                rows = []  # stale entry: purge's remove() skips it
            return (rows, Interval(ts, exp), key, values)

        self._expiry = TimingWheel()
        self._expiry.restore(state["wheel"], decode=decode)


class _Node:
    """A node of the internal join tree; produces bindings upward.

    Bindings travel as bare ``(values, interval)`` arguments — no wrapper
    object is allocated on the per-tuple hot path (:class:`Binding`
    remains as the value type for anyone materializing bindings).
    """

    schema: Schema
    parent: "_JoinNode | None"
    parent_side: int

    def output(self, values: Values, interval: Interval, sign: int) -> None:
        if self.parent is None:
            raise ExecutionError("unrooted join node")
        self.parent.on_binding(self.parent_side, values, interval, sign)


class _LeafNode(_Node):
    """Adapts an sgt stream to bindings over (src_var, trg_var).

    A conjunct with a repeated variable, e.g. ``l(x, x)``, binds a single
    variable and filters non-loop edges.
    """

    def __init__(self, src_var: str, trg_var: str):
        self.src_var = src_var
        self.trg_var = trg_var
        self.loop = src_var == trg_var
        self.schema = (src_var,) if self.loop else (src_var, trg_var)
        self.parent = None
        self.parent_side = 0

    def on_sgt(self, sgt: SGT, sign: int) -> None:
        if self.loop:
            if sgt.src != sgt.trg:
                return
            self.parent.on_binding(
                self.parent_side, (sgt.src,), sgt.interval, sign
            )
        else:
            self.parent.on_binding(
                self.parent_side, (sgt.src, sgt.trg), sgt.interval, sign
            )

    def on_row(self, src: Vertex, trg: Vertex, ts: int, exp: int, sign: int) -> None:
        """Columnar ingress: bind one scalar row without an sgt."""
        if self.loop:
            if src != trg:
                return
            self.parent.on_binding(
                self.parent_side, (src,), Interval(ts, exp), sign
            )
        else:
            self.parent.on_binding(
                self.parent_side, (src, trg), Interval(ts, exp), sign
            )


class _JoinNode(_Node):
    """A pipelined symmetric hash join of two child binding streams."""

    def __init__(self, left: _Node, right: _Node):
        self.left = left
        self.right = right
        left.parent = self
        left.parent_side = 0
        right.parent = self
        right.parent_side = 1

        shared = [v for v in left.schema if v in right.schema]
        self.key_vars = tuple(shared)
        self.schema = left.schema + tuple(
            v for v in right.schema if v not in left.schema
        )
        self._left_key = tuple(left.schema.index(v) for v in shared)
        self._right_key = tuple(right.schema.index(v) for v in shared)
        #: single shared variable (the overwhelmingly common join shape):
        #: the key is one tuple index per side — skip the generic
        #: gather-tuple construction on every binding
        self._left_single = self._left_key[0] if len(self._left_key) == 1 else None
        self._right_single = (
            self._right_key[0] if len(self._right_key) == 1 else None
        )
        # positions in the right child's values that extend the output
        self._right_extend = tuple(
            index
            for index, var in enumerate(right.schema)
            if var not in left.schema
        )
        #: single extension position (the common join shape) — lets
        #: _combine build the output tuple without a generator pass
        self._extend_single = (
            self._right_extend[0] if len(self._right_extend) == 1 else None
        )
        self._tables = (_HashTable(), _HashTable())
        self.parent = None
        self.parent_side = 0
        #: sharded execution: (ctx, exchange_uid, join_index, drop_left,
        #: drop_right) — None when the operator runs unsharded
        self._shard: tuple | None = None

    def on_rows(
        self, side: int, rows: "list[tuple[Values, int, int]]"
    ) -> "list[tuple[Values, int, int]]":
        """Insert-and-probe a whole run of insertions through this node.

        ``rows`` are ``(values, ts, exp)`` triples in arrival order; the
        return value is the joined output run, again in exact emission
        order.  This is the vector-mode join kernel: because a batch
        enters the pattern through *one* port, per-row
        insert-then-probe inside a single node call reproduces the
        per-tuple event order bit for bit, while hoisting the table /
        wheel lookups out of the call chain and carrying probe matches
        as bare scalars — no :class:`Interval` (and no ``on_binding``
        frame) per match.  Only valid for insert-only, unsharded runs
        (the caller gates on both).
        """
        out: list[tuple[Values, int, int]] = []
        left_side = side == 0
        if left_side:
            single = self._left_single
            key_index = self._left_key
            own, other = self._tables
        else:
            single = self._right_single
            key_index = self._right_key
            other, own = self._tables
        own_table = own._table
        other_table = other._table
        wheel = own._expiry
        fine = wheel.fine
        schedule = wheel.schedule
        combine = self._combine
        append = out.append
        for values, ts, exp in rows:
            key = (
                (values[single],)
                if single is not None
                else tuple(values[i] for i in key_index)
            )
            # Inlined _HashTable.insert (wheel fast-append idiom included).
            group = own_table[key]
            stored = group.get(values)
            if stored is None:
                group[values] = stored = []
            interval = Interval(ts, exp)
            stored.append(interval)
            bucket = fine.get(exp)
            if bucket is not None:
                bucket.append((stored, interval, key, values))
            else:
                schedule(exp, (stored, interval, key, values))
            other_group = other_table.get(key)
            if not other_group:
                continue
            for other_values, intervals in other_group.items():
                if left_side:
                    joined_values = combine(values, other_values)
                else:
                    joined_values = combine(other_values, values)
                for other_interval in intervals:
                    joined_ts = ts if ts >= other_interval.ts else other_interval.ts
                    joined_exp = (
                        exp if exp <= other_interval.exp else other_interval.exp
                    )
                    if joined_ts >= joined_exp:
                        continue
                    append((joined_values, joined_ts, joined_exp))
        own._count += len(rows)
        return out

    def on_binding(
        self, side: int, values: Values, interval: Interval, sign: int
    ) -> None:
        if side == 0:
            single = self._left_single
            key = (
                (values[single],)
                if single is not None
                else tuple(values[i] for i in self._left_key)
            )
            own, other = self._tables
        else:
            single = self._right_single
            key = (
                (values[single],)
                if single is not None
                else tuple(values[i] for i in self._right_key)
            )
            other, own = self._tables
        shard = self._shard
        if shard is not None:
            # Sharded execution: this join's state is hash-partitioned by
            # its key.  A binding the local shard does not own is either
            # dropped (leaf input over a *replicated* stream — the owner
            # shard observes its own copy) or exchanged to the owner
            # (join output / leaf over a partitioned stream — this shard
            # holds the only copy).
            ctx, uid, index, drop_left, drop_right = shard
            dest = ctx.owner_of_key(key)
            if dest != ctx.shard_id:
                if drop_left if side == 0 else drop_right:
                    return
                ctx.send(
                    dest,
                    uid,
                    (index, side, values, interval.ts, interval.exp, sign),
                )
                return
        if sign == INSERT:
            own.insert(key, values, interval)
        else:
            if not own.remove(key, values, interval):
                # Retraction of a tuple this operator never stored (it may
                # have expired already); nothing joined with it remains.
                return
        group = other._table.get(key)
        if not group:
            return
        parent = self.parent
        parent_side = self.parent_side
        intersect = interval.intersect
        for other_values, intervals in group.items():
            if side == 0:
                joined_values = self._combine(values, other_values)
            else:
                joined_values = self._combine(other_values, values)
            for other_interval in intervals:
                joined = intersect(other_interval)
                if joined is None:
                    continue
                parent.on_binding(parent_side, joined_values, joined, sign)

    def _combine(self, left_values: Values, right_values: Values) -> Values:
        single = self._extend_single
        if single is not None:
            return left_values + (right_values[single],)
        return left_values + tuple(right_values[i] for i in self._right_extend)

    def purge(self, t: int) -> None:
        self._tables[0].purge(t)
        self._tables[1].purge(t)

    def state_size(self) -> int:
        return len(self._tables[0]) + len(self._tables[1])


class PatternOp(PhysicalOperator):
    """PATTERN as one dataflow vertex wrapping the internal join tree.

    Port ``i`` carries the stream of the ``i``-th conjunct.  The output is
    an sgt stream labeled ``out_label`` with endpoints taken from the
    bindings of ``src_var`` / ``trg_var`` and validity equal to the
    intersection of the participating tuples' intervals (Definition 19).
    """

    def __init__(
        self,
        conjunct_vars: list[tuple[str, str]],
        src_var: str,
        trg_var: str,
        out_label: Label,
    ):
        super().__init__(f"pattern[{out_label}]")
        if not conjunct_vars:
            raise PlanError("PATTERN requires at least one conjunct")
        self.out_label = out_label
        self._leaves = [_LeafNode(src, trg) for src, trg in conjunct_vars]
        self._joins: list[_JoinNode] = []

        root: _Node = self._leaves[0]
        for leaf in self._leaves[1:]:
            join = _JoinNode(root, leaf)
            self._joins.append(join)
            root = join
        self._root = root
        root.parent = _ResultAdapter(self, root.schema, src_var, trg_var, out_label)  # type: ignore[assignment]
        root.parent_side = 0
        #: set by configure_shard — the batched on_rows kernel is
        #: per-node and cannot route exchanges, so sharded patterns
        #: keep the per-binding path
        self._sharded = False

    # ------------------------------------------------------------------
    # Sharded execution
    # ------------------------------------------------------------------
    def configure_shard(
        self, ctx, uid: int, port_replicated: list[bool]
    ) -> None:
        """Partition the internal join tree across shards.

        Every internal symmetric hash join stores and probes a binding
        only on the shard owning the binding's join key.  How a
        non-owned binding is handled depends on where it came from:

        * a *leaf* over a **replicated** input stream (``port_replicated
          [i]`` true): dropped — the owner shard sees its own copy;
        * a *leaf* over a **partitioned** stream, or an inner join's
          output (which exists on exactly one shard): exchanged to the
          owner via the shard context.

        ``uid`` registers this operator as the exchange endpoint; the
        compiler assigns the same uid on every shard.
        """
        if not self._joins:
            return  # single conjunct: no keys to partition
        self._sharded = True
        ctx.register(uid, self)
        for index, join in enumerate(self._joins):
            drop_left = port_replicated[0] if index == 0 else False
            drop_right = port_replicated[index + 1]
            join._shard = (ctx, uid, index, drop_left, drop_right)

    def receive_exchange(self, payload: tuple) -> None:
        """Deliver one exchanged binding into the owning join node."""
        index, side, values, ts, exp, sign = payload
        self._joins[index].on_binding(side, values, Interval(ts, exp), sign)

    def on_event(self, port: int, event: Event) -> None:
        try:
            leaf = self._leaves[port]
        except IndexError as exc:
            raise ExecutionError(f"{self.name}: no conjunct on port {port}") from exc
        # Inlined leaf.on_sgt: this is the per-event ingress of every
        # pattern conjunct, one call frame saved per tuple.
        sgt = event.sgt
        if leaf.loop:
            if sgt.src != sgt.trg:
                return
            leaf.parent.on_binding(
                leaf.parent_side, (sgt.src,), sgt.interval, event.sign
            )
        else:
            leaf.parent.on_binding(
                leaf.parent_side, (sgt.src, sgt.trg), sgt.interval, event.sign
            )

    def on_batch(self, port: int, batch) -> None:
        """Batched ingestion of one conjunct's deltas.

        Symmetric hash joins are insert-and-probe: each tuple must see
        the state left by the tuples before it (two joining tuples in
        the same batch produce their result exactly once this way), so
        the loop stays per tuple.  The batch amortizes everything around
        it: port/leaf resolution happens once, join results are captured
        without Event wrappers, and downstream receives one batch.

        A columnar batch is consumed column-at-a-time: bindings are built
        straight from the scalar rows, and the join results are captured
        as columns too (join outputs are label-constant and payload-free,
        so nothing is lost).
        """
        try:
            leaf = self._leaves[port]
        except IndexError as exc:
            raise ExecutionError(f"{self.name}: no conjunct on port {port}") from exc
        cols = batch.columns
        if cols is not None:
            if batch.signs is None and not self._sharded and cols.is_vector():
                self._on_columns_vector(leaf, batch.boundary, cols)
                return
            self._begin_batch_cols(self.out_label)
            try:
                on_row = leaf.on_row
                signs = batch.signs
                src, dst, ts, exp = cols.row_lists()
                if signs is None:
                    for i in range(len(src)):
                        on_row(src[i], dst[i], ts[i], exp[i], INSERT)
                else:
                    for i in range(len(src)):
                        on_row(src[i], dst[i], ts[i], exp[i], signs[i])
            finally:
                self._end_batch_cols(batch.boundary)
            return
        self._begin_batch()
        try:
            on_sgt = leaf.on_sgt
            signs = batch.signs
            if signs is None:
                for sgt in batch.sgts:
                    on_sgt(sgt, INSERT)
            else:
                for sgt, sign in zip(batch.sgts, signs):
                    on_sgt(sgt, sign)
        finally:
            self._end_batch(batch.boundary)

    def _on_columns_vector(self, leaf: _LeafNode, boundary: int, cols) -> None:
        """Level-wise batched join of one vector (insert-only) batch.

        The batch enters through exactly one leaf, so each node of the
        left-deep chain above it can consume its whole input run in one
        :meth:`_JoinNode.on_rows` call: the run is processed in arrival
        order at every level, which yields output order identical to the
        per-tuple event path (a node's state is modified only by its own
        inputs — the other side receives nothing during this batch).
        Results are captured straight into the operator's output columns
        without per-match sgts, intervals or adapter frames.
        """
        src, dst, ts, exp = cols.row_lists()
        if leaf.loop:
            rows = [
                ((s,), t, e)
                for s, d, t, e in zip(src, dst, ts, exp)
                if s == d
            ]
        else:
            rows = [((s, d), t, e) for s, d, t, e in zip(src, dst, ts, exp)]
        self._begin_batch_cols(self.out_label)
        try:
            node = leaf.parent
            side = leaf.parent_side
            while rows and isinstance(node, _JoinNode):
                rows = node.on_rows(side, rows)
                side = node.parent_side
                node = node.parent
            if rows:
                # node is the _ResultAdapter: project straight into the
                # capture columns (vector batches are always captured —
                # _begin_batch_cols above installed the builder).
                adapter = node
                src_index = adapter._src_index
                trg_index = adapter._trg_index
                capture = self._capture_cols
                for values, row_ts, row_exp in rows:
                    capture.append(
                        values[src_index],
                        values[trg_index],
                        row_ts,
                        row_exp,
                        INSERT,
                    )
        finally:
            self._end_batch_cols(boundary)

    def on_advance(self, t: int) -> None:
        for join in self._joins:
            join.purge(t)

    def state_size(self) -> int:
        return sum(join.state_size() for join in self._joins)

    def state_breakdown(self) -> dict:
        rows = self.state_size()
        # Estimate: one stored binding ≈ values tuple + Interval + dict /
        # list slots + one wheel entry (4-tuple).
        return {"rows": rows, "bytes": rows * 176}

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "kind": "pattern",
            "partitioned": self._sharded,
            "joins": [
                [
                    join._tables[0].snapshot_state(),
                    join._tables[1].snapshot_state(),
                ]
                for join in self._joins
            ],
        }

    def restore_state(self, state: dict) -> None:
        joins = state["joins"]
        if state.get("kind") != "pattern" or len(joins) != len(self._joins):
            raise CheckpointError(
                f"{self.name}: blob does not match this operator "
                f"(kind={state.get('kind')!r}, "
                f"{len(joins)} joins for {len(self._joins)})"
            )
        for join, (left, right) in zip(self._joins, joins):
            join._tables[0].restore_state(left)
            join._tables[1].restore_state(right)


class _ResultAdapter:
    """Projects root bindings to output sgts and emits them."""

    def __init__(
        self,
        op: PatternOp,
        schema: Schema,
        src_var: str,
        trg_var: str,
        out_label: Label,
    ):
        self._op = op
        if src_var not in schema or trg_var not in schema:
            raise PlanError(
                f"output variables ({src_var}, {trg_var}) not in schema {schema}"
            )
        self._src_index = schema.index(src_var)
        self._trg_index = schema.index(trg_var)
        self._label = out_label

    def on_binding(
        self, side: int, values: Values, interval: Interval, sign: int
    ) -> None:
        src = values[self._src_index]
        trg = values[self._trg_index]
        op = self._op
        cols = op._capture_cols
        if cols is not None:
            cols.append(src, trg, interval.ts, interval.exp, sign)
            return
        op.emit_sgt(SGT(src, trg, self._label, interval), sign)
