"""Physical FILTER: stateless predicate evaluation (Definition 17)."""

from __future__ import annotations

from repro.algebra.operators import Predicate
from repro.core.batch import DeltaBatch
from repro.core.columns import DeltaColumns
from repro.dataflow.graph import Event, PhysicalOperator


class FilterOp(PhysicalOperator):
    """Forwards events whose sgt satisfies the predicate.

    Deletions are filtered identically: a tuple that never passed the
    filter produced no downstream effects, so its retraction must not
    either.
    """

    def __init__(self, predicate: Predicate):
        super().__init__(f"filter[{predicate}]")
        self.predicate = predicate

    def on_event(self, port: int, event: Event) -> None:
        sgt = event.sgt
        if self.predicate.evaluate(sgt.src, sgt.trg, sgt.label):
            self.emit(event)

    def on_batch(self, port: int, batch: DeltaBatch) -> None:
        """Bulk filtering: one predicate pass, one downstream flush."""
        evaluate = self.predicate.evaluate
        signs = batch.signs
        cols = batch.columns
        if cols is not None:
            self._on_columns(batch.boundary, cols, signs)
            return
        if signs is None:
            out = [s for s in batch.sgts if evaluate(s.src, s.trg, s.label)]
            if out:
                self.emit_batch(DeltaBatch(batch.boundary, out))
            return
        out_sgts: list = []
        out_signs: list[int] = []
        for sgt, sign in zip(batch.sgts, signs):
            if evaluate(sgt.src, sgt.trg, sgt.label):
                out_sgts.append(sgt)
                out_signs.append(sign)
        if out_sgts:
            self.emit_batch(DeltaBatch(batch.boundary, out_sgts, out_signs))

    def _on_columns(self, boundary: int, cols, signs: list[int] | None) -> None:
        """Columnar filtering: select row indices, copy surviving columns."""
        evaluate = self.predicate.evaluate
        label = cols.label
        src, dst, ts, exp = cols.src, cols.dst, cols.ts, cols.exp
        keep = [
            i for i in range(len(src)) if evaluate(src[i], dst[i], label)
        ]
        if not keep:
            return
        if len(keep) == len(src):
            out = cols
            out_signs = signs
        else:
            out = DeltaColumns(
                label,
                [src[i] for i in keep],
                [dst[i] for i in keep],
                [ts[i] for i in keep],
                [exp[i] for i in keep],
            )
            out_signs = [signs[i] for i in keep] if signs is not None else None
        self.emit_batch(DeltaBatch(boundary, signs=out_signs, columns=out))
