"""Physical FILTER: stateless predicate evaluation (Definition 17)."""

from __future__ import annotations

from repro.algebra.operators import Predicate
from repro.core.batch import DeltaBatch
from repro.core.columns import DeltaColumns
from repro.core.nplib import np
from repro.dataflow.graph import Event, PhysicalOperator
from repro.physical.vkernels import compile_mask


class FilterOp(PhysicalOperator):
    """Forwards events whose sgt satisfies the predicate.

    Deletions are filtered identically: a tuple that never passed the
    filter produced no downstream effects, so its retraction must not
    either.
    """

    def __init__(self, predicate: Predicate):
        super().__init__(f"filter[{predicate}]")
        self.predicate = predicate
        #: compiled vector-mode mask; ``None`` means the predicate is
        #: not mask-compilable and array batches take the row loop
        self._mask_fn = compile_mask(predicate)

    def on_event(self, port: int, event: Event) -> None:
        sgt = event.sgt
        if self.predicate.evaluate(sgt.src, sgt.trg, sgt.label):
            self.emit(event)

    def on_batch(self, port: int, batch: DeltaBatch) -> None:
        """Bulk filtering: one predicate pass, one downstream flush."""
        evaluate = self.predicate.evaluate
        signs = batch.signs
        cols = batch.columns
        if cols is not None:
            self._on_columns(batch.boundary, cols, signs)
            return
        if signs is None:
            out = [s for s in batch.sgts if evaluate(s.src, s.trg, s.label)]
            if out:
                self.emit_batch(DeltaBatch(batch.boundary, out))
            return
        out_sgts: list = []
        out_signs: list[int] = []
        for sgt, sign in zip(batch.sgts, signs):
            if evaluate(sgt.src, sgt.trg, sgt.label):
                out_sgts.append(sgt)
                out_signs.append(sign)
        if out_sgts:
            self.emit_batch(DeltaBatch(batch.boundary, out_sgts, out_signs))

    def _on_columns(self, boundary: int, cols, signs: list[int] | None) -> None:
        """Columnar filtering: select row indices, copy surviving columns.

        Array-backed batches (vector execution) evaluate the compiled
        boolean mask instead — one vectorized compare per condition and
        one fancy-index per surviving column; all-pass batches forward
        zero-copy.
        """
        evaluate = self.predicate.evaluate
        label = cols.label
        if cols.is_vector() and self._mask_fn is not None:
            keep = self._mask_fn(cols.src, cols.dst, label, np)
            if keep is False:
                return
            if keep is True or bool(keep.all()):
                self.emit_batch(DeltaBatch(boundary, signs=signs, columns=cols))
            elif bool(keep.any()):
                out_signs = (
                    [s for s, k in zip(signs, keep.tolist()) if k]
                    if signs is not None
                    else None
                )
                self.emit_batch(
                    DeltaBatch(
                        boundary, signs=out_signs, columns=cols.taken(keep)
                    )
                )
            return
        src, dst, ts, exp = cols.row_lists()
        keep = [
            i for i in range(len(src)) if evaluate(src[i], dst[i], label)
        ]
        if not keep:
            return
        if len(keep) == len(src):
            out = cols
            out_signs = signs
        else:
            out = DeltaColumns(
                label,
                [src[i] for i in keep],
                [dst[i] for i in keep],
                [ts[i] for i in keep],
                [exp[i] for i in keep],
            )
            out_signs = [signs[i] for i in keep] if signs is not None else None
        self.emit_batch(DeltaBatch(boundary, signs=out_signs, columns=out))
