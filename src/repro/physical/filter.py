"""Physical FILTER: stateless predicate evaluation (Definition 17)."""

from __future__ import annotations

from repro.algebra.operators import Predicate
from repro.dataflow.graph import Event, PhysicalOperator


class FilterOp(PhysicalOperator):
    """Forwards events whose sgt satisfies the predicate.

    Deletions are filtered identically: a tuple that never passed the
    filter produced no downstream effects, so its retraction must not
    either.
    """

    def __init__(self, predicate: Predicate):
        super().__init__(f"filter[{predicate}]")
        self.predicate = predicate

    def on_event(self, port: int, event: Event) -> None:
        sgt = event.sgt
        if self.predicate.evaluate(sgt.src, sgt.trg, sgt.label):
            self.emit(event)
