"""Physical FILTER: stateless predicate evaluation (Definition 17)."""

from __future__ import annotations

from repro.core.batch import DeltaBatch
from repro.algebra.operators import Predicate
from repro.dataflow.graph import Event, PhysicalOperator


class FilterOp(PhysicalOperator):
    """Forwards events whose sgt satisfies the predicate.

    Deletions are filtered identically: a tuple that never passed the
    filter produced no downstream effects, so its retraction must not
    either.
    """

    def __init__(self, predicate: Predicate):
        super().__init__(f"filter[{predicate}]")
        self.predicate = predicate

    def on_event(self, port: int, event: Event) -> None:
        sgt = event.sgt
        if self.predicate.evaluate(sgt.src, sgt.trg, sgt.label):
            self.emit(event)

    def on_batch(self, port: int, batch: DeltaBatch) -> None:
        """Bulk filtering: one predicate pass, one downstream flush."""
        evaluate = self.predicate.evaluate
        signs = batch.signs
        if signs is None:
            out = [s for s in batch.sgts if evaluate(s.src, s.trg, s.label)]
            if out:
                self.emit_batch(DeltaBatch(batch.boundary, out))
            return
        out_sgts: list = []
        out_signs: list[int] = []
        for sgt, sign in zip(batch.sgts, signs):
            if evaluate(sgt.src, sgt.trg, sgt.label):
                out_sgts.append(sgt)
                out_signs.append(sign)
        if out_sgts:
            self.emit_batch(DeltaBatch(batch.boundary, out_sgts, out_signs))
