"""Array-backed operator state: struct-of-arrays Δ-forest + flat-scalar
window adjacency (the ``state_layout="arrays"`` kernels).

PR 6 vectorized the *per-row* path and measured ~1×: profiling showed the
cost lives in per-object state machinery — one ``TreeNode`` / ``Interval``
heap object per unit of state, attribute loads in every traversal step,
and expiry handled one node at a time.  This module restructures the hot
state the way differential-dataflow arrangements do:

* :class:`ArraySpanningTree` stores the spanning forest as parallel
  columns (``ts`` / ``exp`` / ``parent`` / ``via`` / ``children``)
  indexed by a slot number, with an insertion-ordered ``slots`` dict
  mapping node keys to slots.  Traversals read plain ``int`` list cells
  instead of dereferencing per-node objects; freed slots are recycled
  through a free list.
* :class:`ArrayAdjacency` keeps the windowed snapshot graph's interval
  multisets as flat ``[ts0, exp0, ts1, exp1, ...]`` int lists — no
  :class:`~repro.core.intervals.Interval` allocation per stored edge,
  and the max-expiry scans inside Expand/repair read two ints per
  candidate instead of two attributes.  Purging consumes the timing
  wheel's bulk :meth:`~repro.core.expiry.TimingWheel.drain_epochs`.
* :func:`repair_nodes_arrays` is the Dijkstra-style max-expiry
  re-derivation over the array forest — same candidate ordering, same
  settle/guard logic as :func:`repro.physical.delta_index.repair_nodes`,
  so the two layouts produce bit-identical repairs.

**Parity contract.**  The array layout must be observationally identical
to the object layout (``execution="rows"``/``"columnar"`` keep the old
structures precisely as golden references):

* every container that a traversal iterates keeps the object layout's
  iteration order — adjacency groups stay keyed by ``(label, vertex)``
  pairs in first-insertion order (a label-major regrouping would change
  Expand's discovery order, and the expand-only operator keeps the
  *first* derivation found), and the forest's ``slots`` /
  ``children`` dicts are insertion-ordered exactly like
  ``SpanningTree.nodes`` / ``TreeNode.children``;
* ``snapshot_state`` produces the *same blob shape* as the object
  structures, so a pre-arrays checkpoint restores into the array layout
  (and vice versa) without a migration step — slot numbers are never
  serialized, only key-ordered node sequences.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Callable

from repro.core.expiry import TimingWheel
from repro.core.intervals import FOREVER, Interval
from repro.core.tuples import EdgePayload, Label, PathPayload, Vertex
from repro.errors import ExecutionError
from repro.regex.dfa import DFA

NodeKey = tuple[Vertex, int]

__all__ = [
    "ArrayAdjacency",
    "ArraySpanningTree",
    "ArrayPathIndex",
    "repair_nodes_arrays",
    "apply_state_layout",
    "new_maintenance_counters",
    "STATE_LAYOUTS",
]

#: The two supported layouts: ``"objects"`` is the historical
#: object-per-node representation (golden reference), ``"arrays"`` this
#: module's struct-of-arrays representation.
STATE_LAYOUTS = ("objects", "arrays")


def new_maintenance_counters() -> dict:
    """Window-maintenance counters kept by both PATH operators.

    Pure counts (never timings) so CI can gate on them deterministically:
    the batched-maintenance invariant is ``rederive_passes ==
    rederive_trees`` — one grouped repair per affected tree per window
    boundary — with ``expired_nodes`` recording how many per-node repairs
    the grouping replaced.  S-PATH's direct approach runs no boundary
    repairs, so its ``rederive_*`` counters stay zero by construction.
    """
    return {
        "boundaries": 0,  # advances that found at least one expired node
        "drained_entries": 0,  # wheel entries drained (incl. stale)
        "expired_nodes": 0,  # distinct nodes confirmed expired
        "rederive_trees": 0,  # trees with >= 1 expired node
        "rederive_passes": 0,  # repair traversals actually run
    }


def apply_state_layout(operators, layout: str) -> int:
    """Switch every layout-aware operator in ``operators`` to ``layout``.

    Called by the engine right after compiling a dataflow (and by each
    shard after compiling its copy).  Operators without a
    ``configure_state_layout`` hook are untouched; already-configured
    operators are skipped (dataflow graphs share operators across
    queries, so a second registration revisits configured nodes).
    Returns the number of operators switched.
    """
    if layout not in STATE_LAYOUTS:
        raise ExecutionError(f"unknown state layout {layout!r}")
    switched = 0
    for op in operators:
        configure = getattr(op, "configure_state_layout", None)
        if configure is not None and configure(layout):
            switched += 1
    return switched


class ArrayAdjacency:
    """Windowed snapshot graph with flat-scalar interval storage.

    Drop-in replacement for
    :class:`~repro.physical.delta_index.WindowAdjacency` on the array
    hot path: groups stay keyed by ``(label, other_vertex)`` pairs in
    first-insertion order (traversal-order parity — see module
    docstring), but each group's interval multiset is one flat
    ``[ts0, exp0, ts1, exp1, ...]`` int list, appended to in arrival
    order.  The hot entry points take scalar ``ts`` / ``exp`` — no
    Interval is allocated per stored edge.
    """

    __slots__ = ("_out", "_in", "_expiry", "_size")

    def __init__(self) -> None:
        self._out: dict[Vertex, dict[tuple[Label, Vertex], list[int]]] = (
            defaultdict(dict)
        )
        self._in: dict[Vertex, dict[tuple[Label, Vertex], list[int]]] = (
            defaultdict(dict)
        )
        self._expiry = TimingWheel()
        self._size = 0

    def add(self, u: Vertex, v: Vertex, label: Label, ts: int, exp: int) -> None:
        out_group = self._out[u]
        out_key = (label, v)
        rows = out_group.get(out_key)
        if rows is None:
            out_group[out_key] = rows = []
        rows.append(ts)
        rows.append(exp)
        in_group = self._in[v]
        in_key = (label, u)
        rows = in_group.get(in_key)
        if rows is None:
            in_group[in_key] = rows = []
        rows.append(ts)
        rows.append(exp)
        self._size += 1
        wheel = self._expiry
        bucket = wheel.fine.get(exp)
        if bucket is not None:
            bucket.append((u, label, v))
        else:
            wheel.schedule(exp, (u, label, v))

    def remove(self, u: Vertex, v: Vertex, label: Label, ts: int, exp: int) -> bool:
        """Remove one occurrence of the exact ``[ts, exp)``; False if absent."""
        out_rows = self._out.get(u, {}).get((label, v))
        if not out_rows:
            return False
        found = -1
        for i in range(0, len(out_rows), 2):
            if out_rows[i] == ts and out_rows[i + 1] == exp:
                found = i
                break
        if found < 0:
            return False
        del out_rows[found : found + 2]
        if not out_rows:
            del self._out[u][(label, v)]
        in_rows = self._in[v][(label, u)]
        for i in range(0, len(in_rows), 2):
            if in_rows[i] == ts and in_rows[i + 1] == exp:
                del in_rows[i : i + 2]
                break
        if not in_rows:
            del self._in[v][(label, u)]
        self._size -= 1
        return True

    def out_group(self, u: Vertex) -> "dict[tuple[Label, Vertex], list[int]] | None":
        """Raw ``(label, v) -> flat ts/exp pairs`` out-group (hot-path view)."""
        return self._out.get(u)

    def in_group(self, v: Vertex) -> "dict[tuple[Label, Vertex], list[int]] | None":
        """Raw ``(label, u) -> flat ts/exp pairs`` in-group (hot-path view)."""
        return self._in.get(v)

    def out_edges(self, u: Vertex, now: int) -> list[tuple[Label, Vertex, Interval]]:
        """Edges leaving ``u`` valid at ``now`` (max-expiry per edge);
        diagnostic/compat surface — hot loops scan groups inline."""
        group = self._out.get(u)
        result: list[tuple[Label, Vertex, Interval]] = []
        if not group:
            return result
        for (label, v), rows in group.items():
            best_ts = -1
            best_exp = now
            for i in range(0, len(rows), 2):
                exp = rows[i + 1]
                if exp > best_exp and rows[i] <= now:
                    best_ts = rows[i]
                    best_exp = exp
            if best_ts >= 0:
                result.append((label, v, Interval(best_ts, best_exp)))
        return result

    def purge(self, t: int) -> None:
        """Drop every stored pair with ``exp <= t``, one bulk epoch drain.

        Work is proportional to what expired; the per-epoch grouping from
        :meth:`~repro.core.expiry.TimingWheel.drain_epochs` lets the
        dedup set stay scoped to the drained entries exactly like the
        object layout's ``set(drained)``.
        """
        epochs = self._expiry.drain_epochs(t)
        if not epochs:
            return
        seen: set = set()
        out = self._out
        inn = self._in
        for _, items in epochs:
            for entry in items:
                if entry in seen:
                    continue
                seen.add(entry)
                u, label, v = entry
                out_rows = out.get(u, {}).get((label, v))
                if not out_rows:
                    continue
                kept: list[int] = []
                for i in range(0, len(out_rows), 2):
                    if out_rows[i + 1] > t:
                        kept.append(out_rows[i])
                        kept.append(out_rows[i + 1])
                dropped = (len(out_rows) - len(kept)) // 2
                if dropped == 0:
                    continue
                self._size -= dropped
                if kept:
                    out[u][(label, v)] = kept
                    inn[v][(label, u)] = kept[:]
                else:
                    del out[u][(label, v)]
                    del inn[v][(label, u)]

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Checkpointing — same blob shape as WindowAdjacency
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        def encode(index):
            return [
                (
                    vertex,
                    [
                        (
                            label,
                            other,
                            [
                                (rows[i], rows[i + 1])
                                for i in range(0, len(rows), 2)
                            ],
                        )
                        for (label, other), rows in groups.items()
                    ],
                )
                for vertex, groups in index.items()
            ]

        return {
            "out": encode(self._out),
            "in": encode(self._in),
            "wheel": self._expiry.snapshot(),
            "size": self._size,
        }

    def restore_state(self, state: dict) -> None:
        def decode(entries):
            index: dict = defaultdict(dict)
            for vertex, groups in entries:
                group = index[vertex]
                for label, other, rows in groups:
                    flat: list[int] = []
                    for ts, exp in rows:
                        flat.append(ts)
                        flat.append(exp)
                    group[(label, other)] = flat
            return index

        self._out = decode(state["out"])
        self._in = decode(state["in"])
        self._expiry = TimingWheel()
        self._expiry.restore(state["wheel"])
        self._size = state["size"]


class ArraySpanningTree:
    """Spanning tree ``T_x`` as struct-of-arrays columns.

    ``slots`` maps node keys to slot numbers in insertion order (the
    analogue of ``SpanningTree.nodes``); the parallel ``ts`` / ``exp`` /
    ``parent`` / ``via`` / ``children`` columns hold the node fields at
    that slot.  Freed slots go on a free list and are recycled — slot
    numbers are internal and never serialized, so recycling cannot leak
    into checkpoint blobs or iteration order.
    """

    __slots__ = (
        "root_vertex",
        "root",
        "slots",
        "ts",
        "exp",
        "parent",
        "via",
        "children",
        "_free",
    )

    def __init__(self, root_vertex: Vertex, start_state: int):
        self.root_vertex = root_vertex
        self.root: NodeKey = (root_vertex, start_state)
        # Slot 0 is the root: a zero-length path, always valid.
        self.slots: dict[NodeKey, int] = {self.root: 0}
        self.ts: list[int] = [0]
        self.exp: list[int] = [FOREVER]
        self.parent: list[NodeKey | None] = [None]
        self.via: list[Label | None] = [None]
        self.children: list[dict[NodeKey, None]] = [{}]
        self._free: list[int] = []

    def __contains__(self, key: NodeKey) -> bool:
        return key in self.slots

    def add_child(
        self,
        parent_key: NodeKey,
        child_key: NodeKey,
        ts: int,
        exp: int,
        via_label: Label,
    ) -> int:
        slots = self.slots
        if child_key in slots:
            raise ExecutionError(f"node {child_key} already in tree {self.root}")
        pslot = slots[parent_key]
        free = self._free
        if free:
            slot = free.pop()
            self.ts[slot] = ts
            self.exp[slot] = exp
            self.parent[slot] = parent_key
            self.via[slot] = via_label
            self.children[slot] = {}
        else:
            slot = len(self.ts)
            self.ts.append(ts)
            self.exp.append(exp)
            self.parent.append(parent_key)
            self.via.append(via_label)
            self.children.append({})
        slots[child_key] = slot
        self.children[pslot][child_key] = None
        return slot

    def reparent(
        self, child_key: NodeKey, new_parent_key: NodeKey, via_label: Label
    ) -> None:
        slots = self.slots
        slot = slots[child_key]
        old_parent = self.parent[slot]
        if old_parent is not None:
            old_pslot = slots.get(old_parent)
            if old_pslot is not None:
                self.children[old_pslot].pop(child_key, None)
        self.parent[slot] = new_parent_key
        self.via[slot] = via_label
        self.children[slots[new_parent_key]][child_key] = None

    def remove_subtree(self, key: NodeKey) -> list[NodeKey]:
        """Detach and remove ``key`` and all its descendants; returns the
        removed keys (callers unregister them from the inverted index)."""
        slots = self.slots
        slot = slots.get(key)
        if slot is None:
            return []
        if key == self.root:
            raise ExecutionError("cannot remove the root of a spanning tree")
        parent_key = self.parent[slot]
        if parent_key is not None:
            pslot = slots.get(parent_key)
            if pslot is not None:
                self.children[pslot].pop(key, None)
        removed: list[NodeKey] = []
        free = self._free
        children = self.children
        stack = [key]
        while stack:
            current = stack.pop()
            cur_slot = slots.pop(current, None)
            if cur_slot is None:
                continue
            removed.append(current)
            stack.extend(children[cur_slot])
            children[cur_slot] = {}  # drop key references from the column
            free.append(cur_slot)
        return removed

    def reset(self, root_vertex: Vertex) -> None:
        """Re-root a *trivial* (size-1) tree for pooled reuse — O(1).

        Only slot 0 is live in a trivial tree and slot 0 is never
        recycled (the root is unremovable), so its columns still hold
        the root sentinels; the free list and column capacity are kept,
        which is the point of pooling.
        """
        self.root_vertex = root_vertex
        self.root = (root_vertex, self.root[1])
        self.slots.clear()
        self.slots[self.root] = 0
        self.children[0].clear()

    def path_to(self, key: NodeKey) -> PathPayload:
        """Materialize the path from the root to ``key`` (parent walk)."""
        hops: list[EdgePayload] = []
        slots = self.slots
        parent_col = self.parent
        via_col = self.via
        current = key
        while True:
            slot = slots[current]
            parent_key = parent_col[slot]
            if parent_key is None:
                break
            via_label = via_col[slot]
            assert via_label is not None
            hops.append(EdgePayload(parent_key[0], current[0], via_label))
            current = parent_key
        hops.reverse()
        return PathPayload(tuple(hops))

    def size(self) -> int:
        return len(self.slots)


class ArrayPathIndex:
    """Array-forest counterpart of
    :class:`~repro.physical.delta_index.DeltaPathIndex` (same inverted
    index, same checkpoint blob shape)."""

    #: dropped trivial trees kept for reuse — tree churn (drop on the
    #: last expiry, re-create on the next edge) otherwise re-allocates
    #: five columns per tree; capped so pooled column capacity cannot
    #: grow without bound
    _POOL_MAX = 32

    def __init__(self, start_state: int):
        self.start_state = start_state
        self.trees: dict[Vertex, ArraySpanningTree] = {}
        self._inverted: dict[NodeKey, dict[Vertex, None]] = defaultdict(dict)
        self._pool: list[ArraySpanningTree] = []

    def tree(self, root_vertex: Vertex) -> ArraySpanningTree | None:
        return self.trees.get(root_vertex)

    def ensure_tree(self, root_vertex: Vertex) -> ArraySpanningTree:
        tree = self.trees.get(root_vertex)
        if tree is None:
            pool = self._pool
            if pool:
                tree = pool.pop()
                tree.reset(root_vertex)
            else:
                tree = ArraySpanningTree(root_vertex, self.start_state)
            self.trees[root_vertex] = tree
            self.register(root_vertex, tree.root)
        return tree

    def register(self, root_vertex: Vertex, key: NodeKey) -> None:
        self._inverted[key][root_vertex] = None

    def unregister(self, root_vertex: Vertex, key: NodeKey) -> None:
        roots = self._inverted.get(key)
        if roots is not None:
            roots.pop(root_vertex, None)
            if not roots:
                del self._inverted[key]

    def roots_containing(self, key: NodeKey) -> tuple[Vertex, ...]:
        return tuple(self._inverted.get(key, ()))

    def drop_tree_if_trivial(self, root_vertex: Vertex) -> None:
        tree = self.trees.get(root_vertex)
        if tree is not None and len(tree.slots) == 1:
            self.unregister(root_vertex, tree.root)
            del self.trees[root_vertex]
            if len(self._pool) < self._POOL_MAX:
                self._pool.append(tree)

    def state_size(self) -> int:
        return sum(len(tree.slots) for tree in self.trees.values())

    # ------------------------------------------------------------------
    # Checkpointing — same blob shape as DeltaPathIndex
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        trees = []
        for root_vertex, tree in self.trees.items():
            ts_col = tree.ts
            exp_col = tree.exp
            parent_col = tree.parent
            via_col = tree.via
            children_col = tree.children
            nodes = [
                (
                    key,
                    ts_col[slot],
                    exp_col[slot],
                    parent_col[slot],
                    via_col[slot],
                    list(children_col[slot]),
                )
                for key, slot in tree.slots.items()
            ]
            trees.append((root_vertex, nodes))
        inverted = [
            (key, list(roots)) for key, roots in self._inverted.items()
        ]
        return {
            "start_state": self.start_state,
            "trees": trees,
            "inverted": inverted,
        }

    def restore_state(self, state: dict) -> None:
        self.start_state = state["start_state"]
        self.trees = {}
        self._pool = []
        for root_vertex, nodes in state["trees"]:
            tree = ArraySpanningTree(root_vertex, self.start_state)
            tree.slots = {}
            tree.ts = []
            tree.exp = []
            tree.parent = []
            tree.via = []
            tree.children = []
            for key, ts, exp, parent, via_label, children in nodes:
                slot = len(tree.ts)
                tree.slots[tuple(key)] = slot
                tree.ts.append(ts)
                tree.exp.append(exp)
                tree.parent.append(tuple(parent) if parent is not None else None)
                tree.via.append(via_label)
                tree.children.append(
                    dict.fromkeys(tuple(child) for child in children)
                )
            self.trees[root_vertex] = tree
        self._inverted = defaultdict(dict)
        for key, roots in state["inverted"]:
            self._inverted[tuple(key)] = dict.fromkeys(roots)


def repair_nodes_arrays(
    tree: ArraySpanningTree,
    marked: set[NodeKey],
    adjacency: ArrayAdjacency,
    dfa: DFA,
    reverse: dict[tuple[Label, int], list[int]],
    now: int,
    on_fix: Callable[[NodeKey, int], None],
    on_remove: Callable[[NodeKey, int], None],
) -> None:
    """Max-expiry re-derivation over the array forest.

    Structurally identical to
    :func:`repro.physical.delta_index.repair_nodes` — same candidate
    heap ordering ``(-exp, ts, child, parent, label)``, same settled-set
    and best-pushed-expiry guards, same final removal sweep — with node
    fields read from the tree's columns instead of ``TreeNode``
    attributes and intervals scanned as flat scalar pairs.  ``on_fix`` /
    ``on_remove`` receive ``(key, slot)``.
    """
    if not marked:
        return

    heap: list[tuple[int, int, NodeKey, NodeKey, Label]] = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    slots = tree.slots
    slots_get = slots.get
    ts_col = tree.ts
    exp_col = tree.exp
    parent_col = tree.parent
    children_col = tree.children
    reverse_get = reverse.get
    in_group = adjacency.in_group
    out_group = adjacency.out_group
    root = tree.root
    settled: set[NodeKey] = set()
    best_exp: dict[NodeKey, int] = {}

    def push_candidates(child_key: NodeKey) -> None:
        vertex, state = child_key
        group = in_group(vertex)
        if not group:
            return
        for (label, prev_vertex), rows in group.items():
            states = reverse_get((label, state))
            if not states:
                continue
            # Best (max-expiry) pair valid at `now`, inline over scalars.
            found_ts = -1
            found_exp = now
            for i in range(0, len(rows), 2):
                exp = rows[i + 1]
                if exp > found_exp and rows[i] <= now:
                    found_ts = rows[i]
                    found_exp = exp
            if found_ts < 0:
                continue
            for prev_state in states:
                parent_key = (prev_vertex, prev_state)
                if parent_key in marked or parent_key == child_key:
                    continue
                pslot = slots_get(parent_key)
                if pslot is None:
                    continue
                parent_exp = exp_col[pslot]
                if parent_exp <= now and parent_key != root:
                    continue
                exp = parent_exp
                if found_exp < exp:
                    exp = found_exp
                if exp > now:
                    recorded = best_exp.get(child_key, now)
                    if exp < recorded:
                        continue  # a better candidate is already queued
                    best_exp[child_key] = exp
                    parent_ts = ts_col[pslot]
                    ts = parent_ts if parent_ts >= found_ts else found_ts
                    heappush(heap, (-exp, ts, child_key, parent_key, label))

    for key in marked:
        push_candidates(key)

    dfa_delta = dfa.delta
    while heap:
        neg_exp, ts, child_key, parent_key, label = heappop(heap)
        if child_key in settled or child_key not in marked:
            continue  # already fixed by a better candidate
        if parent_key not in slots or parent_key in marked:
            continue
        exp = -neg_exp
        slot = slots[child_key]
        tree.reparent(child_key, parent_key, label)
        ts_col[slot] = ts
        exp_col[slot] = exp
        marked.discard(child_key)
        settled.add(child_key)
        on_fix(child_key, slot)
        # Relax: the fixed node may now be the best parent for marked
        # neighbours downstream.
        vertex, state = child_key
        group = out_group(vertex)
        if not group:
            continue
        for (out_label, next_vertex), rows in group.items():
            next_state = dfa_delta(state, out_label)
            if next_state is None:
                continue
            next_key = (next_vertex, next_state)
            if next_key in settled or next_key not in marked:
                continue
            found_ts = -1
            found_exp = now
            for i in range(0, len(rows), 2):
                candidate_exp = rows[i + 1]
                if candidate_exp > found_exp and rows[i] <= now:
                    found_ts = rows[i]
                    found_exp = candidate_exp
            if found_ts < 0:
                continue
            next_exp = exp
            if found_exp < next_exp:
                next_exp = found_exp
            if next_exp > now:
                recorded = best_exp.get(next_key, now)
                if next_exp < recorded:
                    continue  # a better candidate is already queued
                best_exp[next_key] = next_exp
                heappush(
                    heap,
                    (
                        -next_exp,
                        ts if ts >= found_ts else found_ts,
                        next_key,
                        child_key,
                        out_label,
                    ),
                )

    free = tree._free
    for key in list(marked):
        slot = slots.get(key)
        if slot is None:
            marked.discard(key)
            continue
        on_remove(key, slot)
        # Children were either fixed (reparented away) or are themselves
        # marked; remove just this node.
        parent_key = parent_col[slot]
        if parent_key is not None:
            pslot = slots.get(parent_key)
            if pslot is not None:
                children_col[pslot].pop(key, None)
        for child in list(children_col[slot]):
            child_slot = slots.get(child)
            if child_slot is not None and parent_col[child_slot] == key:
                parent_col[child_slot] = None
        children_col[slot] = {}
        del slots[key]
        free.append(slot)
        marked.discard(key)
