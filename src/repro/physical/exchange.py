"""Shard exchange operators: the shuffle edges of sharded execution.

The sharded compiler (:func:`repro.physical.planner.compile_into` with a
shard spec) splices these operators onto specific producer→consumer edges
to re-partition derived streams between operators, exactly where a
distributed dataflow would place a shuffle:

* :class:`ShardBroadcastOp` — replicates a *partitioned* stream (each
  delta lives on exactly one shard) so that every shard observes the
  full stream.  Used in front of PATH operators, whose windowed
  adjacency must hold the whole snapshot graph.
* :class:`ShardRouteOp` — re-partitions a stream by its **result key**
  ``(src, trg)``.  Used in front of the coalescing stage when its input
  is partitioned by something else (a join key): coalescing is keyed
  per result, so exactly one shard must own each key for duplicate
  suppression to match serial execution bit for bit.
* :class:`ShardPartitionFilterOp` — turns a *replicated* stream into a
  partitioned one by keeping only the deltas whose ``src`` this shard
  owns.  Used in front of sinks (so merged per-shard results are the
  serial multiset, not N copies) and to align mixed UNION inputs.

Exchange payloads are flat scalar tuples ``(src, trg, ts, exp, sign)``
of interned ids — the columnar delta representation is what makes them
cheap to ship across process boundaries.  Payload-carrying tuples never
cross shards: materialized paths stay on the shard that derived them
(path outputs are consumed via sinks or via join leaves, which drop
payloads anyway).
"""

from __future__ import annotations

from repro.core.batch import DeltaBatch
from repro.core.intervals import Interval
from repro.core.partition import ShardContext, vertex_owner
from repro.core.tuples import SGT, Label
from repro.dataflow.graph import INSERT, Event, PhysicalOperator


class _ExchangeOp(PhysicalOperator):
    """Common machinery: label-typed reconstruction of remote deltas."""

    def __init__(self, name: str, ctx: ShardContext, uid: int, label: Label):
        super().__init__(name)
        self.ctx = ctx
        self.uid = uid
        self.label = label
        ctx.register(uid, self)

    def receive_exchange(self, payload: tuple) -> None:
        """Deliver one remote delta into this shard's local stream."""
        src, trg, ts, exp, sign = payload
        self.emit_sgt(SGT(src, trg, self.label, Interval(ts, exp)), sign)


class ShardBroadcastOp(_ExchangeOp):
    """Replicates a partitioned stream to every shard.

    Local subscribers receive each delta directly; every peer shard
    receives a scalar copy through the exchange and forwards it to *its*
    local subscribers (remote deliveries are not re-broadcast).
    """

    def __init__(self, ctx: ShardContext, uid: int, label: Label):
        super().__init__(f"shard-bcast[{label}]", ctx, uid, label)

    def on_event(self, port: int, event: Event) -> None:
        sgt = event.sgt
        self.ctx.broadcast(
            self.uid, (sgt.src, sgt.trg, sgt.interval.ts, sgt.interval.exp, event.sign)
        )
        self.emit(event)

    def on_batch(self, port: int, batch: DeltaBatch) -> None:
        broadcast = self.ctx.broadcast
        uid = self.uid
        cols = batch.columns
        if cols is not None and batch.signs is None:
            src, dst, ts, exp = cols.src, cols.dst, cols.ts, cols.exp
            for i in range(len(src)):
                broadcast(uid, (src[i], dst[i], ts[i], exp[i], INSERT))
        else:
            for sgt, sign in batch.events():
                broadcast(
                    uid, (sgt.src, sgt.trg, sgt.interval.ts, sgt.interval.exp, sign)
                )
        self.emit_batch(batch)


class ShardRouteOp(_ExchangeOp):
    """Re-partitions a stream by result key ``(src, trg)``.

    A delta whose key this shard owns flows straight through; any other
    delta is shipped to its owner (and suppressed locally), so each
    result key is seen by exactly one shard's downstream consumer.
    """

    def __init__(self, ctx: ShardContext, uid: int, label: Label):
        super().__init__(f"shard-route[{label}]", ctx, uid, label)

    def _route(self, src, trg, ts: int, exp: int, sign: int) -> bool:
        """True when the delta is local; False after shipping it."""
        ctx = self.ctx
        dest = ctx.owner_of_key((src, trg))
        if dest == ctx.shard_id:
            return True
        ctx.send(dest, self.uid, (src, trg, ts, exp, sign))
        return False

    def on_event(self, port: int, event: Event) -> None:
        sgt = event.sgt
        if self._route(
            sgt.src, sgt.trg, sgt.interval.ts, sgt.interval.exp, event.sign
        ):
            self.emit(event)

    def on_batch(self, port: int, batch: DeltaBatch) -> None:
        self._begin_batch()
        try:
            for sgt, sign in batch.events():
                if self._route(
                    sgt.src, sgt.trg, sgt.interval.ts, sgt.interval.exp, sign
                ):
                    self.emit_sgt(sgt, sign)
        finally:
            self._end_batch(batch.boundary)


class ShardPartitionFilterOp(PhysicalOperator):
    """Keeps the deltas of a replicated stream that this shard owns.

    Ownership is by ``src`` (the same key PATH root-partitioning uses),
    so across all shards each delta of the replicated stream survives on
    exactly one — no exchange traffic, just a local drop.
    """

    def __init__(self, ctx: ShardContext, label: Label):
        super().__init__(f"shard-filter[{label}]")
        self.ctx = ctx
        self.label = label

    def on_event(self, port: int, event: Event) -> None:
        if self.ctx.owns_vertex(event.sgt.src):
            self.emit(event)

    def on_batch(self, port: int, batch: DeltaBatch) -> None:
        shard_id = self.ctx.shard_id
        num = self.ctx.num_shards
        self._begin_batch()
        try:
            for sgt, sign in batch.events():
                if vertex_owner(sgt.src, num) == shard_id:
                    self.emit_sgt(sgt, sign)
        finally:
            self._end_batch(batch.boundary)
