"""Physical UNION: stateless merge with optional relabeling (Definition 18)."""

from __future__ import annotations

from repro.core.batch import DeltaBatch
from repro.core.tuples import SGT, Label
from repro.dataflow.graph import Event, PhysicalOperator


class UnionOp(PhysicalOperator):
    """Merges any number of input ports into one output stream.

    When ``label`` is given, outgoing sgts are relabeled; payloads are
    preserved so relabeled paths remain materialized paths.
    """

    def __init__(self, label: Label | None = None):
        super().__init__(f"union[{label or ''}]")
        self.label = label

    def on_event(self, port: int, event: Event) -> None:
        if self.label is None or event.sgt.label == self.label:
            self.emit(event)
            return
        sgt = event.sgt
        relabeled = SGT(sgt.src, sgt.trg, self.label, sgt.interval, sgt.payload)
        self.emit(Event(relabeled, event.sign))

    def on_batch(self, port: int, batch: DeltaBatch) -> None:
        """Bulk merge: forward the batch unchanged (zero copy) when no
        relabeling applies, otherwise relabel in one tight pass."""
        label = self.label
        if label is None:
            self.emit_batch(batch)
            return
        sgts = batch.sgts
        out = [
            s
            if s.label == label
            else SGT(s.src, s.trg, label, s.interval, s.payload)
            for s in sgts
        ]
        self.emit_batch(DeltaBatch(batch.boundary, out, batch.signs))
