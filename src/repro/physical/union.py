"""Physical UNION: stateless merge with optional relabeling (Definition 18)."""

from __future__ import annotations

from repro.core.batch import DeltaBatch
from repro.core.tuples import SGT, Label
from repro.dataflow.graph import Event, PhysicalOperator


class UnionOp(PhysicalOperator):
    """Merges any number of input ports into one output stream.

    When ``label`` is given, outgoing sgts are relabeled.  *Explicit*
    payloads — materialized paths, operator-provided provenance — are
    preserved, so relabeled paths remain materialized paths.  A lazily
    defaulted edge payload (the common case: the payload is just the
    sgt's own ``(src, label, trg)``) materializes under the *relabeled*
    label: default payloads carry no provenance, which keeps row-wise
    and columnar relabeling identical (columns hold no payloads to
    forward).
    """

    def __init__(self, label: Label | None = None):
        super().__init__(f"union[{label or ''}]")
        self.label = label

    def on_event(self, port: int, event: Event) -> None:
        sgt = event.sgt
        if self.label is None or sgt.label == self.label:
            self.emit(event)
            return
        # The raw slot keeps a lazily-defaulted payload lazy across the
        # relabel; explicit payloads (materialized paths) are preserved.
        relabeled = SGT(sgt.src, sgt.trg, self.label, sgt.interval, sgt._payload)
        self.emit(Event(relabeled, event.sign))

    def on_batch(self, port: int, batch: DeltaBatch) -> None:
        """Bulk merge: forward the batch unchanged (zero copy) when no
        relabeling applies, otherwise relabel in one tight pass.

        A columnar batch relabels by sharing its columns under the new
        label — zero copies either way.  This covers the vector mode
        too: label lives outside the arrays (batches are label-constant),
        so union/relabel over ndarray-backed columns is a column rewrite
        with no array traffic at all — the int64 columns are shared
        untouched."""
        label = self.label
        if label is None:
            self.emit_batch(batch)
            return
        cols = batch.columns
        if cols is not None:
            if cols.label != label:
                cols = cols.relabeled(label)
            self.emit_batch(
                DeltaBatch(batch.boundary, signs=batch.signs, columns=cols)
            )
            return
        sgts = batch.sgts
        out = [
            s
            if s.label == label
            else SGT(s.src, s.trg, label, s.interval, s._payload)
            for s in sgts
        ]
        self.emit_batch(DeltaBatch(batch.boundary, out, batch.signs))
