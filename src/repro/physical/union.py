"""Physical UNION: stateless merge with optional relabeling (Definition 18)."""

from __future__ import annotations

from repro.core.tuples import SGT, Label
from repro.dataflow.graph import Event, PhysicalOperator


class UnionOp(PhysicalOperator):
    """Merges any number of input ports into one output stream.

    When ``label`` is given, outgoing sgts are relabeled; payloads are
    preserved so relabeled paths remain materialized paths.
    """

    def __init__(self, label: Label | None = None):
        super().__init__(f"union[{label or ''}]")
        self.label = label

    def on_event(self, port: int, event: Event) -> None:
        if self.label is None or event.sgt.label == self.label:
            self.emit(event)
            return
        sgt = event.sgt
        relabeled = SGT(sgt.src, sgt.trg, self.label, sgt.interval, sgt.payload)
        self.emit(Event(relabeled, event.sign))
