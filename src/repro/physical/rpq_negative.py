"""Negative-tuple streaming RPQ operator ([Pacaci et al., SIGMOD 2020]).

The default PATH implementation of the paper's prototype (Section 6.2.3):
the same Δ-tree spanning forest as S-PATH, but maintained under the
*negative tuple* discipline:

* **Insertions** only *Expand*: when a (vertex, state) pair is already in
  a tree with a still-valid derivation, the new (possibly later-expiring)
  derivation is ignored — the tree keeps the first derivation found
  (compare Example 10 / Figure 9d of the paper).
* **Expirations** are processed with the same machinery as explicit
  deletions: when the window slides, every tree node whose derivation
  expired is marked (together with its subtree) and the snapshot graph is
  traversed to find alternative, still-valid paths — the DRed-style
  delete-and-re-derive step that S-PATH's direct approach avoids.

This operator exists (a) as the baseline for the Table 3 comparison, and
(b) as an independent implementation of PATH used to cross-validate
S-PATH in the test suite.
"""

from __future__ import annotations

from repro.core.expiry import TimingWheel
from repro.core.intervals import Interval
from repro.core.tuples import SGT, Label
from repro.dataflow.graph import DELETE, INSERT, Event, PhysicalOperator
from repro.errors import ExecutionError
from repro.physical.delta_index import (
    ColumnarPathIngest,
    DeltaPathIndex,
    NodeKey,
    SpanningTree,
    TreeNode,
    WindowAdjacency,
    repair_nodes,
    reverse_transitions,
)
from repro.physical.state_arrays import (
    STATE_LAYOUTS,
    ArrayAdjacency,
    ArrayPathIndex,
    ArraySpanningTree,
    new_maintenance_counters,
    repair_nodes_arrays,
)
from repro.regex.ast import RegexNode
from repro.regex.dfa import DFA, dfa_from_regex


class NegativeTupleRpqOp(ColumnarPathIngest, PhysicalOperator):
    """Physical PATH operator following the negative-tuple approach."""

    def __init__(
        self,
        labels: list[Label],
        regex: RegexNode | str,
        out_label: Label,
        materialize_paths: bool = True,
    ):
        super().__init__(f"rpq-neg[{out_label}]")
        self.labels = list(labels)
        self.out_label = out_label
        #: When False, result payloads are plain derived edges instead of
        #: materialized paths (cheaper; used by benchmarks comparing pair
        #: production against the path-less DD baseline).
        self.materialize_paths = materialize_paths
        self.dfa: DFA = dfa_from_regex(regex)
        if self.dfa.start_is_accepting():
            raise ExecutionError("PATH regex must not accept the empty word")
        self._reverse = reverse_transitions(self.dfa)
        #: label → [(s, t)] transition pairs, computed once: the per-edge
        #: DFA scan of ``states_with_transition_on`` is hot-path work.
        self._transitions = {
            label: self.dfa.states_with_transition_on(label)
            for label in dict.fromkeys(self.labels)
        }
        self.index = DeltaPathIndex(self.dfa.start)
        self.adjacency = WindowAdjacency()
        #: hot-loop caches of the DFA surface
        self._start = self.dfa.start
        self._accepting = self.dfa.accepting
        self._delta = self.dfa.delta
        # Expiry wheel of (root, key) — nodes to re-derive when the
        # window slides.
        self._node_expiry = TimingWheel()
        self._now = -1
        #: sharded execution: when set, this operator maintains only the
        #: spanning trees whose root vertex the shard owns (the adjacency
        #: stays complete — traversals need the whole snapshot graph)
        self.shard_ctx = None
        #: "objects" (TreeNode/Interval structures; the rows/columnar
        #: golden reference) or "arrays" (struct-of-arrays forest + flat
        #: scalar adjacency with batched boundary maintenance); switched
        #: by the engine via :meth:`configure_state_layout`
        self.state_layout = "objects"
        self.maintenance_counters = new_maintenance_counters()

    def configure_state_layout(self, layout: str) -> bool:
        """Switch the operator's state representation (empty state only).

        The engine calls this right after compilation — ``"arrays"``
        under vector execution, the default ``"objects"`` otherwise.
        Checkpoint blobs are layout-independent (identical shapes), so a
        restore after this call loads old-layout checkpoints into the
        new structures directly.  Returns True when the layout changed.
        """
        if layout not in STATE_LAYOUTS:
            raise ExecutionError(f"{self.name}: unknown state layout {layout!r}")
        if layout == self.state_layout:
            return False
        if self.state_size() or self._node_expiry:
            raise ExecutionError(
                f"{self.name}: cannot switch state layout with live state"
            )
        self.state_layout = layout
        if layout == "arrays":
            self.index = ArrayPathIndex(self._start)
            self.adjacency = ArrayAdjacency()
            # Instance-level rebinding: the arrays hot path carries
            # validity as two scalars end to end (no Interval per edge)
            # and batches boundary maintenance — no per-call layout
            # branching anywhere.
            self.on_event = self._on_event_arr
            self.on_batch = self._on_batch_arr
            self.on_advance = self._on_advance_arr
            self._consume_columns = self._consume_columns_arr
        else:
            self.index = DeltaPathIndex(self._start)
            self.adjacency = WindowAdjacency()
            for name in ("on_event", "on_batch", "on_advance", "_consume_columns"):
                self.__dict__.pop(name, None)
        return True

    def set_shard(self, ctx) -> None:
        """Partition the Δ-tree forest by root vertex across shards."""
        self.shard_ctx = ctx

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def on_event(self, port: int, event: Event) -> None:
        try:
            label = self.labels[port]
        except IndexError as exc:
            raise ExecutionError(f"{self.name}: unexpected port {port}") from exc
        sgt = event.sgt
        if event.sign == INSERT:
            self._insert(sgt.src, sgt.trg, label, sgt.interval)
        else:
            self._delete(sgt.src, sgt.trg, label, sgt.interval)

    def on_batch(self, port: int, batch) -> None:
        """Batched ingestion of one input label's deltas.

        Expand-only maintenance keeps the *first* derivation of every
        (vertex, state) pair, which makes the operator order-sensitive by
        design: bulk-loading the batch into the adjacency before linking
        would let an earlier edge's expansion traverse later edges and
        record different (wrong) first derivations.  The loop therefore
        stays per edge in arrival order; the batch amortizes dispatch —
        one port/label resolution, Event-free result capture, and one
        downstream flush per input batch.
        """
        try:
            label = self.labels[port]
        except IndexError as exc:
            raise ExecutionError(f"{self.name}: unexpected port {port}") from exc
        if batch.columns is not None:
            self._ingest_columns(batch, label)
            return
        self._begin_batch()
        try:
            signs = batch.signs
            if signs is None:
                insert = self._insert
                for sgt in batch.sgts:
                    insert(sgt.src, sgt.trg, label, sgt.interval)
            else:
                for sgt, sign in zip(batch.sgts, signs):
                    if sign == INSERT:
                        self._insert(sgt.src, sgt.trg, label, sgt.interval)
                    else:
                        self._delete(sgt.src, sgt.trg, label, sgt.interval)
        finally:
            self._end_batch(batch.boundary)

    def _insert(self, u, v, label: Label, interval: Interval) -> None:
        now = self._now
        if interval.ts > now:
            now = interval.ts
            self._now = now
        self.adjacency.add(u, v, label, interval)

        transitions = self._transitions[label]
        index = self.index
        trees = index.trees
        inverted = index._inverted
        start = self._start
        # Building the task list before expanding doubles as the
        # snapshot of the candidate trees (expansion mutates the index).
        shard = self.shard_ctx
        tasks: list[tuple[object, int, int]] = []
        for s, t in transitions:
            if (
                s == start
                and u not in trees
                and (shard is None or shard.owns_vertex(u))
            ):
                index.ensure_tree(u)
            roots = inverted.get((u, s))
            if roots:
                for root in roots:
                    tasks.append((root, s, t))
        for root, s, t in tasks:
            tree = trees.get(root)
            if tree is None:
                continue
            self._expand(tree, (u, s), (v, t), label, interval, now)

    def _expand(
        self,
        tree: SpanningTree,
        parent_key: NodeKey,
        child_key: NodeKey,
        label: Label,
        edge_interval: Interval,
        now: int,
    ) -> None:
        """Expand-only linking: existing valid nodes are never improved."""
        nodes_get = tree.nodes.get
        root = tree.root
        root_vertex = tree.root_vertex
        register = self.index.register
        unregister = self.index.unregister
        accepting = self._accepting
        dfa_delta = self._delta
        out_group = self.adjacency.out_group
        stack = [(parent_key, child_key, label, edge_interval)]
        while stack:
            parent_key, child_key, label, edge_interval = stack.pop()
            parent = nodes_get(parent_key)
            if parent is None:
                continue
            if parent.exp <= now and parent_key != root:
                continue
            ts = edge_interval.ts
            if parent.ts > ts:
                ts = parent.ts
            exp = edge_interval.exp
            if parent.exp < exp:
                exp = parent.exp
            if exp <= now:
                continue

            node = nodes_get(child_key)
            if node is not None and node.exp <= now:
                for removed_key, _ in tree.remove_subtree(child_key):
                    unregister(root_vertex, removed_key)
                node = None
            if node is not None:
                continue  # first derivation wins; no Propagate
            if child_key == root:
                continue

            node = tree.add_child(parent_key, child_key, ts, exp, label)
            register(root_vertex, child_key)
            self._schedule_expiry(root_vertex, child_key, exp)
            if child_key[1] in accepting:
                self._emit_result(tree, child_key, node, INSERT)

            vertex, state = child_key
            group = out_group(vertex)
            if not group:
                continue
            for (out_label, w), intervals in group.items():
                next_state = dfa_delta(state, out_label)
                if next_state is None:
                    continue
                # Max-expiry interval valid at `now`, inline (this is
                # :meth:`WindowAdjacency.out_edges` without building the
                # per-call result list, and the DFA check above skips the
                # scan entirely for labels the state cannot consume).
                best = None
                best_exp = now
                for candidate in intervals:
                    exp = candidate.exp
                    if exp > best_exp and candidate.ts <= now:
                        best = candidate
                        best_exp = exp
                if best is not None:
                    stack.append((child_key, (w, next_state), out_label, best))

    # ------------------------------------------------------------------
    # Window maintenance: expiration via delete & re-derive
    # ------------------------------------------------------------------
    def on_advance(self, t: int) -> None:
        self._now = max(self._now, t)
        # Group expired nodes per tree, then run one repair per tree —
        # this is the expensive re-derivation traversal of the negative
        # tuple approach.  No subtree marking is needed: a child's expiry
        # never exceeds its parent's (``child.exp = min(parent.exp,
        # edge.exp)`` at link time, and re-derivations preserve the
        # bound), so every descendant of an expired node is itself
        # expired and drains its *own* wheel entry at or before this
        # advance — the drained set already covers the subtrees.
        expired: dict[object, set[NodeKey]] = {}
        trees = self.index.trees
        drained = self._node_expiry.advance(t)
        for root, key in drained:
            tree = trees.get(root)
            if tree is None:
                continue
            node = tree.nodes.get(key)
            if node is None or node.exp > t:
                continue
            expired.setdefault(root, set()).add(key)

        counters = self.maintenance_counters
        if drained:
            counters["drained_entries"] += len(drained)
        if expired:
            counters["boundaries"] += 1
            counters["expired_nodes"] += sum(
                len(keys) for keys in expired.values()
            )
            counters["rederive_trees"] += len(expired)
        for root, keys in expired.items():
            tree = trees.get(root)
            if tree is None:
                continue
            counters["rederive_passes"] += 1
            self._rederive(tree, keys, t)
            self.index.drop_tree_if_trivial(root)

        # Adjacency is purged after re-derivation: the traversal may only
        # use edges valid strictly after t, which `in_edges(…, now=t)`
        # already guarantees, but purging late keeps the code honest about
        # what the negative-tuple approach must scan.
        self.adjacency.purge(t)

    def _rederive(self, tree: SpanningTree, marked: set[NodeKey], now: int) -> None:
        def on_fix(fixed_key: NodeKey, node: TreeNode) -> None:
            self._schedule_expiry(tree.root_vertex, fixed_key, node.exp)
            if self.dfa.is_accepting(fixed_key[1]):
                # Re-derived result: its validity continues past `now`.
                self._emit_result(tree, fixed_key, node, INSERT)

        def on_remove(removed_key: NodeKey, node: TreeNode) -> None:
            self.index.unregister(tree.root_vertex, removed_key)
            # Natural expiration: previously emitted intervals already
            # ended at node.exp <= now, so nothing needs retracting.

        repair_nodes(
            tree,
            marked,
            self.adjacency,
            self.dfa,
            self._reverse,
            now,
            on_fix,
            on_remove,
        )

    # ------------------------------------------------------------------
    # Explicit deletions: the original negative-tuple machinery
    # ------------------------------------------------------------------
    def _delete(self, u, v, label: Label, interval: Interval) -> None:
        now = max(self._now, interval.ts)
        if not self.adjacency.remove(u, v, label, interval):
            return
        for s, t in self.dfa.states_with_transition_on(label):
            child_key = (v, t)
            for root in self.index.roots_containing(child_key):
                tree = self.index.tree(root)
                if tree is None:
                    continue
                node = tree.get(child_key)
                if node is None or node.parent != (u, s) or node.via_label != label:
                    continue
                self._repair_after_delete(tree, child_key, now)

    def _repair_after_delete(self, tree: SpanningTree, key: NodeKey, now: int) -> None:
        marked: set[NodeKey] = set()
        old_state: dict[NodeKey, tuple[int, int]] = {}
        stack = [key]
        while stack:
            current = stack.pop()
            node = tree.get(current)
            if node is None or current in marked:
                continue
            marked.add(current)
            old_state[current] = (node.ts, node.exp)
            stack.extend(node.children)

        def on_fix(fixed_key: NodeKey, node: TreeNode) -> None:
            self._schedule_expiry(tree.root_vertex, fixed_key, node.exp)
            if not self.dfa.is_accepting(fixed_key[1]):
                return
            old_ts, old_exp = old_state[fixed_key]
            self._emit_interval(tree, fixed_key, Interval(old_ts, old_exp), DELETE)
            history_end = min(now, old_exp)
            if history_end > old_ts:
                self._emit_interval(
                    tree, fixed_key, Interval(old_ts, history_end), INSERT
                )
            self._emit_result(tree, fixed_key, node, INSERT)

        def on_remove(removed_key: NodeKey, node: TreeNode) -> None:
            self.index.unregister(tree.root_vertex, removed_key)
            if self.dfa.is_accepting(removed_key[1]):
                old_ts, old_exp = old_state[removed_key]
                self._emit_interval(
                    tree, removed_key, Interval(old_ts, old_exp), DELETE
                )
                history_end = min(now, old_exp)
                if history_end > old_ts:
                    self._emit_interval(
                        tree, removed_key, Interval(old_ts, history_end), INSERT
                    )

        repair_nodes(
            tree,
            marked,
            self.adjacency,
            self.dfa,
            self._reverse,
            now,
            on_fix,
            on_remove,
        )
        self.index.drop_tree_if_trivial(tree.root_vertex)

    # ------------------------------------------------------------------
    # Arrays layout (``state_layout="arrays"``): the same maintenance
    # discipline over struct-of-arrays state — validity as two scalars
    # end to end, flat-pair adjacency scans, and one batched emission
    # capture per window boundary.  Iteration orders match the object
    # layout exactly (see repro.physical.state_arrays), so both layouts
    # are bit-identical.
    # ------------------------------------------------------------------
    def _on_event_arr(self, port: int, event: Event) -> None:
        try:
            label = self.labels[port]
        except IndexError as exc:
            raise ExecutionError(f"{self.name}: unexpected port {port}") from exc
        sgt = event.sgt
        interval = sgt.interval
        if event.sign == INSERT:
            self._insert_arr(sgt.src, sgt.trg, label, interval.ts, interval.exp)
        else:
            self._delete_arr(sgt.src, sgt.trg, label, interval.ts, interval.exp)

    def _on_batch_arr(self, port: int, batch) -> None:
        try:
            label = self.labels[port]
        except IndexError as exc:
            raise ExecutionError(f"{self.name}: unexpected port {port}") from exc
        if batch.columns is not None:
            self._ingest_columns(batch, label)
            return
        self._begin_batch()
        try:
            signs = batch.signs
            if signs is None:
                insert = self._insert_arr
                for sgt in batch.sgts:
                    interval = sgt.interval
                    insert(sgt.src, sgt.trg, label, interval.ts, interval.exp)
            else:
                for sgt, sign in zip(batch.sgts, signs):
                    interval = sgt.interval
                    if sign == INSERT:
                        self._insert_arr(
                            sgt.src, sgt.trg, label, interval.ts, interval.exp
                        )
                    else:
                        self._delete_arr(
                            sgt.src, sgt.trg, label, interval.ts, interval.exp
                        )
        finally:
            self._end_batch(batch.boundary)

    def _insert_arr(self, u, v, label: Label, ts: int, exp: int) -> None:
        now = self._now
        if ts > now:
            now = ts
            self._now = now
        self.adjacency.add(u, v, label, ts, exp)

        transitions = self._transitions[label]
        index = self.index
        trees = index.trees
        inverted = index._inverted
        start = self._start
        shard = self.shard_ctx
        tasks: list[tuple[object, int, int]] = []
        for s, t in transitions:
            if (
                s == start
                and u not in trees
                and (shard is None or shard.owns_vertex(u))
            ):
                index.ensure_tree(u)
            roots = inverted.get((u, s))
            if roots:
                for root in roots:
                    tasks.append((root, s, t))
        for root, s, t in tasks:
            tree = trees.get(root)
            if tree is None:
                continue
            self._expand_arr(tree, (u, s), (v, t), label, ts, exp, now)

    def _expand_arr(
        self,
        tree: ArraySpanningTree,
        parent_key: NodeKey,
        child_key: NodeKey,
        label: Label,
        edge_ts: int,
        edge_exp: int,
        now: int,
    ) -> None:
        """Expand-only linking over tree columns and flat-pair groups."""
        slots_get = tree.slots.get
        ts_col = tree.ts
        exp_col = tree.exp
        root = tree.root
        root_vertex = tree.root_vertex
        register = self.index.register
        unregister = self.index.unregister
        accepting = self._accepting
        dfa_delta = self._delta
        out_group = self.adjacency.out_group
        stack = [(parent_key, child_key, label, edge_ts, edge_exp)]
        while stack:
            parent_key, child_key, label, ts, exp = stack.pop()
            pslot = slots_get(parent_key)
            if pslot is None:
                continue
            parent_exp = exp_col[pslot]
            if parent_exp <= now and parent_key != root:
                continue
            parent_ts = ts_col[pslot]
            if parent_ts > ts:
                ts = parent_ts
            if parent_exp < exp:
                exp = parent_exp
            if exp <= now:
                continue

            cslot = slots_get(child_key)
            if cslot is not None and exp_col[cslot] <= now:
                for removed_key in tree.remove_subtree(child_key):
                    unregister(root_vertex, removed_key)
                cslot = None
            if cslot is not None:
                continue  # first derivation wins; no Propagate
            if child_key == root:
                continue

            cslot = tree.add_child(parent_key, child_key, ts, exp, label)
            register(root_vertex, child_key)
            self._schedule_expiry(root_vertex, child_key, exp)
            if child_key[1] in accepting:
                self._emit_result_arr(tree, child_key, cslot, INSERT)

            vertex, state = child_key
            group = out_group(vertex)
            if not group:
                continue
            for (out_label, w), rows in group.items():
                next_state = dfa_delta(state, out_label)
                if next_state is None:
                    continue
                # Max-expiry pair valid at `now`, two ints per candidate.
                best_ts = -1
                best_exp = now
                for i in range(0, len(rows), 2):
                    row_exp = rows[i + 1]
                    if row_exp > best_exp and rows[i] <= now:
                        best_ts = rows[i]
                        best_exp = row_exp
                if best_ts >= 0:
                    stack.append(
                        (child_key, (w, next_state), out_label, best_ts, best_exp)
                    )

    def _on_advance_arr(self, t: int) -> None:
        """Batched boundary maintenance: one bulk epoch drain, one grouped
        repair per affected tree, and all re-emissions captured into a
        single columnar (or row) batch for the whole boundary.

        Emitting the batch here is watermark-safe: ``receive_watermark``
        runs ``on_advance`` *before* cascading the watermark downstream,
        so the batch arrives ahead of the frontier move exactly like the
        object layout's individual emissions did.
        """
        self._now = max(self._now, t)
        expired: dict[object, set[NodeKey]] = {}
        trees = self.index.trees
        counters = self.maintenance_counters
        drained = 0
        for _, items in self._node_expiry.drain_epochs(t):
            drained += len(items)
            for root, key in items:
                tree = trees.get(root)
                if tree is None:
                    continue
                slot = tree.slots.get(key)
                if slot is None or tree.exp[slot] > t:
                    continue
                expired.setdefault(root, set()).add(key)
        if drained:
            counters["drained_entries"] += drained

        if expired:
            counters["boundaries"] += 1
            counters["expired_nodes"] += sum(
                len(keys) for keys in expired.values()
            )
            counters["rederive_trees"] += len(expired)
            # Batch the rederivation re-emissions (unless an outer batch
            # capture is already active — then they join it).
            batched = self._capture_cols is None and self._capture_sgts is None
            if batched:
                if self.materialize_paths:
                    self._begin_batch()
                else:
                    self._begin_batch_cols(self.out_label)
            try:
                for root, keys in expired.items():
                    tree = trees.get(root)
                    if tree is None:
                        continue
                    counters["rederive_passes"] += 1
                    self._rederive_arr(tree, keys, t)
                    self.index.drop_tree_if_trivial(root)
            finally:
                if batched:
                    if self.materialize_paths:
                        self._end_batch(t)
                    else:
                        self._end_batch_cols(t)

        self.adjacency.purge(t)

    def _rederive_arr(
        self, tree: ArraySpanningTree, marked: set[NodeKey], now: int
    ) -> None:
        accepting = self._accepting
        exp_col = tree.exp

        def on_fix(fixed_key: NodeKey, slot: int) -> None:
            self._schedule_expiry(tree.root_vertex, fixed_key, exp_col[slot])
            if fixed_key[1] in accepting:
                self._emit_result_arr(tree, fixed_key, slot, INSERT)

        def on_remove(removed_key: NodeKey, slot: int) -> None:
            self.index.unregister(tree.root_vertex, removed_key)

        repair_nodes_arrays(
            tree,
            marked,
            self.adjacency,
            self.dfa,
            self._reverse,
            now,
            on_fix,
            on_remove,
        )

    def _delete_arr(self, u, v, label: Label, ts: int, exp: int) -> None:
        now = max(self._now, ts)
        if not self.adjacency.remove(u, v, label, ts, exp):
            return
        for s, t in self.dfa.states_with_transition_on(label):
            child_key = (v, t)
            for root in self.index.roots_containing(child_key):
                tree = self.index.tree(root)
                if tree is None:
                    continue
                slot = tree.slots.get(child_key)
                if (
                    slot is None
                    or tree.parent[slot] != (u, s)
                    or tree.via[slot] != label
                ):
                    continue
                self._repair_after_delete_arr(tree, child_key, now)

    def _repair_after_delete_arr(
        self, tree: ArraySpanningTree, key: NodeKey, now: int
    ) -> None:
        marked: set[NodeKey] = set()
        old_state: dict[NodeKey, tuple[int, int]] = {}
        slots = tree.slots
        ts_col = tree.ts
        exp_col = tree.exp
        children_col = tree.children
        stack = [key]
        while stack:
            current = stack.pop()
            slot = slots.get(current)
            if slot is None or current in marked:
                continue
            marked.add(current)
            old_state[current] = (ts_col[slot], exp_col[slot])
            stack.extend(children_col[slot])

        def on_fix(fixed_key: NodeKey, slot: int) -> None:
            self._schedule_expiry(tree.root_vertex, fixed_key, exp_col[slot])
            if not self.dfa.is_accepting(fixed_key[1]):
                return
            old_ts, old_exp = old_state[fixed_key]
            self._emit_interval(tree, fixed_key, Interval(old_ts, old_exp), DELETE)
            history_end = min(now, old_exp)
            if history_end > old_ts:
                self._emit_interval(
                    tree, fixed_key, Interval(old_ts, history_end), INSERT
                )
            self._emit_result_arr(tree, fixed_key, slot, INSERT)

        def on_remove(removed_key: NodeKey, slot: int) -> None:
            self.index.unregister(tree.root_vertex, removed_key)
            if self.dfa.is_accepting(removed_key[1]):
                old_ts, old_exp = old_state[removed_key]
                self._emit_interval(
                    tree, removed_key, Interval(old_ts, old_exp), DELETE
                )
                history_end = min(now, old_exp)
                if history_end > old_ts:
                    self._emit_interval(
                        tree, removed_key, Interval(old_ts, history_end), INSERT
                    )

        repair_nodes_arrays(
            tree,
            marked,
            self.adjacency,
            self.dfa,
            self._reverse,
            now,
            on_fix,
            on_remove,
        )
        self.index.drop_tree_if_trivial(tree.root_vertex)

    def _emit_result_arr(
        self, tree: ArraySpanningTree, key: NodeKey, slot: int, sign: int
    ) -> None:
        cols = self._capture_cols
        if cols is not None:
            cols.append(tree.root_vertex, key[0], tree.ts[slot], tree.exp[slot], sign)
            return
        payload = tree.path_to(key) if self.materialize_paths else None
        sgt = SGT(
            tree.root_vertex,
            key[0],
            self.out_label,
            Interval(tree.ts[slot], tree.exp[slot]),
            payload,
        )
        self.emit_sgt(sgt, sign)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _emit_result(
        self, tree: SpanningTree, key: NodeKey, node: TreeNode, sign: int
    ) -> None:
        cols = self._capture_cols
        if cols is not None:
            cols.append(tree.root_vertex, key[0], node.ts, node.exp, sign)
            return
        payload = tree.path_to(key) if self.materialize_paths else None
        sgt = SGT(
            tree.root_vertex,
            key[0],
            self.out_label,
            Interval(node.ts, node.exp),
            payload,
        )
        self.emit_sgt(sgt, sign)

    def _emit_interval(
        self, tree: SpanningTree, key: NodeKey, interval: Interval, sign: int
    ) -> None:
        """Emit an insertion/retraction for an explicit result interval."""
        cols = self._capture_cols
        if cols is not None:
            cols.append(tree.root_vertex, key[0], interval.ts, interval.exp, sign)
            return
        sgt = SGT(tree.root_vertex, key[0], self.out_label, interval)
        self.emit_sgt(sgt, sign)

    def state_size(self) -> int:
        return self.index.state_size() + len(self.adjacency)

    def state_breakdown(self) -> dict:
        nodes = self.index.state_size()
        edges = len(self.adjacency)
        return {"rows": nodes + edges, "bytes": nodes * 200 + edges * 120}

    # ------------------------------------------------------------------
    # Checkpointing (same blob shape as SPathOp: both maintain the
    # Δ-forest + window adjacency + node-expiry wheel, and restore is
    # structure-for-structure, so the blobs are interchangeable across
    # ``path_impl`` only in shape — never restored cross-impl because
    # restore requires an identical engine config)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "kind": "path",
            "partitioned": self.shard_ctx is not None,
            "now": self._now,
            "index": self.index.snapshot_state(),
            "adjacency": self.adjacency.snapshot_state(),
            "node_expiry": self._node_expiry.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        if state.get("kind") != "path":
            from repro.errors import CheckpointError

            raise CheckpointError(
                f"operator {self.name}: expected a path state blob, got "
                f"kind={state.get('kind')!r}"
            )
        self._now = state["now"]
        self.index.restore_state(state["index"])
        self.adjacency.restore_state(state["adjacency"])
        wheel = TimingWheel()
        wheel.restore(state["node_expiry"])
        self._node_expiry = wheel
