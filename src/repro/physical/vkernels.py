"""Shared helpers for the vector (numpy) operator kernels.

The compile pipeline's kernel-selection pass
(:func:`repro.ql.pipeline.kernel_choices`) and the kernels themselves
both need the same question answered: *can this predicate run as a
boolean mask over int64 columns?*  Under interned execution the answer
is yes for every canonical :class:`~repro.algebra.operators.Predicate`
— conditions are equality/inequality against constants, vertex
constants are interned to dense ints by
:func:`~repro.core.interning.intern_plan`, and label conditions are
batch-constant (batches are label-constant along every dataflow edge),
so they resolve to a scalar True/False per batch.

:func:`compile_mask` turns a predicate into a closure evaluated once
per batch.  The closure returns

* ``True``  — every row passes (zero-copy pass-through),
* ``False`` — no row passes (drop the batch),
* a boolean ndarray — the per-row mask to select with.

Kernels fall back to the row-wise loop when compilation declines
(``None``), which keeps subclassed or exotic predicates correct.
"""

from __future__ import annotations

from typing import Callable

from repro.algebra.operators import Predicate

#: The compiled-mask result type (see module docstring).
MaskFn = Callable


def mask_compilable(predicate) -> bool:
    """True iff :func:`compile_mask` will accept ``predicate``."""
    if type(predicate) is not Predicate:
        return False
    return all(
        attribute in ("src", "trg", "label") and op in ("==", "!=")
        for attribute, op, value in predicate.conditions
    )


def compile_mask(predicate) -> MaskFn | None:
    """A per-batch mask closure for ``predicate``, or ``None``.

    The closure signature is ``mask(src, dst, label, np)`` where ``src``
    / ``dst`` are int64 ndarrays, ``label`` is the batch's label and
    ``np`` the numpy module (passed in so this module never imports
    numpy itself — the closure only runs on array-backed batches, which
    only exist when numpy does).
    """
    if not mask_compilable(predicate):
        return None
    conditions = predicate.conditions

    def mask(src, dst, label, np):
        out = None
        for attribute, op, expected in conditions:
            if attribute == "label":
                matches = label == expected
                if (op == "==") != matches:
                    return False
                continue
            column = src if attribute == "src" else dst
            current = column == expected if op == "==" else column != expected
            out = current if out is None else out & current
        if out is None:
            return True
        return out

    return mask
