"""repro — a streaming graph query processor.

Reproduction of "Evaluating Complex Queries on Streaming Graphs"
(Pacaci, Bonifati, Özsu — ICDE 2022).

The top-level namespace re-exports the pieces a downstream user needs:

* the data model (:class:`SGE`, :class:`SGT`, :class:`Interval`,
  :class:`SlidingWindow`),
* query authoring (:mod:`repro.ql` — :class:`Query`, the fluent
  builder, :class:`PreparedQuery` templates; plus the lower-level
  :func:`parse_rq`, :func:`parse_gcore`, :class:`SGQ`),
* the engine session API (:class:`StreamingGraphEngine`,
  :class:`EngineConfig`) — plus the deprecated
  :class:`StreamingGraphQueryProcessor` shim.

See ``examples/quickstart.py`` for a five-minute tour.
"""

from repro.core import SGE, SGT, Interval, SlidingWindow

__version__ = "1.0.0"

__all__ = [
    "SGE",
    "SGT",
    "Interval",
    "SlidingWindow",
    "StreamingGraphEngine",
    "EngineConfig",
    "StreamingGraphQueryProcessor",
    "Query",
    "PreparedQuery",
    "ql",
    "parse_rq",
    "parse_gcore",
    "SGQ",
    "__version__",
]


def __getattr__(name: str):
    # Lazy imports keep `import repro` cheap and avoid import cycles while
    # still exposing the full public API at the top level.
    if name in ("StreamingGraphEngine", "EngineConfig"):
        import repro.engine

        return getattr(repro.engine, name)
    if name == "StreamingGraphQueryProcessor":
        from repro.engine import StreamingGraphQueryProcessor

        return StreamingGraphQueryProcessor
    if name == "parse_rq":
        from repro.query import parse_rq

        return parse_rq
    if name == "parse_gcore":
        from repro.gcore import parse_gcore

        return parse_gcore
    if name == "SGQ":
        from repro.query import SGQ

        return SGQ
    if name == "ql":
        import repro.ql

        return repro.ql
    if name in ("Query", "PreparedQuery"):
        import repro.ql

        return getattr(repro.ql, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
