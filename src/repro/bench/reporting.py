"""ASCII table rendering for benchmark rows."""

from __future__ import annotations

from typing import Iterable


def format_rows(
    rows: list[dict[str, object]],
    columns: Iterable[str] | None = None,
    title: str | None = None,
) -> str:
    """Render row dicts as a fixed-width ASCII table.

    Columns default to the union of keys in first-seen order, with the
    identifying columns (dataset/query/plan/system) pulled to the front.
    """
    if not rows:
        return "(no rows)"

    if columns is None:
        seen: dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key, None)
        front = [
            k
            for k in ("dataset", "query", "plan", "system")
            if k in seen
        ]
        rest = [k for k in seen if k not in front]
        columns = front + rest
    columns = list(columns)

    widths = {c: len(c) for c in columns}
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            text = f"{value}"
            widths[column] = max(widths[column], len(text))
            cells.append(text)
        rendered.append(cells)

    lines: list[str] = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for cells in rendered:
        lines.append(
            " | ".join(cell.ljust(widths[c]) for cell, c in zip(cells, columns))
        )
    return "\n".join(lines)
