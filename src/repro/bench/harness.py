"""Timed executions of the two engine backends over prepared streams.

Both measurements go through the one session API
(:class:`~repro.engine.session.StreamingGraphEngine`): the backend is an
:class:`~repro.engine.session.EngineConfig` flip, both backends are
driven by the same shared :class:`~repro.core.batch.BatchScheduler` via
``engine.push_many`` (the no-per-edge-overhead fast path), so the
numbers compare the algorithms, not the drivers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.operators import Plan
from repro.core.tuples import SGE, Label
from repro.core.windows import SlidingWindow
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.query.datalog import RQProgram
from repro.query.sgq import SGQ


@dataclass
class BenchResult:
    """One benchmark measurement (one system × query × configuration)."""

    system: str
    throughput: float
    tail_latency: float
    edges: int
    slides: int
    results: int
    batches: int = 0

    def row(self, **extra: object) -> dict[str, object]:
        data = {
            "system": self.system,
            "throughput (edges/s)": round(self.throughput, 1),
            "p99 latency (s)": round(self.tail_latency, 5),
            "edges": self.edges,
            "slides": self.slides,
            "results": self.results,
        }
        data.update(extra)
        return data


def run_sga_bench(
    plan: Plan,
    stream: list[SGE],
    path_impl: str = "negative",
    batch_size: int | None = None,
    execution: str = "auto",
    state_layout: str = "auto",
) -> BenchResult:
    """Run the SGA backend over a stream and collect metrics.

    ``path_impl`` defaults to the negative-tuple RPQ operator — the
    prototype's default PATH implementation (Section 6.2.3); Table 3
    passes ``"spath"`` to measure the S-PATH alternative.  ``batch_size``
    selects batched delta execution (``None`` = per-tuple).
    ``execution`` pins the delta representation — ``"vector"`` /
    ``"columnar"`` / ``"rows"``; the default ``"auto"`` resolves the
    way the engine does (vector when numpy is importable).  Recorded
    comparisons should pin it explicitly so baseline and candidate
    entries name what they measured.

    ``state_layout`` is a benchmarking override: the engine pairs vector
    execution with the struct-of-arrays operator state, and
    ``state_layout="objects"`` switches the (still empty) operators back
    to the object layout after registration — how before/after pairs
    isolate the state-layout contribution on one machine.
    """
    # Paths are not materialized: the DD baseline cannot return paths,
    # so the comparison is over result-pair production (as in the paper).
    engine = StreamingGraphEngine(
        EngineConfig(
            backend="sga",
            path_impl=path_impl,
            materialize_paths=False,
            batch_size=batch_size,
            execution=execution,
        )
    )
    handle = engine.register(plan, name="bench")
    if state_layout != "auto":
        from repro.physical.state_arrays import apply_state_layout

        apply_state_layout(engine._graph.operators, state_layout)
    stats = engine.push_many(stream)
    # The system string deliberately omits the execution mode: trajectory
    # entries are compared cell-by-cell across labels (pr4-columnar vs
    # pr6-vectorized), so the cell key must stay stable; the entry's
    # label/note carry which execution was pinned.
    suffix = "" if batch_size is None else f",b={batch_size}"
    return BenchResult(
        system=f"SGA[{path_impl}{suffix}]",
        throughput=stats.throughput,
        tail_latency=stats.tail_latency(),
        edges=stats.total_edges,
        slides=len(stats.slides),
        results=handle.result_count(),
        batches=stats.total_batches,
    )


def run_sga_sharded_bench(
    plan: Plan,
    stream: list[SGE],
    path_impl: str = "negative",
    shards: int = 1,
) -> BenchResult:
    """One point of the shard-scaling curve (CPU-work accounting).

    ``shards=1`` runs the plain engine; ``shards>1`` the multiprocessing
    transport.  Throughput is ``edges / busiest-shard CPU seconds``
    (``time.process_time`` inside the workers): per-shard CPU work is
    the quantity sharding divides, and it is measurable on any CI box —
    single-core machines time-slice the workers, so wall clock there
    shows only scheduling overhead, while the busiest shard's CPU time
    is the wall clock an adequately-cored machine approaches.  The
    ``shards=1`` row uses the same accounting (process CPU time of the
    engine loop) so the curve is like for like.
    """
    import time

    if shards == 1:
        engine = StreamingGraphEngine(
            EngineConfig(
                backend="sga", path_impl=path_impl, materialize_paths=False
            )
        )
        handle = engine.register(plan, name="bench")
        cpu_start = time.process_time()
        stats = engine.push_many(stream)
        cpu = time.process_time() - cpu_start
        results = handle.result_count()
    else:
        engine = StreamingGraphEngine(
            EngineConfig(
                backend="sga",
                path_impl=path_impl,
                materialize_paths=False,
                shards=shards,
                shard_transport="process",
            )
        )
        handle = engine.register(plan, name="bench")
        stats = engine.push_many(stream)
        cpu = max(engine._sharded.worker_busy_seconds())
        results = handle.result_count()
        engine.close()
    return BenchResult(
        system=f"SGA[{path_impl},shards={shards}]",
        throughput=stats.total_edges / cpu if cpu else float("inf"),
        tail_latency=stats.tail_latency(),
        edges=stats.total_edges,
        slides=len(stats.slides),
        results=results,
        batches=stats.total_batches,
    )


def run_dd_bench(
    program: RQProgram,
    stream: list[SGE],
    window: SlidingWindow,
    label_windows: dict[Label, SlidingWindow] | None = None,
    batch_size: int | None = None,
) -> BenchResult:
    """Run the DD baseline backend over a stream and collect metrics."""
    engine = StreamingGraphEngine(
        EngineConfig(backend="dd", batch_size=batch_size)
    )
    handle = engine.register(
        SGQ(program, window, dict(label_windows or {})), name="bench"
    )
    stats = engine.push_many(stream)
    return BenchResult(
        system="DD",
        throughput=stats.throughput,
        tail_latency=stats.tail_latency(),
        edges=stats.total_edges,
        slides=len(stats.epochs),
        results=len(handle.answer()),
        batches=stats.total_batches,
    )
