"""Timed executions of the two engines over prepared streams."""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.operators import Plan
from repro.core.tuples import SGE, Label
from repro.core.windows import SlidingWindow
from repro.dd import DDEngine
from repro.engine import StreamingGraphQueryProcessor
from repro.query.datalog import RQProgram


@dataclass
class BenchResult:
    """One benchmark measurement (one system × query × configuration)."""

    system: str
    throughput: float
    tail_latency: float
    edges: int
    slides: int
    results: int
    batches: int = 0

    def row(self, **extra: object) -> dict[str, object]:
        data = {
            "system": self.system,
            "throughput (edges/s)": round(self.throughput, 1),
            "p99 latency (s)": round(self.tail_latency, 5),
            "edges": self.edges,
            "slides": self.slides,
            "results": self.results,
        }
        data.update(extra)
        return data


def run_sga_bench(
    plan: Plan,
    stream: list[SGE],
    path_impl: str = "negative",
    batch_size: int | None = None,
) -> BenchResult:
    """Run the SGA engine over a stream and collect metrics.

    ``path_impl`` defaults to the negative-tuple RPQ operator — the
    prototype's default PATH implementation (Section 6.2.3); Table 3
    passes ``"spath"`` to measure the S-PATH alternative.  ``batch_size``
    selects batched delta execution (``None`` = per-tuple).
    """
    # Paths are not materialized: the DD baseline cannot return paths,
    # so the comparison is over result-pair production (as in the paper).
    processor = StreamingGraphQueryProcessor(
        plan, path_impl, materialize_paths=False, batch_size=batch_size
    )
    stats = processor.run(stream)
    suffix = "" if batch_size is None else f",b={batch_size}"
    return BenchResult(
        system=f"SGA[{path_impl}{suffix}]",
        throughput=stats.throughput,
        tail_latency=stats.tail_latency(),
        edges=stats.total_edges,
        slides=len(stats.slides),
        results=processor.result_count(),
        batches=stats.total_batches,
    )


def run_dd_bench(
    program: RQProgram,
    stream: list[SGE],
    window: SlidingWindow,
    label_windows: dict[Label, SlidingWindow] | None = None,
    batch_size: int | None = None,
) -> BenchResult:
    """Run the DD baseline engine over a stream and collect metrics."""
    engine = DDEngine(program, window, label_windows, batch_size=batch_size)
    stats = engine.run(stream)
    return BenchResult(
        system="DD",
        throughput=stats.throughput,
        tail_latency=stats.tail_latency(),
        edges=stats.total_edges,
        slides=len(stats.epochs),
        results=len(engine.answer()),
        batches=stats.total_batches,
    )
