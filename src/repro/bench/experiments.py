"""Experiment definitions: one function per paper table/figure.

Every function returns a list of row dicts ready for
:func:`repro.bench.reporting.format_rows`.  Scales are configurable; the
defaults keep each experiment in the seconds-to-minutes range on a
laptop.  The time unit convention is 60 ticks = 1 hour, so paper
parameters translate directly (a "1 day" slide is 1440 ticks).

Expected shapes (what the paper reports, which these benches reproduce):

* **Table 2** — SGA ahead of DD on the cyclic SO stream, most visibly on
  the recursive queries; DD competitive on SNB's tree-shaped replyOf
  data; the non-recursive Q5 is orders of magnitude faster than the
  recursive queries on SO.
* **Table 3** — S-PATH gains over the negative-tuple default concentrate
  on SO (many alternative paths); differences on SNB stay small.
* **Figure 10a** — larger windows: lower throughput, higher latency.
* **Figure 10b** — SGA roughly flat across slide sizes.
* **Figure 11** — DD throughput *grows* with slide size (epoch batching).
* **Figures 12-14** — plan choice changes throughput by tens of percent,
  with different winners per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.bench.harness import BenchResult, run_dd_bench, run_sga_bench
from repro.core.tuples import SGE
from repro.core.windows import HOUR, SlidingWindow
from repro.datasets import snb_stream, stackoverflow_stream
from repro.query.parser import parse_rq
from repro.workloads import QUERIES, labels_for, q4_plan_space, rpq_direct_plan

ALL_QUERIES = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7")


@dataclass(frozen=True)
class Scale:
    """Knobs shrinking the paper's setup to laptop size."""

    n_edges: int = 4000
    n_vertices: int = 400
    window: int = 12 * HOUR
    slide: int = HOUR
    seed: int = 0

    def sliding_window(self) -> SlidingWindow:
        return SlidingWindow(self.window, self.slide)


SMALL_SCALE = Scale(n_edges=1200, n_vertices=150, window=6 * HOUR, slide=HOUR)
DEFAULT_SCALE = Scale(n_edges=4000, n_vertices=150, window=12 * HOUR, slide=HOUR)


def _stream(dataset: str, scale: Scale) -> list[SGE]:
    if dataset == "so":
        # Dense and cyclic (small active pool, high reciprocity): the
        # structural properties the paper attributes to StackOverflow.
        return stackoverflow_stream(
            n_edges=scale.n_edges,
            n_users=scale.n_vertices,
            seed=scale.seed,
            reciprocity=0.4,
            active_pool=max(20, scale.n_vertices // 4),
        )
    if dataset == "snb":
        return snb_stream(
            n_edges=scale.n_edges,
            n_persons=max(50, scale.n_vertices // 2),
            seed=scale.seed,
        )
    raise ValueError(f"unknown dataset {dataset!r}")


def _sga_result(
    dataset: str,
    query_name: str,
    stream: list[SGE],
    window: SlidingWindow,
    path_impl: str,
) -> BenchResult:
    labels = labels_for(query_name, dataset)
    plan = QUERIES[query_name].plan(labels, window)
    return run_sga_bench(plan, stream, path_impl=path_impl)


def _dd_result(
    dataset: str,
    query_name: str,
    stream: list[SGE],
    window: SlidingWindow,
) -> BenchResult:
    labels = labels_for(query_name, dataset)
    program = parse_rq(QUERIES[query_name].datalog(labels))
    return run_dd_bench(program, stream, window)


# ----------------------------------------------------------------------
# Table 2: SGA vs DD, Q1-Q7, SO and SNB
# ----------------------------------------------------------------------
def table2_rows(
    scale: Scale = DEFAULT_SCALE,
    datasets: Iterable[str] = ("so", "snb"),
    queries: Iterable[str] = ALL_QUERIES,
) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    window = scale.sliding_window()
    for dataset in datasets:
        stream = _stream(dataset, scale)
        for query_name in queries:
            sga = _sga_result(dataset, query_name, stream, window, "negative")
            dd = _dd_result(dataset, query_name, stream, window)
            rows.append(sga.row(dataset=dataset, query=query_name))
            rows.append(dd.row(dataset=dataset, query=query_name))
    return rows


# ----------------------------------------------------------------------
# Table 3: S-PATH vs the default ([57]) PATH implementation
# ----------------------------------------------------------------------
def table3_rows(
    scale: Scale = DEFAULT_SCALE,
    datasets: Iterable[str] = ("so", "snb"),
    queries: Iterable[str] = ALL_QUERIES,
) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    window = scale.sliding_window()
    for dataset in datasets:
        stream = _stream(dataset, scale)
        for query_name in queries:
            default = _sga_result(dataset, query_name, stream, window, "negative")
            spath = _sga_result(dataset, query_name, stream, window, "spath")
            improvement = (
                (spath.throughput - default.throughput)
                / default.throughput
                * 100.0
                if default.throughput
                else 0.0
            )
            rows.append(
                spath.row(
                    dataset=dataset,
                    query=query_name,
                    improvement_pct=round(improvement, 1),
                )
            )
    return rows


# ----------------------------------------------------------------------
# Figure 10a: window-size sensitivity on SO (SGA)
# ----------------------------------------------------------------------
def fig10a_window_size(
    scale: Scale = DEFAULT_SCALE,
    multipliers: Iterable[float] = (1, 2, 3, 4, 5),
    queries: Iterable[str] = ALL_QUERIES,
) -> list[dict[str, object]]:
    """Window sweep: the paper uses 10-50 days; we sweep multiples of the
    base window with the same 1:5 span."""
    rows: list[dict[str, object]] = []
    stream = _stream("so", scale)
    for multiplier in multipliers:
        window = SlidingWindow(int(scale.window * multiplier), scale.slide)
        for query_name in queries:
            result = _sga_result("so", query_name, stream, window, "negative")
            rows.append(
                result.row(query=query_name, window_ticks=window.size)
            )
    return rows


# ----------------------------------------------------------------------
# Figure 10b: slide sensitivity on SO (SGA)
# ----------------------------------------------------------------------
def fig10b_slide(
    scale: Scale = DEFAULT_SCALE,
    slides: Iterable[int] = (HOUR // 4, HOUR // 2, HOUR, 2 * HOUR),
    queries: Iterable[str] = ALL_QUERIES,
    window_ticks: int | None = None,
) -> list[dict[str, object]]:
    """Slide sweep (paper: 3h-4d): SGA's tuple-at-a-time operators keep
    throughput roughly flat.

    The sweep keeps the slide well below the window size (as the paper
    does: beta/T <= 13%) — Definition 16 shrinks the *average* effective
    window as beta grows (exp = floor(t/beta)*beta + T), so slides
    comparable to the window change the workload itself, not just the
    batching granularity."""
    rows: list[dict[str, object]] = []
    stream = _stream("so", scale)
    window_size = window_ticks or 2 * scale.window
    for slide in slides:
        window = SlidingWindow(window_size, slide)
        for query_name in queries:
            result = _sga_result("so", query_name, stream, window, "negative")
            rows.append(result.row(query=query_name, slide_ticks=slide))
    return rows


# ----------------------------------------------------------------------
# Figure 11: slide sensitivity of the DD baseline on SO
# ----------------------------------------------------------------------
def fig11_dd_slide(
    scale: Scale = DEFAULT_SCALE,
    slides: Iterable[int] = (HOUR // 4, HOUR // 2, HOUR, 2 * HOUR),
    queries: Iterable[str] = ALL_QUERIES,
    window_ticks: int | None = None,
) -> list[dict[str, object]]:
    """DD batches one epoch per slide, so throughput grows with it.

    Same window convention as :func:`fig10b_slide` (beta << T)."""
    rows: list[dict[str, object]] = []
    stream = _stream("so", scale)
    window_size = window_ticks or 2 * scale.window
    for slide in slides:
        window = SlidingWindow(window_size, slide)
        for query_name in queries:
            result = _dd_result("so", query_name, stream, window)
            rows.append(result.row(query=query_name, slide_ticks=slide))
    return rows


# ----------------------------------------------------------------------
# Figures 12-14: the plan-space micro-benchmarks
# ----------------------------------------------------------------------
def plan_space(
    query_name: str,
    scale: Scale = DEFAULT_SCALE,
    datasets: Iterable[str] = ("so", "snb"),
    path_impl: str = "negative",
) -> list[dict[str, object]]:
    """Throughput/latency of the equivalent plans of Section 7.4.

    * Q4 (Figure 12): canonical SGA vs P1/P2/P3,
    * Q2 (Figure 13) and Q3 (Figure 14): canonical SGA vs the direct
      single-PATH plan P1.
    """
    rows: list[dict[str, object]] = []
    window = SlidingWindow(scale.window, scale.slide)
    for dataset in datasets:
        stream = _stream(dataset, scale)
        labels = labels_for(query_name, dataset)
        if query_name == "Q4":
            plans = q4_plan_space(labels, window)
        else:
            plans = {
                "SGA": QUERIES[query_name].plan(labels, window),
                "P1": rpq_direct_plan(query_name, labels, window),
            }
        for plan_name, plan in plans.items():
            result = run_sga_bench(plan, stream, path_impl=path_impl)
            rows.append(
                result.row(dataset=dataset, query=query_name, plan=plan_name)
            )
    return rows
