"""Benchmark harness reproducing the Section 7 experiments.

* :mod:`repro.bench.harness` — timed runs of the SGA engine and the DD
  baseline, reporting the paper's two metrics: aggregate throughput
  (edges/s) and p99 window-slide tail latency.
* :mod:`repro.bench.experiments` — one function per table/figure
  (Table 2, Table 3, Figures 10-14), each returning printable rows.
* :mod:`repro.bench.reporting` — ASCII rendering of result tables.
"""

from repro.bench.harness import BenchResult, run_dd_bench, run_sga_bench
from repro.bench.experiments import (
    SMALL_SCALE,
    Scale,
    fig10a_window_size,
    fig10b_slide,
    fig11_dd_slide,
    plan_space,
    table2_rows,
    table3_rows,
)
from repro.bench.reporting import format_rows

__all__ = [
    "BenchResult",
    "run_sga_bench",
    "run_dd_bench",
    "Scale",
    "SMALL_SCALE",
    "table2_rows",
    "table3_rows",
    "fig10a_window_size",
    "fig10b_slide",
    "fig11_dd_slide",
    "plan_space",
    "format_rows",
]
