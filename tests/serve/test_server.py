"""End-to-end service tests: routing, admission, streams, drain, parity.

Each test boots a :class:`GraphStreamServer` on a free port inside one
``asyncio.run`` and speaks raw HTTP/SSE/WebSocket to it — the same wire
surface external clients use.
"""

import asyncio
import base64
import json
import os

from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.ql.query import Query
from repro.serve.app import GraphStreamServer
from repro.serve.protocol import dumps, encode_event
from repro.serve.tenants import ServerLimits
from tests.conftest import PAPER_QUERY, make_stream

WINDOW, SLIDE = 24, 1
LIKES = "Answer(u,m) <- likes(u,m)."


async def call(port, method, path, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    data = json.dumps(body).encode() if body is not None else b""
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(data)}\r\n\r\n".encode() + data
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, json.loads(payload) if payload else None, headers


class SseStream:
    def __init__(self, port, tenant, query, params="", headers=None):
        self.port, self.tenant, self.query = port, tenant, query
        self.params = params
        self.headers = dict(headers or {})
        self.events: list[str] = []
        self.end_reason = None
        self.ready = asyncio.Event()
        self.task = None

    def start(self):
        self.task = asyncio.ensure_future(self._run())
        return self

    async def _run(self):
        reader, writer = await asyncio.open_connection("127.0.0.1", self.port)
        path = (
            f"/tenants/{self.tenant}/queries/{self.query}/subscribe"
            f"{self.params}"
        )
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in self.headers.items()
        )
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: t\r\n{extra}\r\n".encode()
        )
        await writer.drain()
        buf = b""
        while True:
            chunk = await reader.read(1 << 16)
            if not chunk:
                return
            buf += chunk
            while b"\n\n" in buf:
                frame, _, buf = buf.partition(b"\n\n")
                event = data = None
                for line in frame.decode().splitlines():
                    if line.startswith("event: "):
                        event = line[7:]
                    elif line.startswith("data: "):
                        data = line[6:]
                if event == "ready":
                    self.ready.set()
                elif event == "end":
                    self.end_reason = json.loads(data)["reason"]
                    writer.close()
                    return
                elif data is not None:
                    self.events.append(data)


async def ws_subscribe(port, tenant, query, events, ready):
    """WebSocket subscriber; returns the close reason."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    key = base64.b64encode(os.urandom(16)).decode()
    writer.write(
        (
            f"GET /tenants/{tenant}/queries/{query}/subscribe HTTP/1.1\r\n"
            f"Host: t\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\nSec-WebSocket-Version: 13\r\n\r\n"
        ).encode()
    )
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    assert b" 101 " in head.split(b"\r\n")[0] + b" ", head
    first = True
    while True:
        hdr = await reader.readexactly(2)
        n = hdr[1] & 0x7F
        if n == 126:
            n = int.from_bytes(await reader.readexactly(2), "big")
        elif n == 127:
            n = int.from_bytes(await reader.readexactly(8), "big")
        payload = await reader.readexactly(n) if n else b""
        opcode = hdr[0] & 0x0F
        if opcode == 0x8:
            writer.close()
            return payload[2:].decode()
        if first:
            first = False
            ready.set()
            continue
        events.append(payload.decode())


def reference(text, edges):
    """The in-process event stream every subscriber must match."""
    engine = StreamingGraphEngine(EngineConfig())
    got, seq = [], [0]

    def cb(event):
        seq[0] += 1
        got.append(dumps(encode_event(seq[0], event)))

    engine.register(
        Query.datalog(text, window=WINDOW, slide=SLIDE), on_result=cb
    )
    engine.push_many(edges)
    engine.close()
    return got


def edge_dicts(edges):
    return [
        {"src": e.src, "trg": e.trg, "label": e.label, "t": e.t} for e in edges
    ]


async def register(port, tenant, name, text=LIKES, **extra):
    body = {"query": text, "window": WINDOW, "slide": SLIDE, "name": name}
    body.update(extra)
    return await call(port, "POST", f"/tenants/{tenant}/queries", body)


class TestRouting:
    def test_healthz_metrics_and_errors(self):
        async def go():
            server = GraphStreamServer(port=0)
            await server.start()
            p = server.port
            status, body, _ = await call(p, "GET", "/healthz")
            assert (status, body) == (200, {"status": "ok"})

            status, body, _ = await call(p, "GET", "/nope")
            assert status == 404

            status, body, _ = await call(p, "GET", "/tenants/x/queries")
            assert status == 404  # GET is not a queries method

            # malformed register bodies -> 400
            status, body, _ = await call(
                p, "POST", "/tenants/a/queries", {"nope": 1}
            )
            assert status == 400 and "query" in body["error"]
            status, body, _ = await call(
                p, "POST", "/tenants/a/queries",
                {"query": "garbage((", "window": 24},
            )
            assert status == 400

            # unknown tenant / query -> 404
            status, body, _ = await call(
                p, "POST", "/tenants/ghost/ingest", {"edges": []}
            )
            assert status == 404
            await register(p, "a", "q")
            status, body, _ = await call(
                p, "DELETE", "/tenants/a/queries/ghost"
            )
            assert status == 404

            # metrics reflect the registered query
            status, body, _ = await call(p, "GET", "/metrics")
            assert status == 200
            assert body["tenants"]["a"]["query_count"] == 1
            await server.shutdown()

        asyncio.run(go())

    def test_register_ingest_unregister_cycle(self):
        async def go():
            server = GraphStreamServer(port=0)
            await server.start()
            p = server.port
            status, body, _ = await register(p, "a", "q")
            assert (status, body) == (
                201,
                {"query": "q", "tenant": "a"},
            )
            # duplicate name -> 429 (admission)
            status, _, _ = await register(p, "a", "q")
            assert status == 429
            # same name is fine on another tenant (isolation)
            status, _, _ = await register(p, "b", "q")
            assert status == 201

            edges = make_stream(3, 60, 10, ("likes", "posts"), max_gap=2)
            status, body, _ = await call(
                p, "POST", "/tenants/a/ingest", {"edges": edge_dicts(edges)}
            )
            assert status == 200
            assert body["ingested"] == 60
            assert body["watermark"] == server.manager.get(
                "a"
            ).engine.watermark

            # out-of-order batch -> 400, engine untouched
            status, body, _ = await call(
                p,
                "POST",
                "/tenants/a/ingest",
                {
                    "edges": [
                        {"src": 1, "trg": 2, "label": "likes", "t": 9},
                        {"src": 1, "trg": 2, "label": "likes", "t": 8},
                    ]
                },
            )
            assert status == 400 and "timestamp order" in body["error"]

            status, _, _ = await call(p, "DELETE", "/tenants/a/queries/q")
            assert status == 200
            status, _, _ = await call(p, "DELETE", "/tenants/a/queries/q")
            assert status == 404
            await server.shutdown()

        asyncio.run(go())


class TestAdmission:
    def test_query_and_tenant_limits(self):
        async def go():
            limits = ServerLimits(max_tenants=1, max_queries_per_tenant=1)
            server = GraphStreamServer(port=0, limits=limits)
            await server.start()
            p = server.port
            assert (await register(p, "a", "q0"))[0] == 201
            assert (await register(p, "a", "q1"))[0] == 429
            assert (await register(p, "b", "q0"))[0] == 429  # tenant limit
            await server.shutdown()

        asyncio.run(go())

    def test_ingest_rate_quota_with_retry_after(self):
        async def go():
            limits = ServerLimits(ingest_rate=10.0, ingest_burst=5)
            server = GraphStreamServer(port=0, limits=limits)
            await server.start()
            p = server.port
            await register(p, "a", "q")
            batch = {
                "edges": [
                    {"src": 0, "trg": 1, "label": "likes", "t": 0},
                ]
                * 5
            }
            status, _, _ = await call(p, "POST", "/tenants/a/ingest", batch)
            assert status == 200  # burst allows it
            status, body, headers = await call(
                p, "POST", "/tenants/a/ingest", batch
            )
            assert status == 429
            assert "quota" in body["error"]
            assert float(headers["retry-after"]) > 0
            await server.shutdown()

        asyncio.run(go())

    def test_subscriber_limit(self):
        async def go():
            limits = ServerLimits(max_subscribers_per_tenant=1)
            server = GraphStreamServer(port=0, limits=limits)
            await server.start()
            p = server.port
            await register(p, "a", "q")
            first = SseStream(p, "a", "q").start()
            await asyncio.wait_for(first.ready.wait(), 5)
            status, body, _ = await call(
                p, "GET", "/tenants/a/queries/q/subscribe"
            )
            assert status == 429 and "subscriber limit" in body["error"]
            await server.shutdown()
            await asyncio.wait_for(first.task, 5)
            assert first.end_reason == "server draining"

        asyncio.run(go())

    def test_bad_subscribe_params_rejected(self):
        async def go():
            server = GraphStreamServer(port=0)
            await server.start()
            p = server.port
            await register(p, "a", "q")
            status, body, _ = await call(
                p, "GET", "/tenants/a/queries/q/subscribe?policy=yolo"
            )
            assert status == 400 and "policy" in body["error"]
            status, body, _ = await call(
                p, "GET", "/tenants/a/queries/q/subscribe?queue=zap"
            )
            assert status == 400 and "queue" in body["error"]
            await server.shutdown()

        asyncio.run(go())


class TestStreams:
    def test_sse_and_ws_subscribers_match_reference(self):
        async def go():
            server = GraphStreamServer(port=0)
            await server.start()
            p = server.port
            await register(p, "a", "paper", text=PAPER_QUERY)
            await register(p, "a", "likes", text=LIKES)

            sse_paper = SseStream(p, "a", "paper").start()
            sse_likes = SseStream(p, "a", "likes").start()
            ws_events, ws_ready = [], asyncio.Event()
            ws_task = asyncio.ensure_future(
                ws_subscribe(p, "a", "likes", ws_events, ws_ready)
            )
            await asyncio.wait_for(
                asyncio.gather(
                    sse_paper.ready.wait(),
                    sse_likes.ready.wait(),
                    ws_ready.wait(),
                ),
                timeout=5,
            )

            edges = make_stream(
                11, 300, 20, ("likes", "follows", "posts"), max_gap=2
            )
            for start in (0, 100, 200):  # several batches, one stream
                status, _, _ = await call(
                    p,
                    "POST",
                    "/tenants/a/ingest",
                    {"edges": edge_dicts(edges[start : start + 100])},
                )
                assert status == 200

            await server.shutdown()
            ws_reason = await asyncio.wait_for(ws_task, 5)
            await asyncio.wait_for(
                asyncio.gather(sse_paper.task, sse_likes.task), 5
            )

            assert sse_paper.events == reference(PAPER_QUERY, edges)
            want_likes = reference(LIKES, edges)
            assert sse_likes.events == want_likes
            assert ws_events == want_likes  # both transports, same stream
            assert sse_paper.end_reason == "server draining"
            assert ws_reason == "server draining"

        asyncio.run(go())

    def test_unregister_ends_streams_with_backlog(self):
        async def go():
            server = GraphStreamServer(port=0)
            await server.start()
            p = server.port
            await register(p, "a", "likes")
            stream = SseStream(p, "a", "likes").start()
            await asyncio.wait_for(stream.ready.wait(), 5)
            edges = make_stream(5, 80, 10, ("likes", "posts"), max_gap=2)
            await call(
                p, "POST", "/tenants/a/ingest", {"edges": edge_dicts(edges)}
            )
            status, _, _ = await call(p, "DELETE", "/tenants/a/queries/likes")
            assert status == 200
            await asyncio.wait_for(stream.task, 5)
            assert stream.end_reason == "query unregistered"
            assert stream.events == reference(LIKES, edges)
            await server.shutdown()

        asyncio.run(go())

    def test_tenant_isolation(self):
        async def go():
            server = GraphStreamServer(port=0)
            await server.start()
            p = server.port
            await register(p, "a", "likes")
            await register(p, "b", "likes")
            stream_a = SseStream(p, "a", "likes").start()
            stream_b = SseStream(p, "b", "likes").start()
            await asyncio.wait_for(
                asyncio.gather(stream_a.ready.wait(), stream_b.ready.wait()),
                timeout=5,
            )
            edges_a = make_stream(1, 50, 10, ("likes",), max_gap=2)
            edges_b = make_stream(2, 50, 10, ("likes",), max_gap=2)
            await call(
                p, "POST", "/tenants/a/ingest", {"edges": edge_dicts(edges_a)}
            )
            await call(
                p, "POST", "/tenants/b/ingest", {"edges": edge_dicts(edges_b)}
            )
            await server.shutdown()
            await asyncio.wait_for(
                asyncio.gather(stream_a.task, stream_b.task), 5
            )
            assert stream_a.events == reference(LIKES, edges_a)
            assert stream_b.events == reference(LIKES, edges_b)
            assert stream_a.events != stream_b.events

        asyncio.run(go())

    def test_draining_healthz_and_register_rejection(self):
        async def go():
            server = GraphStreamServer(port=0)
            await server.start()
            p = server.port
            await register(p, "a", "q")
            await server.manager.drain_all()
            # new tenants are refused once draining
            status, _, _ = await register(p, "b", "q")
            assert status == 429
            status, body, _ = await call(p, "GET", "/healthz")
            assert body == {"status": "draining"}
            await server.shutdown()

        asyncio.run(go())


class TestPerQueryOptions:
    def test_register_with_params_and_options(self):
        async def go():
            server = GraphStreamServer(port=0)
            await server.start()
            p = server.port
            status, body, _ = await call(
                p,
                "POST",
                "/tenants/a/queries",
                {
                    "query": "Answer(x,y) <- $edge+(x,y) as K.",
                    "window": WINDOW,
                    "params": {"edge": "knows"},
                    "options": {"path_impl": "spath"},
                    "name": "closure",
                },
            )
            assert status == 201, body
            stream = SseStream(p, "a", "closure").start()
            await asyncio.wait_for(stream.ready.wait(), 5)
            await call(
                p,
                "POST",
                "/tenants/a/ingest",
                {
                    "edges": [
                        {"src": "u", "trg": "v", "label": "knows", "t": 0},
                        {"src": "v", "trg": "w", "label": "knows", "t": 1},
                    ]
                },
            )
            await server.shutdown()
            await asyncio.wait_for(stream.task, 5)
            pairs = {
                (e["src"], e["trg"]) for e in map(json.loads, stream.events)
            }
            assert ("u", "w") in pairs  # the closure actually ran

        asyncio.run(go())


class TestScale:
    def test_many_subscribers_identical_streams(self):
        async def go():
            server = GraphStreamServer(port=0)
            await server.start()
            p = server.port
            await register(p, "a", "likes", policy="block")
            streams = [SseStream(p, "a", "likes").start() for _ in range(40)]
            await asyncio.wait_for(
                asyncio.gather(*(s.ready.wait() for s in streams)), timeout=10
            )
            edges = make_stream(9, 200, 15, ("likes", "posts"), max_gap=2)
            await call(
                p, "POST", "/tenants/a/ingest", {"edges": edge_dicts(edges)}
            )
            await server.shutdown()
            await asyncio.wait_for(
                asyncio.gather(*(s.task for s in streams)), 10
            )
            want = reference(LIKES, edges)
            assert want  # the workload actually produced results
            for stream in streams:
                assert stream.events == want

        asyncio.run(go())
