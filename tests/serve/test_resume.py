"""Resumable subscriptions and serve-layer checkpoint/restore.

A disconnected subscriber reconnects with its last-seen sequence number
(``?last_seq=`` on either transport, or the SSE ``Last-Event-ID``
header) and receives every retained event past it before going live —
no gaps, no duplicates.  A seq that already left the per-query replay
ring is a hard 409, never a silent hole.  The same seq counters survive
a drain-time server checkpoint: a restored server continues numbering
exactly where the old process stopped, so clients resume across a
process boundary the same way they resume across a dropped connection.
"""

import asyncio
import json
from types import SimpleNamespace

import pytest

from repro.checkpoint import DirectoryCheckpointStore
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.ql.query import Query
from repro.serve.app import GraphStreamServer
from repro.serve.protocol import dumps, encode_event
from repro.serve.subscriptions import SubscriberQueue
from repro.serve.tenants import (
    QueryChannel,
    ResumeGapError,
    ServerLimits,
    TenantManager,
)
from tests.conftest import make_stream
from tests.serve.test_server import (
    LIKES,
    SLIDE,
    WINDOW,
    SseStream,
    call,
    edge_dicts,
    register,
)


def run(coro):
    return asyncio.run(coro)


def fake_event(n):
    """A minimal result event for channel-level tests."""
    interval = SimpleNamespace(ts=n, exp=n + WINDOW)
    sgt = SimpleNamespace(
        src=n, trg=n + 1, label="likes", interval=interval, payload=None
    )
    return SimpleNamespace(sign=1, sgt=sgt)


def split_reference(text, prefix, suffix):
    """Encoded event stream of an uninterrupted engine that ingests the
    same two batches at the same cut as the server under test."""
    engine = StreamingGraphEngine(EngineConfig())
    got, seq = [], [0]

    def cb(event):
        seq[0] += 1
        got.append(dumps(encode_event(seq[0], event)))

    engine.register(
        Query.datalog(text, window=WINDOW, slide=SLIDE), on_result=cb
    )
    engine.push_many(prefix)
    n_prefix = len(got)
    engine.push_many(suffix)
    engine.close()
    return got, n_prefix


class TestChannelReplay:
    def test_attach_with_last_seq_replays_tail(self):
        async def go():
            channel = QueryChannel("q", replay=16)
            for n in range(6):
                channel.deliver(fake_event(n))
            sub = SubscriberQueue(asyncio.get_running_loop())
            channel.attach(sub, last_seq=2)
            items = await sub.drain()
            assert [seq for seq, _ in items] == [3, 4, 5, 6]
            for seq, message in items:
                assert json.loads(message)["seq"] == seq

        run(go())

    def test_attach_at_head_replays_nothing(self):
        async def go():
            channel = QueryChannel("q", replay=16)
            for n in range(4):
                channel.deliver(fake_event(n))
            sub = SubscriberQueue(asyncio.get_running_loop())
            channel.attach(sub, last_seq=4)
            assert sub.depth == 0
            channel.deliver(fake_event(9))
            assert [seq for seq, _ in await sub.drain()] == [5]

        run(go())

    def test_evicted_seq_raises_gap(self):
        async def go():
            channel = QueryChannel("q", replay=3)
            for n in range(10):
                channel.deliver(fake_event(n))
            sub = SubscriberQueue(asyncio.get_running_loop())
            with pytest.raises(ResumeGapError, match="left the replay"):
                channel.attach(sub, last_seq=2)
            # The ring still serves resumes inside its horizon.
            channel.attach(sub, last_seq=7)
            assert [seq for seq, _ in await sub.drain()] == [8, 9, 10]

        run(go())

    def test_ahead_of_stream_raises_gap(self):
        async def go():
            channel = QueryChannel("q", replay=16)
            channel.deliver(fake_event(0))
            sub = SubscriberQueue(asyncio.get_running_loop())
            with pytest.raises(ResumeGapError, match="stream is at seq 1"):
                channel.attach(sub, last_seq=5)

        run(go())

    def test_replay_disabled_only_resumes_at_head(self):
        async def go():
            channel = QueryChannel("q", replay=0)
            for n in range(3):
                channel.deliver(fake_event(n))
            sub = SubscriberQueue(asyncio.get_running_loop())
            channel.attach(sub, last_seq=3)  # at head: fine
            with pytest.raises(ResumeGapError):
                channel.attach(sub, last_seq=2)

        run(go())

    def test_snapshot_restore_preserves_seq_and_ring(self):
        async def go():
            channel = QueryChannel("q", replay=8)
            for n in range(5):
                channel.deliver(fake_event(n))
            state = channel.snapshot_state()

            revived = QueryChannel("q", replay=8)
            revived.restore_state(state)
            assert revived.seq == 5
            sub = SubscriberQueue(asyncio.get_running_loop())
            revived.attach(sub, last_seq=1)
            items = await sub.drain()
            assert [seq for seq, _ in items] == [2, 3, 4, 5]
            # Numbering continues, not restarts.
            revived.deliver(fake_event(99))
            assert [seq for seq, _ in await sub.drain()] == [6]

        run(go())


class TestServerResume:
    def test_sse_resume_param_and_header(self):
        async def go():
            server = GraphStreamServer(port=0)
            await server.start()
            p = server.port
            await register(p, "a", "q")
            edges = make_stream(11, 60, 10, ("likes",), max_gap=2)
            full = SseStream(p, "a", "q").start()
            await full.ready.wait()
            status, body, _ = await call(
                p, "POST", "/tenants/a/ingest", {"edges": edge_dicts(edges)}
            )
            assert status == 200
            await asyncio.sleep(0.1)
            assert len(full.events) >= 4
            k = len(full.events) // 2

            for params in (f"?last_seq={k}", ""):
                sse = SseStream(p, "a", "q", params=params)
                if not params:  # header form
                    sse.headers = {"Last-Event-ID": str(k)}
                sse.start()
                await sse.ready.wait()
                await asyncio.sleep(0.1)
                assert sse.events == full.events[k:], params or "header"

            await server.shutdown()

        run(go())

    def test_evicted_resume_is_409(self):
        async def go():
            limits = ServerLimits(replay_buffer=2)
            server = GraphStreamServer(port=0, limits=limits)
            await server.start()
            p = server.port
            await register(p, "a", "q")
            edges = make_stream(12, 60, 10, ("likes",), max_gap=2)
            await call(
                p, "POST", "/tenants/a/ingest", {"edges": edge_dicts(edges)}
            )
            status, body, _ = await call(
                p, "GET", "/tenants/a/queries/q/subscribe?last_seq=1"
            )
            assert status == 409
            assert "replay" in body["error"]
            await server.shutdown()

        run(go())

    def test_bad_resume_position_is_400(self):
        async def go():
            server = GraphStreamServer(port=0)
            await server.start()
            p = server.port
            await register(p, "a", "q")
            for bad in ("nope", "-3"):
                status, body, _ = await call(
                    p, "GET", f"/tenants/a/queries/q/subscribe?last_seq={bad}"
                )
                assert status == 400, bad
            await server.shutdown()

        run(go())


class TestServerCheckpointRestore:
    def test_restore_continues_seq_numbering(self, tmp_path):
        async def go():
            store = DirectoryCheckpointStore(str(tmp_path))
            edges = make_stream(13, 80, 10, ("likes",), max_gap=2)
            cut = len(edges) // 2
            prefix, suffix = edges[:cut], edges[cut:]
            reference, n_prefix = split_reference(LIKES, prefix, suffix)

            server = GraphStreamServer(port=0)
            await server.start()
            p = server.port
            await register(p, "a", "q")
            await call(
                p, "POST", "/tenants/a/ingest", {"edges": edge_dicts(prefix)}
            )
            checkpoint_id = await server.shutdown(store)
            assert checkpoint_id is not None
            assert store.open(checkpoint_id).meta["kind"] == "server"

            manager = TenantManager.restore(store)
            revived = GraphStreamServer(port=0, manager=manager)
            await revived.start()
            p2 = revived.port

            sse = SseStream(p2, "a", "q", params=f"?last_seq={n_prefix}")
            sse.start()
            await sse.ready.wait()
            await call(
                p2, "POST", "/tenants/a/ingest", {"edges": edge_dicts(suffix)}
            )
            await asyncio.sleep(0.15)
            assert sse.events == reference[n_prefix:]
            seqs = [json.loads(m)["seq"] for m in sse.events]
            assert seqs == list(range(n_prefix + 1, n_prefix + 1 + len(seqs)))
            await revived.shutdown()

        run(go())

    def test_restore_replays_ring_across_processes(self, tmp_path):
        """A client a few events behind the checkpoint still resumes:
        the replay ring itself is checkpointed."""

        async def go():
            store = DirectoryCheckpointStore(str(tmp_path))
            edges = make_stream(14, 80, 10, ("likes",), max_gap=2)
            cut = len(edges) // 2
            prefix, suffix = edges[:cut], edges[cut:]
            reference, n_prefix = split_reference(LIKES, prefix, suffix)
            assert n_prefix >= 3, "need prefix events to rewind into"

            server = GraphStreamServer(port=0)
            await server.start()
            await register(server.port, "a", "q")
            await call(
                server.port,
                "POST",
                "/tenants/a/ingest",
                {"edges": edge_dicts(prefix)},
            )
            await server.shutdown(store)

            revived = GraphStreamServer(
                port=0, manager=TenantManager.restore(store)
            )
            await revived.start()
            behind = n_prefix - 3
            sse = SseStream(
                revived.port, "a", "q", params=f"?last_seq={behind}"
            )
            sse.start()
            await sse.ready.wait()
            await call(
                revived.port,
                "POST",
                "/tenants/a/ingest",
                {"edges": edge_dicts(suffix)},
            )
            await asyncio.sleep(0.15)
            assert sse.events == reference[behind:]
            await revived.shutdown()

        run(go())

    def test_restored_tenant_auto_names_do_not_collide(self, tmp_path):
        async def go():
            store = DirectoryCheckpointStore(str(tmp_path))
            server = GraphStreamServer(port=0)
            await server.start()
            p = server.port
            # Two auto-named queries: q0, q1.
            status, body, _ = await call(
                p, "POST", "/tenants/a/queries",
                {"query": LIKES, "window": WINDOW, "slide": SLIDE},
            )
            assert (status, body["query"]) == (201, "q0")
            status, body, _ = await call(
                p, "POST", "/tenants/a/queries",
                {"query": LIKES, "window": WINDOW, "slide": SLIDE},
            )
            assert (status, body["query"]) == (201, "q1")
            await server.shutdown(store)

            revived = GraphStreamServer(
                port=0, manager=TenantManager.restore(store)
            )
            await revived.start()
            status, body, _ = await call(
                revived.port, "POST", "/tenants/a/queries",
                {"query": LIKES, "window": WINDOW, "slide": SLIDE},
            )
            assert (status, body["query"]) == (201, "q2")
            status, body, _ = await call(revived.port, "GET", "/metrics")
            tenant = body["tenants"]["a"]
            assert tenant["query_count"] == 3
            assert "state" in tenant and "state_bytes" in tenant
            await revived.shutdown()

        run(go())
