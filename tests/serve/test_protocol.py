"""Wire-protocol validation: request parsing and event encoding."""

import json

import pytest

from repro.core.intervals import Interval
from repro.core.tuples import SGE, SGT, EdgePayload, PathPayload
from repro.dataflow.graph import DELETE, INSERT, Event
from repro.ql.query import Query
from repro.serve.protocol import (
    ProtocolError,
    dumps,
    encode_event,
    parse_ingest,
    parse_register,
)


class TestParseRegister:
    def test_minimal_datalog(self):
        spec = parse_register(
            {"query": "Answer(x,y) <- likes(x,y).", "window": 24}
        )
        assert spec.text == "Answer(x,y) <- likes(x,y)."
        assert spec.window == 24
        assert spec.dialect == "auto"
        query = spec.build_query()
        assert isinstance(query, Query)

    def test_explicit_dialect_and_slide(self):
        spec = parse_register(
            {
                "query": "Answer(x,y) <- likes(x,y).",
                "dialect": "datalog",
                "window": 24,
                "slide": 4,
                "name": "mine",
            }
        )
        assert spec.slide == 4
        assert spec.name == "mine"
        spec.build_query()

    def test_params_route_through_prepared(self):
        spec = parse_register(
            {
                "query": "Answer(x,y) <- $edge(x,y).",
                "window": 24,
                "params": {"edge": "likes"},
            }
        )
        query = spec.build_query()
        assert isinstance(query, Query)

    def test_datalog_without_window_rejected(self):
        spec = parse_register(
            {"query": "Answer(x,y) <- likes(x,y).", "dialect": "datalog"}
        )
        with pytest.raises(ProtocolError, match="window"):
            spec.build_query()

    @pytest.mark.parametrize(
        "body, match",
        [
            ("nope", "JSON object"),
            ({}, "'query'"),
            ({"query": 7}, "'query'"),
            ({"query": "x", "dialect": "sql"}, "dialect"),
            ({"query": "x", "window": "24"}, "'window'"),
            ({"query": "x", "window": True}, "'window'"),
            ({"query": "x", "slide": 1.5}, "'slide'"),
            ({"query": "x", "params": {"a": 1}}, "'params'"),
            ({"query": "x", "options": [1]}, "'options'"),
            ({"query": "x", "options": {"zap": 1}}, "zap"),
            ({"query": "x", "name": 3}, "'name'"),
        ],
    )
    def test_rejects_malformed_bodies(self, body, match):
        with pytest.raises(ProtocolError, match=match):
            parse_register(body)

    def test_known_compile_options_accepted(self):
        spec = parse_register(
            {
                "query": "Answer(x,y) <- knows+(x,y) as K.",
                "window": 24,
                "options": {"path_impl": "spath"},
            }
        )
        spec.build_query()


class TestParseIngest:
    def test_roundtrip(self):
        edges = parse_ingest(
            {
                "edges": [
                    {"src": "a", "trg": "b", "label": "likes", "t": 0},
                    {"src": 1, "trg": 2, "label": "posts", "t": 3},
                ]
            }
        )
        assert edges == [SGE("a", "b", "likes", 0), SGE(1, 2, "posts", 3)]

    def test_empty_batch_is_fine(self):
        assert parse_ingest({"edges": []}) == []

    @pytest.mark.parametrize(
        "body, match",
        [
            ([], "JSON object"),
            ({}, "'edges'"),
            ({"edges": [[]]}, "edge 0"),
            ({"edges": [{"src": 1, "trg": 2, "t": 0}]}, "label"),
            (
                {"edges": [{"src": 1, "trg": 2, "label": 3, "t": 0}]},
                "string",
            ),
            (
                {"edges": [{"src": 1, "trg": 2, "label": "x", "t": "0"}]},
                "integer",
            ),
        ],
    )
    def test_rejects_malformed_edges(self, body, match):
        with pytest.raises(ProtocolError, match=match):
            parse_ingest(body)

    def test_rejects_out_of_order_batch(self):
        with pytest.raises(ProtocolError, match="timestamp order"):
            parse_ingest(
                {
                    "edges": [
                        {"src": 1, "trg": 2, "label": "a", "t": 5},
                        {"src": 1, "trg": 2, "label": "a", "t": 4},
                    ]
                }
            )


class TestEncodeEvent:
    def test_insert_event(self):
        event = Event(SGT("u", "v", "Answer", Interval(3, 24)), INSERT)
        obj = encode_event(7, event)
        assert obj == {
            "seq": 7,
            "sign": INSERT,
            "src": "u",
            "trg": "v",
            "label": "Answer",
            "from": 3,
            "to": 24,
        }

    def test_delete_event_keeps_sign(self):
        event = Event(SGT("u", "v", "Answer", Interval(3, 24)), DELETE)
        assert encode_event(1, event)["sign"] == DELETE

    def test_path_payload_included(self):
        payload = PathPayload((EdgePayload("a", "b", "K"),))
        sgt = SGT("a", "b", "K", Interval(0, 9), payload)
        obj = encode_event(1, Event(sgt, INSERT))
        assert obj["path"] == list(payload.vertices)

    def test_dumps_is_canonical(self):
        text = dumps({"b": 1, "a": [2, 3]})
        assert text == '{"a":[2,3],"b":1}'
        assert json.loads(text) == {"a": [2, 3], "b": 1}
