"""SubscriberQueue: the thread → asyncio bridge and its backpressure."""

import asyncio
import threading

import pytest

from repro.serve.subscriptions import SubscriberQueue


def run(coro):
    return asyncio.run(coro)


class TestBasics:
    def test_rejects_unknown_policy(self):
        async def go():
            with pytest.raises(ValueError, match="policy"):
                SubscriberQueue(asyncio.get_running_loop(), policy="yolo")

        run(go())

    def test_rejects_nonpositive_maxsize(self):
        async def go():
            with pytest.raises(ValueError, match="maxsize"):
                SubscriberQueue(asyncio.get_running_loop(), maxsize=0)

        run(go())

    def test_offer_then_drain(self):
        async def go():
            sub = SubscriberQueue(asyncio.get_running_loop())
            assert sub.offer("a")
            assert sub.offer("b")
            assert sub.depth == 2
            assert await sub.drain() == ["a", "b"]
            assert sub.depth == 0
            assert sub.delivered == 2

        run(go())

    def test_offer_from_worker_thread_wakes_consumer(self):
        async def go():
            sub = SubscriberQueue(asyncio.get_running_loop())

            def produce():
                for i in range(100):
                    assert sub.offer(i)
                sub.close("done")

            thread = threading.Thread(target=produce)
            thread.start()
            got = []
            while True:
                items = await asyncio.wait_for(sub.drain(), timeout=5)
                if items is None:
                    break
                got.extend(items)
            thread.join()
            assert got == list(range(100))
            assert sub.close_reason == "done"

        run(go())


class TestClose:
    def test_close_is_idempotent_and_keeps_first_reason(self):
        async def go():
            sub = SubscriberQueue(asyncio.get_running_loop())
            sub.close("first")
            sub.close("second")
            assert sub.closed
            assert sub.close_reason == "first"

        run(go())

    def test_offer_after_close_returns_false(self):
        async def go():
            sub = SubscriberQueue(asyncio.get_running_loop())
            sub.close()
            assert not sub.offer("x")
            assert sub.delivered == 0

        run(go())

    def test_backlog_flushes_before_none(self):
        """A drain-time close loses nothing that was already delivered."""

        async def go():
            sub = SubscriberQueue(asyncio.get_running_loop())
            sub.offer("a")
            sub.offer("b")
            sub.close("bye")
            assert await sub.drain() == ["a", "b"]
            assert await sub.drain() is None
            # and stays None (liveness: the event must remain set)
            assert await asyncio.wait_for(sub.drain(), timeout=1) is None

        run(go())

    def test_drain_blocked_then_closed(self):
        async def go():
            sub = SubscriberQueue(asyncio.get_running_loop())
            task = asyncio.ensure_future(sub.drain())
            await asyncio.sleep(0.01)
            sub.close("gone")
            assert await asyncio.wait_for(task, timeout=5) is None

        run(go())


class TestPolicies:
    def test_drop_counts_and_recovers(self):
        async def go():
            sub = SubscriberQueue(
                asyncio.get_running_loop(), maxsize=2, policy="drop"
            )
            assert sub.offer("a")
            assert sub.offer("b")
            assert sub.offer("c")  # dropped, not an error
            assert sub.dropped == 1
            assert await sub.drain() == ["a", "b"]
            assert sub.offer("d")  # delivery resumes after the drain
            assert await sub.drain() == ["d"]

        run(go())

    def test_disconnect_closes_with_slow_consumer(self):
        async def go():
            sub = SubscriberQueue(
                asyncio.get_running_loop(), maxsize=1, policy="disconnect"
            )
            assert sub.offer("a")
            assert not sub.offer("b")
            assert sub.closed
            assert sub.close_reason == "slow consumer"
            # the delivered backlog is still readable
            assert await sub.drain() == ["a"]
            assert await sub.drain() is None

        run(go())

    def test_block_waits_for_consumer(self):
        """A full 'block' queue stalls the producer until a drain."""

        async def go():
            loop = asyncio.get_running_loop()
            sub = SubscriberQueue(loop, maxsize=4, policy="block")
            produced = []

            def produce():
                for i in range(64):
                    if not sub.offer(i):
                        return
                    produced.append(i)
                sub.close("done")

            thread = threading.Thread(target=produce)
            thread.start()
            got = []
            while True:
                items = await asyncio.wait_for(sub.drain(), timeout=5)
                if items is None:
                    break
                got.extend(items)
                await asyncio.sleep(0)  # let the producer refill
            thread.join()
            assert got == list(range(64))  # nothing dropped, order kept

        run(go())

    def test_block_producer_released_by_close(self):
        """Closing a full queue unblocks a stuck producer (drain path)."""

        async def go():
            loop = asyncio.get_running_loop()
            sub = SubscriberQueue(loop, maxsize=1, policy="block")
            sub.offer("a")
            outcome = []

            def produce():
                outcome.append(sub.offer("b"))

            thread = threading.Thread(target=produce)
            thread.start()
            await asyncio.sleep(0.05)
            assert thread.is_alive()  # blocked on the full queue
            sub.close("drain")
            thread.join(timeout=5)
            assert not thread.is_alive()
            assert outcome == [False]

        run(go())
