"""Unit tests for PATTERN join ordering."""

from repro.algebra.join_order import (
    estimate_cardinality,
    label_frequencies,
    order_conjuncts,
    reorder_joins,
)
from repro.algebra.operators import Pattern, PatternInput, Path, Relabel, Union, WScan
from repro.algebra.reference import evaluate_plan_at
from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from tests.conftest import make_stream, streams_by_label

W = SlidingWindow(20)


def conjunct(label, src, trg):
    return PatternInput(WScan(label, W), src, trg)


class TestFrequencies:
    def test_label_frequencies(self):
        sample = [SGE(1, 2, "a", 0), SGE(1, 2, "a", 1), SGE(1, 2, "b", 2)]
        assert label_frequencies(sample) == {"a": 2, "b": 1}

    def test_estimate_uses_frequencies(self):
        freq = {"rare": 3, "common": 1000}
        assert estimate_cardinality(WScan("rare", W), freq) < estimate_cardinality(
            WScan("common", W), freq
        )

    def test_estimate_path_superlinear(self):
        freq = {"a": 100}
        base = estimate_cardinality(WScan("a", W), freq)
        closure = estimate_cardinality(
            Path.over({"a": WScan("a", W)}, "a+", "P"), freq
        )
        assert closure > base

    def test_estimate_union_adds(self):
        freq = {"a": 10, "b": 20}
        union = Union(Relabel(WScan("a", W), "o"), Relabel(WScan("b", W), "o"), "o")
        assert estimate_cardinality(union, freq) == 30.0


class TestOrdering:
    def test_cheapest_first(self):
        freq = {"rare": 2, "mid": 50, "common": 900}
        inputs = (
            conjunct("common", "x", "y"),
            conjunct("rare", "y", "z"),
            conjunct("mid", "z", "w"),
        )
        ordered = order_conjuncts(inputs, freq)
        assert ordered[0].plan.label == "rare"

    def test_connectivity_beats_cost(self):
        # "common" shares a variable with "rare"; "isolated" does not —
        # even though isolated is cheaper, picking it second would force
        # a Cartesian product.
        freq = {"rare": 2, "common": 900, "isolated": 5}
        inputs = (
            conjunct("rare", "x", "y"),
            conjunct("isolated", "p", "q"),
            conjunct("common", "y", "z"),
        )
        ordered = order_conjuncts(inputs, freq)
        assert [c.plan.label for c in ordered] == ["rare", "common", "isolated"]

    def test_single_conjunct_untouched(self):
        inputs = (conjunct("a", "x", "y"),)
        assert order_conjuncts(inputs, {}) == inputs

    def test_disconnected_pattern_falls_back(self):
        inputs = (conjunct("a", "x", "y"), conjunct("b", "p", "q"))
        ordered = order_conjuncts(inputs, {"a": 5, "b": 1})
        assert len(ordered) == 2  # no crash; order by cost
        assert ordered[0].plan.label == "b"


class TestReorderJoins:
    def _triangle(self):
        return Pattern(
            (
                conjunct("common", "u1", "m1"),
                conjunct("mid", "u2", "m1"),
                conjunct("rare", "u1", "u2"),
            ),
            "u1",
            "u2",
            "Answer",
        )

    def test_reorders_by_sample(self):
        sample = (
            [SGE(1, 2, "common", 0)] * 50
            + [SGE(1, 2, "mid", 0)] * 10
            + [SGE(1, 2, "rare", 0)] * 2
        )
        plan = reorder_joins(self._triangle(), sample)
        assert plan.inputs[0].plan.label == "rare"

    def test_equivalence_preserved(self):
        sample = make_stream(3, 100, 6, ("common", "mid", "rare"), max_gap=1)
        original = self._triangle()
        reordered = reorder_joins(original, sample)
        streams = streams_by_label(sample)
        for t in range(0, 110, 10):
            assert evaluate_plan_at(original, streams, t) == evaluate_plan_at(
                reordered, streams, t
            ), t

    def test_recurses_into_nested_plans(self):
        nested = Relabel(
            Path.over({"d": self._triangle()}, "d+", "P"), "Answer"
        )
        sample = [SGE(1, 2, "rare", 0)]
        reordered = reorder_joins(nested, sample)
        inner = reordered.child.input_map["d"]
        assert isinstance(inner, Pattern)
        assert inner.inputs[0].plan.label == "rare"

    def test_runs_on_engine(self):
        from repro.engine.session import StreamingGraphEngine

        sample = make_stream(9, 80, 6, ("common", "mid", "rare"), max_gap=1)
        original = self._triangle()
        reordered = reorder_joins(original, sample)
        left_engine = StreamingGraphEngine()
        right_engine = StreamingGraphEngine()
        left = left_engine.register(original, name="q")
        right = right_engine.register(reordered, name="q")
        for edge in sample:
            left_engine.push(edge)
            right_engine.push(edge)
        # Perform the window movements up to the last probed instant:
        # valid_at answers exactly at or behind the watermark and raises
        # HorizonError for unperformed movements (same contract as dd).
        left_engine.advance_to(99)
        right_engine.advance_to(99)
        for t in range(0, 100, 9):
            assert left.valid_at(t) == right.valid_at(t), t
