"""Unit tests for the SGQParser translation (Algorithm 1, Theorem 1)."""

from repro.algebra.operators import Path, Pattern, Relabel, Union, WScan
from repro.algebra.translate import sgq_to_sga
from repro.core.windows import SlidingWindow
from repro.query.sgq import SGQ
from repro.regex.ast import Plus, Symbol

W = SlidingWindow(24)


def plan_of(text, window=W, label_windows=None):
    return sgq_to_sga(SGQ.from_text(text, window, label_windows or {}))


class TestLeaves:
    def test_edb_becomes_wscan(self):
        plan = plan_of("Answer(x, y) <- knows(x, y).")
        assert isinstance(plan, Relabel)
        assert plan.child == WScan("knows", W)

    def test_per_label_windows(self):
        plan = plan_of(
            "Answer(x, z) <- a(x, y), b(y, z).",
            label_windows={"b": SlidingWindow(100, 10)},
        )
        assert isinstance(plan, Pattern)
        scans = {c.plan.label: c.plan for c in plan.inputs}
        assert scans["a"].window == W
        assert scans["b"].window == SlidingWindow(100, 10)


class TestClosure:
    def test_closure_becomes_path(self):
        plan = plan_of("Answer(x, y) <- knows+(x, y) as K.")
        assert isinstance(plan, Relabel)
        path = plan.child
        assert isinstance(path, Path)
        assert path.regex == Plus(Symbol("knows"))
        assert path.out_label == "K"

    def test_closure_of_idb(self):
        plan = plan_of(
            """
            RL(x, y) <- a(x, y).
            Answer(x, y) <- RL+(x, y) as RLP.
            """
        )
        assert isinstance(plan, Relabel)
        path = plan.child
        assert isinstance(path, Path)
        inner = path.input_map["RL"]
        assert isinstance(inner, Relabel)
        assert inner.label == "RL"


class TestRules:
    def test_multi_atom_rule_becomes_pattern(self):
        plan = plan_of("Answer(x, z) <- a(x, y), b(y, z).")
        assert isinstance(plan, Pattern)
        assert [c.src_var for c in plan.inputs] == ["x", "y"]
        assert plan.src_var == "x"
        assert plan.trg_var == "z"

    def test_flipped_single_atom_is_pattern_not_relabel(self):
        plan = plan_of("Answer(y, x) <- a(x, y).")
        assert isinstance(plan, Pattern)

    def test_multiple_rules_become_union(self):
        plan = plan_of(
            """
            Answer(x, y) <- a(x, y).
            Answer(x, y) <- b(x, y).
            """
        )
        assert isinstance(plan, Union)
        assert plan.out_label == "Answer"

    def test_three_rules_left_deep_union(self):
        plan = plan_of(
            """
            Answer(x, y) <- a(x, y).
            Answer(x, y) <- b(x, y).
            Answer(x, y) <- c(x, y).
            """
        )
        assert isinstance(plan, Union)
        assert isinstance(plan.left, Union)

    def test_shared_subplan_is_identical_object_value(self):
        # 'posts' appears in two rules; both must scan the same WScan node.
        plan = plan_of(
            """
            RL(u1, u2)   <- likes(u1, m1), follows+(u1, u2) as FP, posts(u2, m1).
            Notify(u, m) <- RL+(u, v) as RLP, posts(v, m).
            Answer(u, m) <- Notify(u, m).
            """
        )
        scans = [
            node
            for node in _walk(plan)
            if isinstance(node, WScan) and node.label == "posts"
        ]
        assert len(scans) == 2
        assert scans[0] == scans[1]


class TestCanonicalPaperPlan:
    def test_example8_structure(self):
        # Figure 8 (left): PATTERN over (PATH over PATTERN(..)) and posts.
        plan = plan_of(
            """
            RL(u1, u2)   <- likes(u1, m1), follows+(u1, u2) as FP, posts(u2, m1).
            Notify(u, m) <- RL+(u, v) as RLP, posts(v, m).
            Answer(u, m) <- Notify(u, m).
            """
        )
        assert isinstance(plan, Relabel)  # Answer <- Notify rename
        notify = plan.child
        assert isinstance(notify, Pattern)
        rlp = notify.inputs[0].plan
        assert isinstance(rlp, Path)
        assert rlp.regex == Plus(Symbol("RL"))
        rl = rlp.input_map["RL"]
        assert isinstance(rl, Pattern)
        assert len(rl.inputs) == 3
        fp = rl.inputs[1].plan
        assert isinstance(fp, Path)
        assert fp.regex == Plus(Symbol("follows"))


def _walk(plan):
    yield plan
    for child in plan.children():
        yield from _walk(child)
