"""Unit tests for the plan pretty-printer."""

from repro.algebra import explain, sgq_to_sga
from repro.algebra.operators import (
    Filter,
    Path,
    Pattern,
    PatternInput,
    Predicate,
    Relabel,
    Union,
    WScan,
)
from repro.core.windows import SlidingWindow
from repro.query.sgq import SGQ

W = SlidingWindow(24)


class TestExplain:
    def test_wscan(self):
        assert explain(WScan("likes", W)) == "WSCAN likes W(T=24, beta=1)"

    def test_wscan_with_prefilter(self):
        plan = WScan("likes", W, Predicate((("src", "==", "a"),)))
        assert "WHERE src == 'a'" in explain(plan)

    def test_filter_indents_child(self):
        plan = Filter(WScan("l", W), Predicate((("trg", "==", 1),)))
        lines = explain(plan).splitlines()
        assert lines[0].startswith("FILTER")
        assert lines[1].startswith("  WSCAN")

    def test_relabel(self):
        text = explain(Relabel(WScan("l", W), "out"))
        assert "RELABEL -> out" in text

    def test_union(self):
        plan = Union(WScan("a", W), WScan("b", W), "o")
        text = explain(plan)
        assert "UNION -> o" in text
        assert text.count("WSCAN") == 2

    def test_pattern_shows_variables(self):
        plan = Pattern(
            (
                PatternInput(WScan("a", W), "x", "y"),
                PatternInput(WScan("b", W), "y", "z"),
            ),
            "x",
            "z",
            "o",
        )
        text = explain(plan)
        assert "PATTERN (x,z) -> o" in text
        assert "(x,y)" in text and "(y,z)" in text

    def test_path_shows_regex(self):
        plan = Path.over({"a": WScan("a", W)}, "a+", "P")
        assert "PATH (a)+ -> P" in explain(plan)

    def test_full_paper_plan_renders(self):
        from tests.conftest import PAPER_QUERY

        plan = sgq_to_sga(SGQ.from_text(PAPER_QUERY, W))
        text = explain(plan)
        # Figure 8 structure: nested PATTERN / PATH / WSCAN operators.
        assert text.count("PATH") == 2
        assert text.count("PATTERN") >= 2
        assert text.count("WSCAN") == 4  # likes, follows, posts (x2 uses)
