"""Unit tests for logical SGA operator trees."""

import pytest

from repro.algebra.operators import (
    Filter,
    Path,
    Pattern,
    PatternInput,
    Predicate,
    Relabel,
    Union,
    WScan,
    walk,
)
from repro.core.windows import SlidingWindow
from repro.errors import PlanError
from repro.regex.ast import Plus, Star, Symbol

W = SlidingWindow(24)


class TestPredicate:
    def test_equality_condition(self):
        p = Predicate((("src", "==", "alice"),))
        assert p.evaluate("alice", "bob", "knows")
        assert not p.evaluate("carol", "bob", "knows")

    def test_inequality_condition(self):
        p = Predicate((("trg", "!=", "bob"),))
        assert not p.evaluate("alice", "bob", "knows")
        assert p.evaluate("alice", "dave", "knows")

    def test_conjunction(self):
        p = Predicate((("src", "==", "a"), ("label", "==", "l")))
        assert p.evaluate("a", "b", "l")
        assert not p.evaluate("a", "b", "m")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(PlanError):
            Predicate((("weight", "==", 3),))

    def test_unknown_operator_rejected(self):
        with pytest.raises(PlanError):
            Predicate((("src", "<", 3),))


class TestPlanNodes:
    def test_wscan_out_label(self):
        assert WScan("likes", W).out_label == "likes"

    def test_filter_inherits_label(self):
        plan = Filter(WScan("likes", W), Predicate((("src", "==", "a"),)))
        assert plan.out_label == "likes"

    def test_relabel(self):
        plan = Relabel(WScan("likes", W), "L")
        assert plan.out_label == "L"
        assert plan.children() == (WScan("likes", W),)

    def test_union_same_labels(self):
        plan = Union(WScan("a", W), WScan("a", W))
        assert plan.out_label == "a"

    def test_union_mixed_labels_needs_explicit(self):
        plan = Union(WScan("a", W), WScan("b", W))
        with pytest.raises(PlanError):
            plan.out_label
        assert Union(WScan("a", W), WScan("b", W), "c").out_label == "c"

    def test_pattern_variables(self):
        plan = Pattern(
            (
                PatternInput(WScan("a", W), "x", "y"),
                PatternInput(WScan("b", W), "y", "z"),
            ),
            "x",
            "z",
            "out",
        )
        assert plan.variables == {"x", "y", "z"}
        assert plan.out_label == "out"

    def test_pattern_unbound_output_var_rejected(self):
        with pytest.raises(PlanError):
            Pattern(
                (PatternInput(WScan("a", W), "x", "y"),), "x", "missing", "out"
            )

    def test_pattern_empty_rejected(self):
        with pytest.raises(PlanError):
            Pattern((), "x", "y", "out")

    def test_path_over(self):
        plan = Path.over({"a": WScan("a", W)}, Plus(Symbol("a")), "P")
        assert plan.out_label == "P"
        assert plan.input_map == {"a": WScan("a", W)}

    def test_path_missing_input_rejected(self):
        with pytest.raises(PlanError, match="without inputs"):
            Path.over({}, Plus(Symbol("a")), "P")

    def test_path_extra_input_rejected(self):
        with pytest.raises(PlanError, match="not used"):
            Path.over(
                {"a": WScan("a", W), "b": WScan("b", W)}, Plus(Symbol("a")), "P"
            )

    def test_path_nullable_regex_rejected(self):
        with pytest.raises(PlanError, match="empty word"):
            Path.over({"a": WScan("a", W)}, Star(Symbol("a")), "P")

    def test_plans_are_hashable_value_objects(self):
        p1 = Path.over({"a": WScan("a", W)}, Plus(Symbol("a")), "P")
        p2 = Path.over({"a": WScan("a", W)}, Plus(Symbol("a")), "P")
        assert p1 == p2
        assert hash(p1) == hash(p2)

    def test_walk_preorder(self):
        plan = Union(WScan("a", W), Relabel(WScan("b", W), "a"))
        kinds = [type(node).__name__ for node in walk(plan)]
        assert kinds == ["Union", "WScan", "Relabel", "WScan"]

    def test_input_labels(self):
        plan = Union(WScan("a", W), Relabel(WScan("b", W), "a"))
        assert plan.input_labels() == {"a", "b"}
