"""Unit tests for the Section 5.4 transformation rules."""

from repro.algebra.operators import (
    Filter,
    Path,
    Pattern,
    PatternInput,
    Predicate,
    Relabel,
    Union,
    WScan,
)
from repro.algebra.reference import evaluate_plan_at
from repro.algebra.rewrite import (
    concat_to_pattern,
    enumerate_plans,
    fuse_pattern_into_path,
    group_concat_prefix,
    group_concat_suffix,
    plan_size,
    push_filter_into_wscan,
    rewrite_once,
    split_alternation,
)
from repro.core.windows import SlidingWindow
from repro.regex.ast import Alternation, Concat, Plus, Symbol
from tests.conftest import make_stream, streams_by_label

W = SlidingWindow(20)


def q4_canonical():
    """Canonical Q4 plan: P[d+](PATTERN(a, b, c)) (Section 7.4)."""
    pattern = Pattern(
        (
            PatternInput(WScan("a", W), "x", "y"),
            PatternInput(WScan("b", W), "y", "z"),
            PatternInput(WScan("c", W), "z", "t"),
        ),
        "x",
        "t",
        "d",
    )
    return Path.over({"d": pattern}, Plus(Symbol("d")), "Ans")


class TestFilterPushdown:
    def test_push_into_wscan(self):
        predicate = Predicate((("src", "==", 1),))
        plan = Filter(WScan("l", W), predicate)
        rewritten = push_filter_into_wscan(plan)
        assert rewritten == WScan("l", W, predicate)

    def test_merges_existing_prefilter(self):
        p1 = Predicate((("src", "==", 1),))
        p2 = Predicate((("trg", "==", 2),))
        plan = Filter(WScan("l", W, p1), p2)
        rewritten = push_filter_into_wscan(plan)
        assert rewritten.prefilter.conditions == p1.conditions + p2.conditions

    def test_not_applicable(self):
        assert push_filter_into_wscan(WScan("l", W)) is None


class TestAlternationSplit:
    def test_split(self):
        plan = Path.over(
            {"a": WScan("a", W), "b": WScan("b", W)},
            Alternation(Symbol("a"), Symbol("b")),
            "P",
        )
        rewritten = split_alternation(plan)
        assert isinstance(rewritten, Union)
        assert rewritten.out_label == "P"
        # Single-symbol branches collapse to relabeled children.
        assert isinstance(rewritten.left, Relabel)
        assert isinstance(rewritten.right, Relabel)

    def test_split_nested(self):
        plan = Path.over(
            {"a": WScan("a", W), "b": WScan("b", W)},
            Alternation(Plus(Symbol("a")), Symbol("b")),
            "P",
        )
        rewritten = split_alternation(plan)
        assert isinstance(rewritten.left, Path)
        assert rewritten.left.regex == Plus(Symbol("a"))

    def test_not_applicable(self):
        plan = Path.over({"a": WScan("a", W)}, Plus(Symbol("a")), "P")
        assert split_alternation(plan) is None


class TestConcatToPattern:
    def test_concat_becomes_join(self):
        plan = Path.over(
            {"a": WScan("a", W), "b": WScan("b", W)},
            Concat(Symbol("a"), Symbol("b")),
            "P",
        )
        rewritten = concat_to_pattern(plan)
        assert isinstance(rewritten, Pattern)
        assert rewritten.out_label == "P"
        assert len(rewritten.inputs) == 2

    def test_not_applicable_for_plus(self):
        plan = Path.over({"a": WScan("a", W)}, Plus(Symbol("a")), "P")
        assert concat_to_pattern(plan) is None


class TestFusePatternIntoPath:
    def test_q4_p1(self):
        rewritten = fuse_pattern_into_path(q4_canonical())
        assert isinstance(rewritten, Path)
        assert str(rewritten.regex) == "(((a b) c))+"
        assert set(rewritten.input_map) == {"a", "b", "c"}

    def test_group_suffix_p2(self):
        p1 = fuse_pattern_into_path(q4_canonical())
        p2 = group_concat_suffix(p1, 2, "bc")
        assert str(p2.regex) == "((a bc))+"
        assert isinstance(p2.input_map["bc"], Pattern)

    def test_group_prefix_p3(self):
        p1 = fuse_pattern_into_path(q4_canonical())
        p3 = group_concat_prefix(p1, 2, "ab")
        assert str(p3.regex) == "((ab c))+"
        assert isinstance(p3.input_map["ab"], Pattern)

    def test_not_applicable_for_non_chain(self):
        pattern = Pattern(
            (
                PatternInput(WScan("a", W), "x", "y"),
                PatternInput(WScan("b", W), "x", "y"),  # parallel, not chain
            ),
            "x",
            "y",
            "d",
        )
        plan = Path.over({"d": pattern}, Plus(Symbol("d")), "Ans")
        assert fuse_pattern_into_path(plan) is None


class TestEquivalence:
    """Rewritten plans compute the same snapshots as the originals."""

    def _check(self, original, rewritten, labels, seed):
        edges = make_stream(seed, 60, 8, labels, max_gap=2)
        streams = streams_by_label(edges)
        for t in range(0, edges[-1].t + 25, 7):
            left = evaluate_plan_at(original, streams, t)
            right = evaluate_plan_at(rewritten, streams, t)
            assert left == right, f"divergence at t={t}"

    def test_q4_p1_equivalent(self):
        plan = q4_canonical()
        self._check(plan, fuse_pattern_into_path(plan), ("a", "b", "c"), 1)

    def test_q4_p2_equivalent(self):
        p1 = fuse_pattern_into_path(q4_canonical())
        self._check(p1, group_concat_suffix(p1, 2, "bc"), ("a", "b", "c"), 2)

    def test_q4_p3_equivalent(self):
        p1 = fuse_pattern_into_path(q4_canonical())
        self._check(p1, group_concat_prefix(p1, 2, "ab"), ("a", "b", "c"), 3)

    def test_alternation_split_equivalent(self):
        plan = Path.over(
            {"a": WScan("a", W), "b": WScan("b", W)},
            Alternation(Plus(Symbol("a")), Symbol("b")),
            "P",
        )
        self._check(plan, split_alternation(plan), ("a", "b"), 4)

    def test_concat_split_equivalent(self):
        plan = Path.over(
            {"a": WScan("a", W), "b": WScan("b", W)},
            Concat(Symbol("a"), Plus(Symbol("b"))),
            "P",
        )
        self._check(plan, concat_to_pattern(plan), ("a", "b"), 5)


class TestEnumeration:
    def test_enumerate_includes_original(self):
        plan = q4_canonical()
        plans = enumerate_plans(plan, limit=16)
        assert plans[0] == plan
        assert len(plans) > 1

    def test_enumerate_reaches_p1(self):
        plan = q4_canonical()
        plans = enumerate_plans(plan, limit=16)
        p1 = fuse_pattern_into_path(plan)
        assert p1 in plans

    def test_rewrite_once_applies_in_subtrees(self):
        inner = Filter(WScan("a", W), Predicate((("src", "==", 1),)))
        plan = Relabel(inner, "Answer")
        results = rewrite_once(plan)
        assert Relabel(WScan("a", W, Predicate((("src", "==", 1),))), "Answer") in results

    def test_limit_respected(self):
        plans = enumerate_plans(q4_canonical(), limit=3)
        assert len(plans) <= 3

    def test_plan_size(self):
        assert plan_size(WScan("a", W)) == 1
        assert plan_size(q4_canonical()) == 5
