"""Unit tests for the sampling-based plan optimizer."""

from repro.algebra.optimizer import (
    OptimizerReport,
    choose_plan,
    measured_cost,
    static_cost,
)
from repro.algebra.operators import Path, Pattern, PatternInput, WScan
from repro.algebra.reference import evaluate_plan_at
from repro.core.windows import SlidingWindow
from repro.regex.ast import Plus, Symbol
from tests.conftest import make_stream, streams_by_label

W = SlidingWindow(20)


def q4_canonical():
    pattern = Pattern(
        (
            PatternInput(WScan("a", W), "x", "y"),
            PatternInput(WScan("b", W), "y", "z"),
            PatternInput(WScan("c", W), "z", "t"),
        ),
        "x",
        "t",
        "d",
    )
    return Path.over({"d": pattern}, Plus(Symbol("d")), "Ans")


class TestStaticCost:
    def test_positive(self):
        assert static_cost(q4_canonical()) > 0

    def test_recursion_costs_more(self):
        recursive = Path.over({"a": WScan("a", W)}, "a+", "P")
        flat = Path.over(
            {"a": WScan("a", W), "b": WScan("b", W)}, "a b", "P"
        )
        assert static_cost(recursive) > static_cost(flat) - 2.0

    def test_more_conjuncts_cost_more(self):
        two = Pattern(
            (
                PatternInput(WScan("a", W), "x", "y"),
                PatternInput(WScan("b", W), "y", "z"),
            ),
            "x",
            "z",
            "o",
        )
        three = Pattern(
            two.inputs + (PatternInput(WScan("c", W), "z", "w"),),
            "x",
            "w",
            "o",
        )
        assert static_cost(three) > static_cost(two)


class TestChoosePlan:
    def test_static_mode_returns_report(self):
        report = choose_plan(q4_canonical(), limit=8)
        assert isinstance(report, OptimizerReport)
        assert report.candidates >= 2
        assert report.best in [plan for plan, _ in report.scores]

    def test_scores_sorted(self):
        report = choose_plan(q4_canonical(), limit=8)
        values = [score for _, score in report.scores]
        assert values == sorted(values)

    def test_chosen_plan_is_equivalent(self):
        plan = q4_canonical()
        report = choose_plan(plan, limit=8)
        edges = make_stream(17, 50, 6, ("a", "b", "c"), max_gap=2)
        streams = streams_by_label(edges)
        for t in range(0, 60, 6):
            assert evaluate_plan_at(plan, streams, t) == evaluate_plan_at(
                report.best, streams, t
            )

    def test_calibrated_mode(self):
        plan = q4_canonical()
        sample = make_stream(29, 120, 8, ("a", "b", "c"), max_gap=1)
        report = choose_plan(plan, sample=sample, limit=4)
        assert all(score >= 0 for _, score in report.scores)
        # Measured cost of the winner should be the smallest.
        assert report.scores[0][1] <= report.scores[-1][1]

    def test_measured_cost_runs(self):
        sample = make_stream(31, 40, 6, ("a", "b", "c"), max_gap=1)
        assert measured_cost(q4_canonical(), sample) > 0
