"""Unit tests for the one-time reference evaluator."""

from repro.algebra.operators import (
    Filter,
    Path,
    Pattern,
    PatternInput,
    Predicate,
    Relabel,
    Union,
    WScan,
)
from repro.algebra.reference import (
    evaluate_plan_at,
    evaluate_rq,
    regex_reachability,
    transitive_closure,
)
from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from repro.query.parser import parse_rq
from repro.regex.ast import Plus, Symbol
from repro.regex.parser import parse_regex

W = SlidingWindow(10)


class TestWScanSnapshots:
    def test_window_filters_by_time(self):
        plan = WScan("l", W)
        streams = {"l": [SGE("a", "b", "l", 0), SGE("b", "c", "l", 8)]}
        assert evaluate_plan_at(plan, streams, 5) == {("a", "b")}
        assert evaluate_plan_at(plan, streams, 9) == {("a", "b"), ("b", "c")}
        assert evaluate_plan_at(plan, streams, 12) == {("b", "c")}
        assert evaluate_plan_at(plan, streams, 50) == set()

    def test_prefilter_applies(self):
        plan = WScan("l", W, Predicate((("src", "==", "a"),)))
        streams = {"l": [SGE("a", "b", "l", 0), SGE("b", "c", "l", 0)]}
        assert evaluate_plan_at(plan, streams, 0) == {("a", "b")}


class TestOperators:
    def test_filter(self):
        plan = Filter(WScan("l", W), Predicate((("trg", "==", "b"),)))
        streams = {"l": [SGE("a", "b", "l", 0), SGE("a", "c", "l", 0)]}
        assert evaluate_plan_at(plan, streams, 0) == {("a", "b")}

    def test_union_and_relabel(self):
        plan = Union(Relabel(WScan("a", W), "x"), Relabel(WScan("b", W), "x"), "x")
        streams = {"a": [SGE(1, 2, "a", 0)], "b": [SGE(3, 4, "b", 0)]}
        assert evaluate_plan_at(plan, streams, 0) == {(1, 2), (3, 4)}

    def test_pattern_triangle(self):
        # RL triangle of Example 6: likes(u1, m), posts(u2, m), f(u1, u2).
        plan = Pattern(
            (
                PatternInput(WScan("likes", W), "u1", "m"),
                PatternInput(WScan("posts", W), "u2", "m"),
                PatternInput(WScan("f", W), "u1", "u2"),
            ),
            "u1",
            "u2",
            "RL",
        )
        streams = {
            "likes": [SGE("x", "m1", "likes", 0), SGE("x", "m2", "likes", 0)],
            "posts": [SGE("y", "m1", "posts", 0)],
            "f": [SGE("x", "y", "f", 0), SGE("x", "z", "f", 0)],
        }
        assert evaluate_plan_at(plan, streams, 0) == {("x", "y")}

    def test_pattern_repeated_variable_self_loop(self):
        plan = Pattern(
            (PatternInput(WScan("l", W), "x", "x"),), "x", "x", "loops"
        )
        streams = {"l": [SGE("a", "a", "l", 0), SGE("a", "b", "l", 0)]}
        assert evaluate_plan_at(plan, streams, 0) == {("a", "a")}

    def test_path_closure(self):
        plan = Path.over({"l": WScan("l", W)}, Plus(Symbol("l")), "P")
        streams = {
            "l": [SGE(1, 2, "l", 0), SGE(2, 3, "l", 0), SGE(3, 4, "l", 20)]
        }
        assert evaluate_plan_at(plan, streams, 0) == {(1, 2), (2, 3), (1, 3)}
        assert evaluate_plan_at(plan, streams, 20) == {(3, 4)}


class TestRegexReachability:
    def test_concat(self):
        facts = {"a": {(1, 2)}, "b": {(2, 3), (9, 9)}}
        assert regex_reachability(facts, parse_regex("a b")) == {(1, 3)}

    def test_alternation(self):
        facts = {"a": {(1, 2)}, "b": {(3, 4)}}
        assert regex_reachability(facts, "a|b") == {(1, 2), (3, 4)}

    def test_cycle_closure(self):
        facts = {"l": {(1, 2), (2, 3), (3, 1)}}
        result = regex_reachability(facts, "l+")
        assert result == {(i, j) for i in (1, 2, 3) for j in (1, 2, 3)}

    def test_word_constraint(self):
        facts = {"a": {(1, 2)}, "b": {(2, 3)}, "c": {(3, 4)}}
        assert regex_reachability(facts, "(a b c)+") == {(1, 4)}
        assert regex_reachability(facts, "a c") == set()


class TestEvaluateRQ:
    def test_transitive_closure(self):
        assert transitive_closure({(1, 2), (2, 3)}) == {(1, 2), (2, 3), (1, 3)}
        assert transitive_closure(set()) == set()

    def test_closure_with_cycle(self):
        closure = transitive_closure({(1, 2), (2, 1)})
        assert closure == {(1, 2), (2, 1), (1, 1), (2, 2)}

    def test_program_evaluation(self):
        program = parse_rq(
            """
            A(x, z) <- l(x, y), l(y, z).
            Answer(x, y) <- A+(x, y) as AP.
            """
        )
        edb = {"l": {(1, 2), (2, 3), (3, 4), (4, 5)}}
        # A = pairs two steps apart; AP = even-length reachability.
        assert evaluate_rq(program, edb) == {(1, 3), (2, 4), (3, 5), (1, 5)}

    def test_union_rules(self):
        program = parse_rq(
            """
            Answer(x, y) <- a(x, y).
            Answer(x, y) <- b(x, y).
            """
        )
        assert evaluate_rq(program, {"a": {(1, 2)}, "b": {(3, 4)}}) == {
            (1, 2),
            (3, 4),
        }
