"""Unit tests for RQ well-formedness (Definition 13)."""

import pytest

from repro.errors import QueryValidationError
from repro.query.datalog import ANSWER, Atom, ClosureAtom, RQProgram, Rule
from repro.query.parser import parse_rq
from repro.query.validation import dependency_graph, topological_order, validate_rq


class TestDependencyGraph:
    def test_simple_chain(self):
        program = parse_rq(
            """
            A(x, y) <- l(x, y).
            Answer(x, y) <- A(x, y).
            """
        )
        deps = dependency_graph(program)
        assert deps[ANSWER] == {"A"}
        assert deps["A"] == {"l"}

    def test_closure_introduces_two_edges(self):
        program = parse_rq("Answer(x, y) <- knows+(x, y) as K.")
        deps = dependency_graph(program)
        assert deps[ANSWER] == {"K"}
        assert deps["K"] == {"knows"}

    def test_topological_order_respects_dependencies(self):
        program = parse_rq(
            """
            RL(u1, u2)   <- likes(u1, m1), follows+(u1, u2) as FP, posts(u2, m1).
            Notify(u, m) <- RL+(u, v) as RLP, posts(v, m).
            Answer(u, m) <- Notify(u, m).
            """
        )
        order = topological_order(program)
        assert order.index("follows") < order.index("FP")
        assert order.index("FP") < order.index("RL")
        assert order.index("RL") < order.index("RLP")
        assert order.index("RLP") < order.index("Notify")
        assert order.index("Notify") < order.index(ANSWER)


class TestValidation:
    def test_valid_program_passes(self):
        validate_rq(parse_rq("Answer(x, y) <- knows(x, y)."))

    def test_empty_program_rejected(self):
        with pytest.raises(QueryValidationError):
            validate_rq(RQProgram(()))

    def test_missing_answer_rejected(self):
        program = parse_rq("A(x, y) <- l(x, y).", validate=False)
        with pytest.raises(QueryValidationError, match="Answer"):
            validate_rq(program)

    def test_recursive_program_rejected(self):
        program = parse_rq(
            """
            A(x, y) <- B(x, y).
            B(x, y) <- A(x, y).
            Answer(x, y) <- A(x, y).
            """,
            validate=False,
        )
        with pytest.raises(QueryValidationError, match="recursive"):
            validate_rq(program)

    def test_self_recursion_rejected(self):
        program = parse_rq(
            """
            A(x, z) <- A(x, y), l(y, z).
            Answer(x, y) <- A(x, y).
            """,
            validate=False,
        )
        with pytest.raises(QueryValidationError, match="recursive"):
            validate_rq(program)

    def test_unsafe_head_variable_rejected(self):
        program = RQProgram(
            (Rule(ANSWER, "x", "z", (Atom("l", "x", "y"),)),)
        )
        with pytest.raises(QueryValidationError, match="unsafe"):
            validate_rq(program)

    def test_answer_in_body_rejected(self):
        program = RQProgram(
            (
                Rule("A", "x", "y", (Atom(ANSWER, "x", "y"),)),
                Rule(ANSWER, "x", "y", (Atom("l", "x", "y"),)),
            )
        )
        with pytest.raises(QueryValidationError, match="Answer"):
            validate_rq(program)

    def test_closure_name_equal_to_label_rejected(self):
        program = RQProgram(
            (Rule(ANSWER, "x", "y", (ClosureAtom("l", "x", "y", "l"),)),)
        )
        with pytest.raises(QueryValidationError):
            validate_rq(program)

    def test_closure_name_referenced_as_plain_atom_allowed(self):
        # The closure's exported name is an IDB label; other atoms may
        # refer to it like any derived relation.
        program = RQProgram(
            (
                Rule(
                    ANSWER,
                    "x",
                    "y",
                    (ClosureAtom("l", "x", "y", "m"), Atom("m", "y", "y")),
                ),
            )
        )
        validate_rq(program)

    def test_same_closure_name_for_two_labels_rejected(self):
        program = RQProgram(
            (
                Rule(
                    ANSWER,
                    "x",
                    "y",
                    (
                        ClosureAtom("a", "x", "y", "C"),
                        ClosureAtom("b", "x", "y", "C"),
                    ),
                ),
            )
        )
        with pytest.raises(QueryValidationError, match="closes both"):
            validate_rq(program)

    def test_label_defined_by_rule_and_closure_rejected(self):
        program = RQProgram(
            (
                Rule("C", "x", "y", (Atom("l", "x", "y"),)),
                Rule(ANSWER, "x", "y", (ClosureAtom("l", "x", "y", "C"),)),
            )
        )
        with pytest.raises(QueryValidationError):
            validate_rq(program)

    def test_closure_of_idb_allowed(self):
        # Closure over a derived predicate (the essence of RQ's power).
        program = parse_rq(
            """
            RL(x, y) <- a(x, y).
            Answer(x, y) <- RL+(x, y) as RLP.
            """
        )
        validate_rq(program)
