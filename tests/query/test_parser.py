"""Unit tests for the textual Datalog parser."""

import pytest

from repro.errors import ParseError, QueryValidationError
from repro.query.datalog import Atom, ClosureAtom
from repro.query.parser import parse_rq


class TestBasicParsing:
    def test_single_rule(self):
        program = parse_rq("Answer(x, y) <- knows(x, y).")
        assert len(program.rules) == 1
        rule = program.rules[0]
        assert rule.head_label == "Answer"
        assert rule.body == (Atom("knows", "x", "y"),)

    def test_prolog_style_arrow(self):
        program = parse_rq("Answer(x, y) :- knows(x, y).")
        assert program.rules[0].head_label == "Answer"

    def test_trailing_period_optional(self):
        program = parse_rq("Answer(x, y) <- knows(x, y)")
        assert len(program.rules) == 1

    def test_multiple_rules(self):
        program = parse_rq(
            """
            A(x, y) <- l(x, y).
            Answer(x, y) <- A(x, y).
            """
        )
        assert len(program.rules) == 2

    def test_multiple_body_atoms(self):
        program = parse_rq("Answer(x, z) <- a(x, y), b(y, z).")
        assert len(program.rules[0].body) == 2

    def test_comments_ignored(self):
        program = parse_rq(
            """
            # leading comment
            Answer(x, y) <- knows(x, y).  % trailing comment
            """
        )
        assert len(program.rules) == 1


class TestClosureAtoms:
    def test_plus_with_name(self):
        program = parse_rq("Answer(x, y) <- knows+(x, y) as K.")
        assert program.rules[0].body == (ClosureAtom("knows", "x", "y", "K"),)

    def test_star_synonym(self):
        program = parse_rq("Answer(x, y) <- knows*(x, y) as K.")
        assert program.rules[0].body == (ClosureAtom("knows", "x", "y", "K"),)

    def test_default_name(self):
        program = parse_rq("Answer(x, y) <- knows+(x, y).")
        assert program.rules[0].body == (
            ClosureAtom("knows", "x", "y", "knows_tc"),
        )

    def test_paper_example2(self):
        program = parse_rq(
            """
            RL(u1, u2)   <- likes(u1, m1), follows+(u1, u2) as FP, posts(u2, m1).
            Notify(u, m) <- RL+(u, v) as RLP, posts(v, m).
            Answer(u, m) <- Notify(u, m).
            """
        )
        assert program.edb_labels == {"likes", "follows", "posts"}
        assert program.closure_labels == {"FP", "RLP"}


class TestParseErrors:
    def test_empty(self):
        with pytest.raises(ParseError):
            parse_rq("")

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_rq("Answer(x, y) knows(x, y).")

    def test_missing_paren(self):
        with pytest.raises(ParseError):
            parse_rq("Answer(x, y <- knows(x, y).")

    def test_unary_atom_rejected(self):
        with pytest.raises(ParseError):
            parse_rq("Answer(x) <- knows(x, y).")

    def test_garbage_character(self):
        with pytest.raises(ParseError):
            parse_rq("Answer(x, y) <- knows(x; y).")

    def test_validation_runs_by_default(self):
        # No Answer predicate.
        with pytest.raises(QueryValidationError):
            parse_rq("A(x, y) <- knows(x, y).")

    def test_validation_can_be_skipped(self):
        program = parse_rq("A(x, y) <- knows(x, y).", validate=False)
        assert len(program.rules) == 1
