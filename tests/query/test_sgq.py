"""Unit tests for SGQ (Definition 15)."""

import pytest

from repro.core.windows import SlidingWindow
from repro.errors import QueryValidationError
from repro.query.sgq import SGQ


class TestSGQ:
    def test_from_text(self):
        query = SGQ.from_text("Answer(x, y) <- knows(x, y).", SlidingWindow(24))
        assert query.input_labels == {"knows"}
        assert query.window == SlidingWindow(24)

    def test_default_window_for_all_labels(self):
        query = SGQ.from_text(
            "Answer(x, z) <- a(x, y), b(y, z).", SlidingWindow(24, 2)
        )
        assert query.window_for("a") == SlidingWindow(24, 2)
        assert query.window_for("b") == SlidingWindow(24, 2)

    def test_label_window_override(self):
        # Example 4: a 24h social window joined with a 30d purchase window.
        query = SGQ.from_text(
            "Answer(u, p) <- follows(u, c), purchase(c, p).",
            SlidingWindow(24),
            label_windows={"purchase": SlidingWindow(720, 24)},
        )
        assert query.window_for("follows") == SlidingWindow(24)
        assert query.window_for("purchase") == SlidingWindow(720, 24)

    def test_override_for_unknown_label_rejected(self):
        with pytest.raises(QueryValidationError, match="non-input"):
            SGQ.from_text(
                "Answer(x, y) <- knows(x, y).",
                SlidingWindow(24),
                label_windows={"likes": SlidingWindow(10)},
            )

    def test_invalid_program_rejected_on_construction(self):
        with pytest.raises(QueryValidationError):
            SGQ.from_text("A(x, y) <- knows(x, y).", SlidingWindow(24))

    def test_str(self):
        query = SGQ.from_text("Answer(x, y) <- knows(x, y).", SlidingWindow(24))
        assert "SGQ" in str(query)
        assert "Answer" in str(query)
