"""Unit tests for the RQ Datalog model (Definition 13)."""

from repro.query.datalog import ANSWER, Atom, ClosureAtom, RQProgram, Rule


def paper_program() -> RQProgram:
    return RQProgram(
        (
            Rule(
                "RL",
                "u1",
                "u2",
                (
                    Atom("likes", "u1", "m1"),
                    ClosureAtom("follows", "u1", "u2", "FP"),
                    Atom("posts", "u2", "m1"),
                ),
            ),
            Rule(
                "Notify",
                "u",
                "m",
                (ClosureAtom("RL", "u", "v", "RLP"), Atom("posts", "v", "m")),
            ),
            Rule(ANSWER, "u", "m", (Atom("Notify", "u", "m"),)),
        )
    )


class TestAtoms:
    def test_atom_variables(self):
        assert Atom("l", "x", "y").variables == ("x", "y")

    def test_closure_atom_str(self):
        atom = ClosureAtom("follows", "u1", "u2", "FP")
        assert str(atom) == "follows+(u1, u2) as FP"

    def test_rule_variables(self):
        rule = paper_program().rules[0]
        assert rule.head_variables == ("u1", "u2")
        assert rule.body_variables == {"u1", "u2", "m1"}


class TestProgramIntrospection:
    def test_head_labels(self):
        assert paper_program().head_labels == {"RL", "Notify", ANSWER}

    def test_closure_labels(self):
        assert paper_program().closure_labels == {"FP", "RLP"}

    def test_idb_labels(self):
        assert paper_program().idb_labels == {"RL", "Notify", ANSWER, "FP", "RLP"}

    def test_edb_labels(self):
        assert paper_program().edb_labels == {"likes", "follows", "posts"}

    def test_rules_for(self):
        assert len(paper_program().rules_for("RL")) == 1
        assert len(paper_program().rules_for("nothing")) == 0

    def test_closure_atoms_deduplicated(self):
        program = RQProgram(
            (
                Rule("A", "x", "y", (ClosureAtom("l", "x", "y", "L"),)),
                Rule(ANSWER, "x", "y", (ClosureAtom("l", "x", "y", "L"),)),
            )
        )
        assert len(program.closure_atoms()) == 1

    def test_str_round_trippable_shape(self):
        text = str(paper_program())
        assert "RL(u1, u2) <- likes(u1, m1)" in text
        assert "follows+(u1, u2) as FP" in text
