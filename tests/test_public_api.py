"""Smoke tests for the top-level public API surface."""

import pytest

import repro


class TestTopLevelNamespace:
    def test_eager_exports(self):
        assert repro.SGE("a", "b", "l", 0).label == "l"
        assert repro.Interval(0, 5).duration == 5
        assert repro.SlidingWindow(10).slide == 1
        assert repro.SGT("a", "b", "l", repro.Interval(0, 5)).key() == (
            "a",
            "b",
            "l",
        )

    def test_lazy_processor(self):
        processor_cls = repro.StreamingGraphQueryProcessor
        from repro.engine import StreamingGraphQueryProcessor

        assert processor_cls is StreamingGraphQueryProcessor

    def test_lazy_parsers(self):
        program = repro.parse_rq("Answer(x, y) <- knows(x, y).")
        assert program.edb_labels == {"knows"}
        sgq = repro.parse_gcore(
            "CONSTRUCT (x)-[:out]->(y) MATCH (x)-[:a]->(y) ON s WINDOW (10)"
        )
        assert sgq.input_labels == {"a"}

    def test_lazy_sgq(self):
        assert repro.SGQ is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_resolvable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        from repro import errors

        for name in (
            "InvalidIntervalError",
            "StreamOrderError",
            "QueryValidationError",
            "ParseError",
            "PlanError",
            "ExecutionError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_parse_error_position(self):
        from repro.errors import ParseError

        err = ParseError("bad token", position=17)
        assert "17" in str(err)
        assert err.position == 17

    def test_parse_error_without_position(self):
        from repro.errors import ParseError

        assert ParseError("oops").position is None
