"""Unit tests for the label-regex parser."""

import pytest

from repro.errors import ParseError
from repro.regex.ast import Alternation, Concat, Optional_, Plus, Star, Symbol
from repro.regex.parser import parse_regex


class TestAtoms:
    def test_single_symbol(self):
        assert parse_regex("knows") == Symbol("knows")

    def test_symbol_with_underscore_and_digits(self):
        assert parse_regex("reply_of2") == Symbol("reply_of2")

    def test_parenthesized(self):
        assert parse_regex("(a)") == Symbol("a")


class TestOperators:
    def test_concat_by_juxtaposition(self):
        assert parse_regex("a b") == Concat(Symbol("a"), Symbol("b"))

    def test_concat_with_dot(self):
        assert parse_regex("a.b") == Concat(Symbol("a"), Symbol("b"))

    def test_concat_with_slash(self):
        assert parse_regex("a/b") == Concat(Symbol("a"), Symbol("b"))

    def test_alternation(self):
        assert parse_regex("a|b") == Alternation(Symbol("a"), Symbol("b"))

    def test_star(self):
        assert parse_regex("a*") == Star(Symbol("a"))

    def test_plus(self):
        assert parse_regex("a+") == Plus(Symbol("a"))

    def test_optional(self):
        assert parse_regex("a?") == Optional_(Symbol("a"))

    def test_stacked_postfix(self):
        assert parse_regex("a+*") == Star(Plus(Symbol("a")))


class TestPrecedence:
    def test_postfix_binds_tighter_than_concat(self):
        assert parse_regex("a b*") == Concat(Symbol("a"), Star(Symbol("b")))

    def test_concat_binds_tighter_than_alternation(self):
        assert parse_regex("a b|c") == Alternation(
            Concat(Symbol("a"), Symbol("b")), Symbol("c")
        )

    def test_parens_override(self):
        assert parse_regex("a (b|c)") == Concat(
            Symbol("a"), Alternation(Symbol("b"), Symbol("c"))
        )

    def test_q4_pattern(self):
        assert parse_regex("(a b c)+") == Plus(
            Concat(Concat(Symbol("a"), Symbol("b")), Symbol("c"))
        )

    def test_q3_pattern(self):
        node = parse_regex("a b* c*")
        assert node == Concat(
            Concat(Symbol("a"), Star(Symbol("b"))), Star(Symbol("c"))
        )


class TestAlphabetAndNullability:
    def test_alphabet(self):
        assert parse_regex("a (b|c)* d+").alphabet() == {"a", "b", "c", "d"}

    def test_nullable_star(self):
        assert parse_regex("a*").nullable()

    def test_non_nullable_plus(self):
        assert not parse_regex("a+").nullable()

    def test_nullable_concat_requires_both(self):
        assert not parse_regex("a b*").nullable()
        assert parse_regex("a? b*").nullable()

    def test_nullable_alternation_requires_one(self):
        assert parse_regex("a|b*").nullable()
        assert not parse_regex("a|b").nullable()


class TestErrors:
    def test_empty(self):
        with pytest.raises(ParseError):
            parse_regex("")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_regex("(a b")

    def test_leading_operator(self):
        with pytest.raises(ParseError):
            parse_regex("* a")

    def test_trailing_bar(self):
        with pytest.raises(ParseError):
            parse_regex("a |")

    def test_invalid_character(self):
        with pytest.raises(ParseError):
            parse_regex("a & b")
