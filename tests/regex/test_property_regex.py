"""Property tests: our regex pipeline vs Python's re module.

Random label regexes are rendered both into our AST and into an
equivalent character regex for ``re``; membership must agree on random
words, for the raw NFA, the determinized DFA, and the minimized DFA.
"""

from __future__ import annotations

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regex.ast import (
    Alternation,
    Concat,
    Optional_,
    Plus,
    RegexNode,
    Star,
    Symbol,
)
from repro.regex.dfa import dfa_from_regex, subset_construction
from repro.regex.nfa import thompson

ALPHABET = ("a", "b", "c")


def regex_nodes(max_depth: int = 3) -> st.SearchStrategy[RegexNode]:
    base = st.sampled_from([Symbol(l) for l in ALPHABET])

    def extend(children):
        return st.one_of(
            st.builds(Concat, children, children),
            st.builds(Alternation, children, children),
            st.builds(Star, children),
            st.builds(Plus, children),
            st.builds(Optional_, children),
        )

    return st.recursive(base, extend, max_leaves=8)


def to_python_regex(node: RegexNode) -> str:
    if isinstance(node, Symbol):
        return node.label  # single-character labels
    if isinstance(node, Concat):
        return f"(?:{to_python_regex(node.left)}{to_python_regex(node.right)})"
    if isinstance(node, Alternation):
        return f"(?:{to_python_regex(node.left)}|{to_python_regex(node.right)})"
    if isinstance(node, Star):
        return f"(?:{to_python_regex(node.inner)})*"
    if isinstance(node, Plus):
        return f"(?:{to_python_regex(node.inner)})+"
    if isinstance(node, Optional_):
        return f"(?:{to_python_regex(node.inner)})?"
    raise TypeError(node)


words = st.lists(st.sampled_from(ALPHABET), max_size=8)


@given(regex_nodes(), words)
@settings(max_examples=150)
def test_nfa_agrees_with_re(node, word):
    pattern = re.compile(to_python_regex(node) + r"\Z")
    expected = pattern.match("".join(word)) is not None
    assert thompson(node).accepts(word) == expected


@given(regex_nodes(), words)
@settings(max_examples=150)
def test_dfa_agrees_with_re(node, word):
    pattern = re.compile(to_python_regex(node) + r"\Z")
    expected = pattern.match("".join(word)) is not None
    assert dfa_from_regex(node).accepts(word) == expected


@given(regex_nodes(), words)
@settings(max_examples=100)
def test_minimization_preserves_language(node, word):
    raw = subset_construction(thompson(node))
    small = dfa_from_regex(node)
    assert raw.accepts(word) == small.accepts(word)


@given(regex_nodes())
@settings(max_examples=100)
def test_nullable_agrees_with_empty_word(node):
    assert node.nullable() == thompson(node).accepts([])
