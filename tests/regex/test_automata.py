"""Unit tests for NFA construction, determinization, and minimization."""

import pytest

from repro.regex.dfa import dfa_from_regex, subset_construction
from repro.regex.minimize import minimize
from repro.regex.nfa import thompson
from repro.regex.parser import parse_regex


def nfa_of(text):
    return thompson(parse_regex(text))


def dfa_of(text):
    return dfa_from_regex(text)


class TestNFA:
    def test_symbol(self):
        nfa = nfa_of("a")
        assert nfa.accepts(["a"])
        assert not nfa.accepts([])
        assert not nfa.accepts(["b"])
        assert not nfa.accepts(["a", "a"])

    def test_concat(self):
        nfa = nfa_of("a b")
        assert nfa.accepts(["a", "b"])
        assert not nfa.accepts(["a"])
        assert not nfa.accepts(["b", "a"])

    def test_alternation(self):
        nfa = nfa_of("a|b")
        assert nfa.accepts(["a"])
        assert nfa.accepts(["b"])
        assert not nfa.accepts(["a", "b"])

    def test_star(self):
        nfa = nfa_of("a*")
        assert nfa.accepts([])
        assert nfa.accepts(["a"] * 5)

    def test_plus(self):
        nfa = nfa_of("a+")
        assert not nfa.accepts([])
        assert nfa.accepts(["a"])
        assert nfa.accepts(["a", "a", "a"])

    def test_optional(self):
        nfa = nfa_of("a?")
        assert nfa.accepts([])
        assert nfa.accepts(["a"])
        assert not nfa.accepts(["a", "a"])

    def test_alphabet(self):
        assert nfa_of("a (b|c)+").alphabet == {"a", "b", "c"}


class TestDFA:
    @pytest.mark.parametrize(
        "text,accepted,rejected",
        [
            ("a+", [["a"], ["a"] * 4], [[], ["b"]]),
            ("a b*", [["a"], ["a", "b", "b"]], [["b"], ["a", "a"]]),
            (
                "a b* c*",
                [["a"], ["a", "b"], ["a", "c"], ["a", "b", "c", "c"]],
                [["a", "c", "b"], ["c"]],
            ),
            (
                "(a b c)+",
                [["a", "b", "c"], ["a", "b", "c"] * 2],
                [["a", "b"], ["a", "b", "c", "a"]],
            ),
            (
                "(a|b)+ c",
                [["a", "c"], ["b", "a", "c"]],
                [["c"], ["a", "b"]],
            ),
        ],
    )
    def test_membership(self, text, accepted, rejected):
        dfa = dfa_of(text)
        for word in accepted:
            assert dfa.accepts(word), (text, word)
        for word in rejected:
            assert not dfa.accepts(word), (text, word)

    def test_start_is_zero(self):
        assert dfa_of("a b c").start == 0

    def test_start_accepting_detection(self):
        assert dfa_of("a*").start_is_accepting()
        assert not dfa_of("a+").start_is_accepting()

    def test_states_with_transition_on(self):
        dfa = dfa_of("a b")
        pairs = dfa.states_with_transition_on("a")
        assert len(pairs) == 1
        assert pairs[0][0] == dfa.start

    def test_delta_missing_is_none(self):
        dfa = dfa_of("a")
        assert dfa.delta(dfa.start, "z") is None


class TestMinimize:
    def test_minimized_equivalent(self):
        raw = subset_construction(thompson(parse_regex("(a|b)* a")))
        small = minimize(raw)
        for word in (
            [],
            ["a"],
            ["b"],
            ["a", "a"],
            ["b", "a"],
            ["a", "b"],
            ["b", "b", "a"],
        ):
            assert raw.accepts(word) == small.accepts(word), word

    def test_minimized_not_larger(self):
        raw = subset_construction(thompson(parse_regex("a a|a b|a c")))
        small = minimize(raw)
        assert len(small.states) <= len(raw.states)

    def test_redundant_union_collapses(self):
        # a|a has a 2-state minimal DFA.
        assert len(dfa_of("a|a").states) == 2

    def test_dead_states_removed(self):
        # Subset construction of "a b" can produce a dead sink; the minimal
        # DFA keeps only the 3 live states.
        dfa = dfa_of("a b")
        assert len(dfa.states) == 3

    def test_plus_of_symbol_two_states(self):
        dfa = dfa_of("a+")
        assert len(dfa.states) == 2
