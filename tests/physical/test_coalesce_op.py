"""Unit tests for the set-semantics coalescing stage."""

from repro.core.intervals import Interval
from repro.core.tuples import SGT
from repro.dataflow.graph import DELETE, DataflowGraph, Event, SinkOp
from repro.physical.coalesce_op import CoalesceOp


def wire():
    graph = DataflowGraph()
    op = CoalesceOp("l")
    sink = SinkOp()
    graph.add(op)
    graph.add(sink)
    graph.connect(op, sink, 0)
    return op, sink


def ev(ts, exp, sign=1, key=("a", "b")):
    return Event(SGT(key[0], key[1], "l", Interval(ts, exp)), sign)


class TestDeduplication:
    def test_first_insert_passes(self):
        op, sink = wire()
        op.on_event(0, ev(0, 10))
        assert len(sink.events) == 1

    def test_covered_duplicate_dropped(self):
        op, sink = wire()
        op.on_event(0, ev(0, 10))
        op.on_event(0, ev(2, 8))
        assert len(sink.events) == 1

    def test_extension_passes(self):
        op, sink = wire()
        op.on_event(0, ev(0, 10))
        op.on_event(0, ev(5, 15))
        assert len(sink.events) == 2

    def test_distinct_keys_independent(self):
        op, sink = wire()
        op.on_event(0, ev(0, 10, key=("a", "b")))
        op.on_event(0, ev(0, 10, key=("a", "c")))
        assert len(sink.events) == 2

    def test_disjoint_runs_pass(self):
        op, sink = wire()
        op.on_event(0, ev(0, 5))
        op.on_event(0, ev(20, 30))
        assert len(sink.events) == 2


class TestRetractionLedger:
    def test_delete_of_dropped_duplicate_absorbed(self):
        op, sink = wire()
        op.on_event(0, ev(0, 10))
        op.on_event(0, ev(2, 8))          # dropped
        op.on_event(0, ev(2, 8, DELETE))  # absorbed against the ledger
        assert sink.coverage()[("a", "b", "l")] == [Interval(0, 10)]

    def test_delete_of_passed_insert_forwarded(self):
        op, sink = wire()
        op.on_event(0, ev(0, 10))
        op.on_event(0, ev(0, 10, DELETE))
        assert sink.coverage() == {}

    def test_dropped_duplicate_resurrected_on_delete(self):
        # The forwarded DELETE would otherwise lose coverage the dropped
        # duplicate still supports upstream.
        op, sink = wire()
        op.on_event(0, ev(0, 10))         # passes
        op.on_event(0, ev(2, 8))          # dropped (covered)
        op.on_event(0, ev(0, 10, DELETE))
        assert sink.coverage()[("a", "b", "l")] == [Interval(2, 8)]

    def test_propagate_pattern_net_coverage(self):
        # The PATH propagate emission pattern: DELETE old, INSERT merged.
        op, sink = wire()
        op.on_event(0, ev(2, 10))
        op.on_event(0, ev(2, 10, DELETE))
        op.on_event(0, ev(2, 15))
        assert sink.coverage()[("a", "b", "l")] == [Interval(2, 15)]


class TestStateManagement:
    def test_purge_expired_covers(self):
        op, _ = wire()
        op.on_event(0, ev(0, 10))
        assert op.state_size() == 1
        op.on_advance(10)
        assert op.state_size() == 0

    def test_after_purge_reinsert_passes(self):
        op, sink = wire()
        op.on_event(0, ev(0, 10))
        op.on_advance(10)
        op.on_event(0, ev(12, 20))
        assert len(sink.events) == 2


class TestRandomizedNetCoverage:
    def test_net_coverage_preserved(self):
        """For random derivation-balanced streams, net coverage after
        coalescing equals net coverage before."""
        import random

        rng = random.Random(5)
        op, sink = wire()
        raw = SinkOp()
        live: list = []
        for _ in range(300):
            if live and rng.random() < 0.4:
                interval = live.pop(rng.randrange(len(live)))
                event = ev(interval[0], interval[1], DELETE)
            else:
                ts = rng.randrange(50)
                interval = (ts, ts + 1 + rng.randrange(20))
                live.append(interval)
                event = ev(interval[0], interval[1])
            raw.on_event(0, event)
            op.on_event(0, event)
        assert sink.coverage() == raw.coverage()
