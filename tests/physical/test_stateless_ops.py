"""Unit tests for the stateless physical operators (WSCAN, FILTER, UNION)."""

from repro.algebra.operators import Predicate
from repro.core.intervals import Interval
from repro.core.tuples import SGT, EdgePayload, PathPayload
from repro.core.windows import SlidingWindow
from repro.dataflow.graph import DELETE, DataflowGraph, Event, SinkOp
from repro.physical.filter import FilterOp
from repro.physical.union import UnionOp
from repro.physical.wscan import WScanOp


def wire(op):
    graph = DataflowGraph()
    graph.add(op)
    sink = SinkOp()
    graph.add(sink)
    graph.connect(op, sink, 0)
    return sink


def now_sgt(src, trg, label, t):
    return SGT(src, trg, label, Interval(t, t + 1))


class TestWScanOp:
    def test_assigns_window_interval(self):
        op = WScanOp("l", SlidingWindow(24))
        sink = wire(op)
        op.on_event(0, Event(now_sgt("a", "b", "l", 7)))
        assert sink.events[0].sgt.interval == Interval(7, 31)

    def test_slide_arithmetic(self):
        op = WScanOp("l", SlidingWindow(24, 6))
        sink = wire(op)
        op.on_event(0, Event(now_sgt("a", "b", "l", 7)))
        assert sink.events[0].sgt.interval == Interval(7, 30)

    def test_prefilter_drops(self):
        op = WScanOp("l", SlidingWindow(24), Predicate((("src", "==", "a"),)))
        sink = wire(op)
        op.on_event(0, Event(now_sgt("a", "b", "l", 1)))
        op.on_event(0, Event(now_sgt("z", "b", "l", 2)))
        assert len(sink.events) == 1
        assert sink.events[0].sgt.src == "a"

    def test_delete_maps_to_same_interval(self):
        op = WScanOp("l", SlidingWindow(24))
        sink = wire(op)
        op.on_event(0, Event(now_sgt("a", "b", "l", 7), DELETE))
        event = sink.events[0]
        assert event.sign == DELETE
        assert event.sgt.interval == Interval(7, 31)


class TestFilterOp:
    def test_predicate_filtering(self):
        op = FilterOp(Predicate((("trg", "==", "b"),)))
        sink = wire(op)
        op.on_event(0, Event(now_sgt("a", "b", "l", 1)))
        op.on_event(0, Event(now_sgt("a", "c", "l", 2)))
        assert [e.sgt.trg for e in sink.events] == ["b"]

    def test_deletes_filtered_identically(self):
        op = FilterOp(Predicate((("trg", "==", "b"),)))
        sink = wire(op)
        op.on_event(0, Event(now_sgt("a", "c", "l", 1), DELETE))
        assert sink.events == []


class TestUnionOp:
    def test_merges_ports(self):
        op = UnionOp()
        sink = wire(op)
        op.on_event(0, Event(now_sgt("a", "b", "l", 1)))
        op.on_event(1, Event(now_sgt("c", "d", "l", 2)))
        assert len(sink.events) == 2

    def test_relabels(self):
        op = UnionOp("out")
        sink = wire(op)
        op.on_event(0, Event(now_sgt("a", "b", "l", 1)))
        assert sink.events[0].sgt.label == "out"

    def test_relabel_preserves_path_payload(self):
        op = UnionOp("out")
        sink = wire(op)
        payload = PathPayload((EdgePayload("a", "b", "l"),))
        op.on_event(0, Event(SGT("a", "b", "P", Interval(0, 5), payload)))
        assert sink.events[0].sgt.payload == payload

    def test_same_label_passthrough_object(self):
        op = UnionOp("l")
        sink = wire(op)
        sgt = now_sgt("a", "b", "l", 1)
        op.on_event(0, Event(sgt))
        assert sink.events[0].sgt is sgt


class TestWatermarkPropagation:
    def test_min_frontier_across_ports(self):
        union = UnionOp()
        graph = DataflowGraph()
        graph.add(union)
        sink = SinkOp()
        graph.add(sink)
        graph.connect(union, sink, 0)
        union._register_input(0)
        union._register_input(1)
        union.receive_watermark(0, 10)
        assert union.watermark == -1  # port 1 still behind
        union.receive_watermark(1, 4)
        assert union.watermark == 4
        union.receive_watermark(1, 20)
        assert union.watermark == 10
