"""Cross-validation of the two PATH implementations.

S-PATH (direct approach) and the negative-tuple RPQ operator maintain
very different state-update disciplines; their outputs must nevertheless
cover identical validity at every slide boundary (and, for S-PATH, at
every instant).  Random streams with cycles and re-insertions hammer the
divergent code paths: Propagate vs first-derivation-wins, direct expiry
vs DRed repair.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval, cover
from repro.core.tuples import SGT
from repro.dataflow.graph import DataflowGraph, Event, SinkOp
from repro.physical.rpq_negative import NegativeTupleRpqOp
from repro.physical.spath import SPathOp


def build(impl, regex="l+", labels=("l",)):
    op = impl(list(labels), regex, "P")
    graph = DataflowGraph()
    graph.add(op)
    sink = SinkOp()
    graph.add(sink)
    graph.connect(op, sink, 0)
    return op, sink


def drive(op, edges, advance_every=1, horizon=None):
    """Feed (src, trg, port, ts, exp) tuples, advancing per instant."""
    clock = -1
    for src, trg, port, ts, exp in edges:
        while clock < ts:
            clock += 1
            op.on_advance(clock)
        op.on_event(port, Event(SGT(src, trg, op.labels[port], Interval(ts, exp))))
    end = horizon or (clock + 40)
    for t in range(clock + 1, end):
        op.on_advance(t)


edge_lists = st.lists(
    st.tuples(
        st.integers(0, 4),   # src
        st.integers(0, 4),   # trg
        st.integers(0, 2),   # gap to next
        st.integers(1, 15),  # lifetime
    ),
    min_size=1,
    max_size=30,
)


def materialize(raw):
    t = 0
    edges = []
    for src, trg, gap, life in raw:
        t += gap
        edges.append((src, trg, 0, t, t + life))
    return edges


@given(edge_lists)
@settings(max_examples=80, deadline=None)
def test_same_coverage_single_label_closure(raw):
    edges = materialize(raw)
    horizon = max(e[4] for e in edges) + 5
    spath, spath_sink = build(SPathOp)
    neg, neg_sink = build(NegativeTupleRpqOp)
    drive(spath, edges, horizon=horizon)
    drive(neg, edges, horizon=horizon)
    for t in range(0, horizon):
        assert spath_sink.valid_at(t) == neg_sink.valid_at(t), t


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_same_coverage_two_label_regex(raw):
    rng = random.Random(42)
    edges = [
        (src, trg, rng.randint(0, 1), ts, exp)
        for (src, trg, _, ts, exp) in materialize(raw)
    ]
    horizon = max(e[4] for e in edges) + 5
    spath, spath_sink = build(SPathOp, regex="(a b)+", labels=("a", "b"))
    neg, neg_sink = build(NegativeTupleRpqOp, regex="(a b)+", labels=("a", "b"))
    drive(spath, edges, horizon=horizon)
    drive(neg, edges, horizon=horizon)
    for t in range(0, horizon):
        assert spath_sink.valid_at(t) == neg_sink.valid_at(t), t


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_same_coverage_under_explicit_deletions(seed):
    """Interleaved inserts and deletes: forward-looking coverage (from
    each deletion's processing instant on) must agree."""
    rng = random.Random(seed)
    spath, spath_sink = build(SPathOp)
    neg, neg_sink = build(NegativeTupleRpqOp)

    live: list[tuple] = []
    t = 0
    for _ in range(60):
        t += rng.randint(0, 2)
        for op in (spath, neg):
            op.on_advance(t)
        if live and rng.random() < 0.3:
            src, trg, ts, exp = live.pop(rng.randrange(len(live)))
            event = Event(SGT(src, trg, "l", Interval(ts, exp)), -1)
            spath.on_event(0, event)
            neg.on_event(0, event)
        else:
            src, trg = rng.randrange(5), rng.randrange(5)
            exp = t + 1 + rng.randrange(12)
            live.append((src, trg, t, exp))
            event = Event(SGT(src, trg, "l", Interval(t, exp)))
            spath.on_event(0, event)
            neg.on_event(0, event)
        # Compare reachability state right now (not history: deletion
        # corrections are forward-looking).
        accept = {s for s in spath.dfa.accepting}
        left = {
            (root, key[0])
            for root, tree in spath.index.trees.items()
            for key, node in tree.nodes.items()
            if key[1] in accept and node.exp > t
        }
        right = {
            (root, key[0])
            for root, tree in neg.index.trees.items()
            for key, node in tree.nodes.items()
            if key[1] in accept and node.exp > t
        }
        assert left == right, f"state divergence at t={t}"


def test_interval_chopping_may_differ_but_cover_agrees():
    """The two operators may emit differently chopped intervals; their
    covers (per key) must still be equal."""
    edges = [(1, 2, 0, 0, 10), (2, 3, 0, 2, 8), (1, 2, 0, 5, 20)]
    spath, spath_sink = build(SPathOp)
    neg, neg_sink = build(NegativeTupleRpqOp)
    drive(spath, edges, horizon=30)
    drive(neg, edges, horizon=30)
    left = {k: cover(v) for k, v in spath_sink.coverage().items()}
    right = {k: cover(v) for k, v in neg_sink.coverage().items()}
    assert left == right
