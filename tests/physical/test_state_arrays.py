"""Unit and parity tests for the struct-of-arrays operator state
(``state_layout="arrays"``).

The arrays layout must be observationally identical to the object layout
it replaces — same emissions in the same order, same checkpoint blob
shapes — so most tests here drive both layouts side by side and compare
bit for bit.
"""

import random

import pytest

from repro.core.intervals import FOREVER, Interval
from repro.core.tuples import SGT
from repro.dataflow.graph import DataflowGraph, Event, SinkOp
from repro.errors import ExecutionError
from repro.physical.delta_index import DeltaPathIndex, WindowAdjacency
from repro.physical.rpq_negative import NegativeTupleRpqOp
from repro.physical.spath import SPathOp
from repro.physical.state_arrays import (
    STATE_LAYOUTS,
    ArrayAdjacency,
    ArrayPathIndex,
    ArraySpanningTree,
    apply_state_layout,
    new_maintenance_counters,
)


def wire(op):
    graph = DataflowGraph()
    graph.add(op)
    sink = SinkOp()
    graph.add(sink)
    graph.connect(op, sink, 0)
    return sink


def push(op, src, trg, ts, exp, port=0):
    op.on_event(port, Event(SGT(src, trg, op.labels[port], Interval(ts, exp))))


FIGURE9_EDGES = [
    ("x", "z", 23, 31),
    ("z", "u", 24, 32),
    ("x", "y", 25, 35),
    ("y", "w", 26, 33),
    ("z", "t", 27, 40),
    ("y", "u", 28, 37),
    ("u", "v", 29, 41),
    ("u", "s", 30, 38),
    ("w", "v", 30, 39),
]


class TestArrayAdjacency:
    def test_add_and_out_edges(self):
        adj = ArrayAdjacency()
        adj.add("u", "v", "l", 2, 9)
        adj.add("u", "v", "l", 3, 12)
        assert len(adj) == 2
        assert adj.out_edges("u", 5) == [("l", "v", Interval(3, 12))]
        assert adj.out_edges("w", 5) == []

    def test_group_views_are_flat_pairs(self):
        adj = ArrayAdjacency()
        adj.add("u", "v", "a", 1, 5)
        adj.add("u", "w", "b", 2, 6)
        group = adj.out_group("u")
        assert list(group) == [("a", "v"), ("b", "w")]  # insertion order
        assert group[("a", "v")] == [1, 5]
        assert adj.in_group("w")[("b", "u")] == [2, 6]

    def test_remove_exact_occurrence(self):
        adj = ArrayAdjacency()
        adj.add("u", "v", "l", 2, 9)
        adj.add("u", "v", "l", 2, 9)
        assert adj.remove("u", "v", "l", 2, 9)
        assert len(adj) == 1
        assert adj.remove("u", "v", "l", 2, 9)
        assert not adj.remove("u", "v", "l", 2, 9)
        assert adj.out_group("u") in (None, {})
        assert len(adj) == 0

    def test_purge_drops_expired_pairs(self):
        adj = ArrayAdjacency()
        adj.add("u", "v", "l", 0, 10)
        adj.add("u", "v", "l", 5, 20)
        adj.add("a", "b", "l", 1, 10)
        adj.purge(10)
        assert len(adj) == 1
        assert adj.out_group("a") in (None, {})
        assert adj.out_group("u")[("l", "v")] == [5, 20]
        # In-index stays consistent with the out-index after the rebuild.
        assert adj.in_group("v")[("l", "u")] == [5, 20]

    def test_snapshot_blob_matches_object_layout(self):
        edges = [("u", "v", "a", 0, 9), ("u", "w", "b", 2, 7), ("v", "u", "a", 3, 8)]
        obj = WindowAdjacency()
        arr = ArrayAdjacency()
        for u, v, label, ts, exp in edges:
            obj.add(u, v, label, Interval(ts, exp))
            arr.add(u, v, label, ts, exp)
        obj_blob = obj.snapshot_state()
        arr_blob = arr.snapshot_state()
        assert arr_blob["out"] == obj_blob["out"]
        assert arr_blob["in"] == obj_blob["in"]
        assert arr_blob["size"] == obj_blob["size"]

    def test_cross_layout_restore(self):
        obj = WindowAdjacency()
        obj.add("u", "v", "l", Interval(1, 9))
        obj.add("u", "w", "l", Interval(2, 30))
        arr = ArrayAdjacency()
        arr.restore_state(obj.snapshot_state())
        assert len(arr) == 2
        assert arr.out_edges("u", 5) == [
            ("l", "v", Interval(1, 9)),
            ("l", "w", Interval(2, 30)),
        ]
        arr.purge(9)  # the restored wheel still drives expiry
        assert len(arr) == 1


class TestArraySpanningTree:
    def test_root_never_expires(self):
        tree = ArraySpanningTree("x", 0)
        slot = tree.slots[("x", 0)]
        assert tree.exp[slot] == FOREVER
        assert tree.parent[slot] is None

    def test_add_child_links_both_ways(self):
        tree = ArraySpanningTree("x", 0)
        slot = tree.add_child(("x", 0), ("y", 1), 2, 9, "l")
        assert ("y", 1) in tree
        assert ("y", 1) in tree.children[tree.slots[("x", 0)]]
        assert tree.parent[slot] == ("x", 0)
        assert (tree.ts[slot], tree.exp[slot]) == (2, 9)

    def test_duplicate_child_rejected(self):
        tree = ArraySpanningTree("x", 0)
        tree.add_child(("x", 0), ("y", 1), 2, 9, "l")
        with pytest.raises(ExecutionError):
            tree.add_child(("x", 0), ("y", 1), 3, 10, "l")

    def test_reparent_moves_children_sets(self):
        tree = ArraySpanningTree("x", 0)
        tree.add_child(("x", 0), ("y", 1), 2, 9, "l")
        zslot = tree.add_child(("x", 0), ("z", 1), 2, 9, "l")
        tree.reparent(("z", 1), ("y", 1), "m")
        assert ("z", 1) not in tree.children[tree.slots[("x", 0)]]
        assert ("z", 1) in tree.children[tree.slots[("y", 1)]]
        assert tree.via[zslot] == "m"

    def test_remove_subtree_returns_keys_and_recycles_slots(self):
        tree = ArraySpanningTree("x", 0)
        tree.add_child(("x", 0), ("y", 1), 2, 9, "l")
        tree.add_child(("y", 1), ("z", 1), 3, 9, "l")
        removed = tree.remove_subtree(("y", 1))
        assert set(removed) == {("y", 1), ("z", 1)}
        assert tree.size() == 1
        # The freed slots are reused before the columns grow.
        cols_before = len(tree.ts)
        tree.add_child(("x", 0), ("w", 1), 4, 9, "l")
        assert len(tree.ts) == cols_before

    def test_cannot_remove_root(self):
        tree = ArraySpanningTree("x", 0)
        with pytest.raises(ExecutionError):
            tree.remove_subtree(("x", 0))

    def test_path_to_walks_parents(self):
        tree = ArraySpanningTree("x", 0)
        tree.add_child(("x", 0), ("y", 1), 2, 9, "a")
        tree.add_child(("y", 1), ("z", 2), 3, 9, "b")
        path = tree.path_to(("z", 2))
        assert path.vertices == ("x", "y", "z")
        assert path.label_sequence() == ("a", "b")


class TestArrayPathIndex:
    def test_ensure_tree_registers_root(self):
        index = ArrayPathIndex(0)
        tree = index.ensure_tree("x")
        assert index.roots_containing(("x", 0)) == ("x",)
        assert index.ensure_tree("x") is tree

    def test_drop_trivial_tree(self):
        index = ArrayPathIndex(0)
        index.ensure_tree("x")
        index.drop_tree_if_trivial("x")
        assert index.tree("x") is None
        tree = index.ensure_tree("y")
        tree.add_child(("y", 0), ("z", 1), 0, 5, "l")
        index.drop_tree_if_trivial("y")
        assert index.tree("y") is tree

    def test_snapshot_blob_matches_object_layout(self):
        def build(index, tree_cls=None):
            tree = index.ensure_tree("x")
            tree.add_child(("x", 0), ("y", 1), 2, 9, "a")
            tree.add_child(("y", 1), ("z", 1), 3, 8, "b")
            index.register("x", ("y", 1))
            index.register("x", ("z", 1))

        obj = DeltaPathIndex(0)
        arr = ArrayPathIndex(0)
        build(obj)
        build(arr)
        assert arr.snapshot_state() == obj.snapshot_state()

    def test_cross_layout_restore_after_slot_recycling(self):
        # A tree whose slots were shuffled by removals must serialize in
        # key order (slot numbers never leak into the blob).
        arr = ArrayPathIndex(0)
        tree = arr.ensure_tree("x")
        tree.add_child(("x", 0), ("y", 1), 2, 9, "a")
        tree.add_child(("x", 0), ("w", 1), 2, 9, "a")
        tree.remove_subtree(("y", 1))
        tree.add_child(("w", 1), ("v", 2), 3, 9, "b")  # reuses y's slot
        blob = arr.snapshot_state()
        obj = DeltaPathIndex(0)
        obj.restore_state(blob)
        assert list(obj.tree("x").nodes) == [("x", 0), ("w", 1), ("v", 2)]
        back = ArrayPathIndex(0)
        back.restore_state(obj.snapshot_state())
        assert back.snapshot_state() == blob


def _random_edges(seed, n=60, vertices=8, labels=("RL",), horizon=40):
    rng = random.Random(seed)
    edges = []
    t = 0
    for _ in range(n):
        t += rng.randint(0, 2)
        src = rng.randrange(vertices)
        trg = rng.randrange(vertices)
        if src == trg:
            continue
        edges.append(
            (src, trg, rng.choice(labels), t, t + rng.randint(1, horizon))
        )
    return edges


def _drive(op, edges, boundaries):
    sink = wire(op)
    script = sorted(
        [("edge", e[3], e) for e in edges]
        + [("advance", b, None) for b in boundaries],
        key=lambda step: (step[1], step[0] == "advance"),
    )
    for kind, t, payload in script:
        if kind == "edge":
            src, trg, label, ts, exp = payload
            push(op, src, trg, ts, exp)
        else:
            op.on_advance(t)
    return sink


@pytest.mark.parametrize("op_cls", [NegativeTupleRpqOp, SPathOp])
@pytest.mark.parametrize("seed", [1, 7, 23, 91])
def test_layout_parity_random_streams(op_cls, seed):
    """Objects vs arrays over the same random stream with window
    boundaries interleaved: identical emissions, in identical order."""
    edges = _random_edges(seed)
    horizon = max(e[4] for e in edges) + 1
    boundaries = list(range(5, horizon + 5, 5))
    obj_op = op_cls(["RL"], "RL+", "P")
    obj_sink = _drive(obj_op, edges, boundaries)
    arr_op = op_cls(["RL"], "RL+", "P")
    assert arr_op.configure_state_layout("arrays")
    arr_sink = _drive(arr_op, edges, boundaries)
    assert [
        (e.sgt, e.sign) for e in arr_sink.events
    ] == [(e.sgt, e.sign) for e in obj_sink.events]
    assert arr_op.state_size() == obj_op.state_size()


@pytest.mark.parametrize("op_cls", [NegativeTupleRpqOp, SPathOp])
def test_layout_parity_figure9(op_cls):
    obj_op = op_cls(["RL"], "RL+", "P")
    obj_sink = wire(obj_op)
    arr_op = op_cls(["RL"], "RL+", "P")
    assert arr_op.configure_state_layout("arrays")
    arr_sink = wire(arr_op)
    for src, trg, ts, exp in FIGURE9_EDGES:
        push(obj_op, src, trg, ts, exp)
        push(arr_op, src, trg, ts, exp)
    for t in (31, 33, 35, 41):
        obj_op.on_advance(t)
        arr_op.on_advance(t)
    assert [(e.sgt, e.sign) for e in arr_sink.events] == [
        (e.sgt, e.sign) for e in obj_sink.events
    ]
    for t in range(23, 45):
        assert arr_sink.valid_at(t) == obj_sink.valid_at(t), t


class TestLayoutSwitching:
    def test_switch_and_back_on_empty_op(self):
        op = NegativeTupleRpqOp(["l"], "l+", "P")
        assert op.state_layout == "objects"
        assert op.configure_state_layout("arrays")
        assert isinstance(op.index, ArrayPathIndex)
        assert isinstance(op.adjacency, ArrayAdjacency)
        assert not op.configure_state_layout("arrays")  # idempotent
        assert op.configure_state_layout("objects")
        assert isinstance(op.index, DeltaPathIndex)

    def test_refuses_live_state(self):
        op = NegativeTupleRpqOp(["l"], "l+", "P")
        wire(op)
        push(op, 1, 2, 0, 10)
        with pytest.raises(ExecutionError, match="live state"):
            op.configure_state_layout("arrays")

    def test_unknown_layout_rejected(self):
        op = NegativeTupleRpqOp(["l"], "l+", "P")
        with pytest.raises(ExecutionError, match="layout"):
            op.configure_state_layout("rows")
        with pytest.raises(ExecutionError, match="layout"):
            apply_state_layout([op], "rows")

    def test_apply_state_layout_counts_switches(self):
        ops = [
            NegativeTupleRpqOp(["l"], "l+", "P"),
            SPathOp(["l"], "l+", "Q"),
            object(),  # no hook: untouched
        ]
        assert apply_state_layout(ops, "arrays") == 2
        assert apply_state_layout(ops, "arrays") == 0  # already configured


class TestMaintenanceCounters:
    def test_fresh_counters_are_zero(self):
        counters = new_maintenance_counters()
        assert set(counters) == {
            "boundaries",
            "drained_entries",
            "expired_nodes",
            "rederive_trees",
            "rederive_passes",
        }
        assert all(v == 0 for v in counters.values())

    @pytest.mark.parametrize("layout", STATE_LAYOUTS)
    def test_one_repair_pass_per_tree_per_boundary(self, layout):
        """The batched-maintenance gate: at a window boundary the
        rederivation count is bounded by the number of *affected trees*,
        never the number of expired nodes."""
        op = NegativeTupleRpqOp(["RL"], "RL+", "P")
        if layout == "arrays":
            assert op.configure_state_layout(layout)
        wire(op)
        for src, trg, ts, exp in FIGURE9_EDGES:
            push(op, src, trg, ts, exp)
        op.on_advance(31)  # expires the z-subtree: several nodes, 1 tree
        counters = op.maintenance_counters
        assert counters["boundaries"] == 1
        assert counters["expired_nodes"] >= 2
        assert counters["rederive_trees"] == 1
        assert counters["rederive_passes"] == counters["rederive_trees"]
        assert counters["rederive_passes"] < counters["expired_nodes"]

    @pytest.mark.parametrize("layout", STATE_LAYOUTS)
    @pytest.mark.parametrize("seed", [3, 17])
    def test_invariant_over_random_streams(self, layout, seed):
        op = NegativeTupleRpqOp(["RL"], "RL+", "P")
        if layout == "arrays":
            assert op.configure_state_layout(layout)
        edges = _random_edges(seed)
        horizon = max(e[4] for e in edges) + 1
        _drive(op, edges, list(range(5, horizon + 5, 5)))
        counters = op.maintenance_counters
        assert counters["rederive_passes"] == counters["rederive_trees"]
        assert counters["rederive_trees"] <= counters["expired_nodes"]

    def test_spath_runs_no_boundary_repairs(self):
        op = SPathOp(["RL"], "RL+", "P")
        assert op.configure_state_layout("arrays")
        wire(op)
        for src, trg, ts, exp in FIGURE9_EDGES:
            push(op, src, trg, ts, exp)
        op.on_advance(31)
        counters = op.maintenance_counters
        assert counters["boundaries"] == 1
        assert counters["rederive_passes"] == 0


class TestCrossLayoutCheckpoints:
    @pytest.mark.parametrize("op_cls", [NegativeTupleRpqOp, SPathOp])
    def test_object_blob_restores_into_arrays(self, op_cls):
        """A pre-arrays (object layout) operator snapshot restores into
        the arrays layout; the restored operator then behaves
        identically to the uninterrupted object run."""
        donor = op_cls(["RL"], "RL+", "P")
        donor_sink = wire(donor)
        reference = op_cls(["RL"], "RL+", "P")
        reference_sink = wire(reference)
        for src, trg, ts, exp in FIGURE9_EDGES[:6]:
            push(donor, src, trg, ts, exp)
            push(reference, src, trg, ts, exp)
        blob = donor.snapshot_state()

        restored = op_cls(["RL"], "RL+", "P")
        assert restored.configure_state_layout("arrays")
        restored_sink = wire(restored)
        restored.restore_state(blob)
        assert isinstance(restored.index, ArrayPathIndex)
        assert restored.state_size() == reference.state_size()

        for src, trg, ts, exp in FIGURE9_EDGES[6:]:
            push(reference, src, trg, ts, exp)
            push(restored, src, trg, ts, exp)
        for t in (31, 35, 41):
            reference.on_advance(t)
            restored.on_advance(t)
        suffix = len(reference_sink.events) - len(restored_sink.events)
        assert [(e.sgt, e.sign) for e in restored_sink.events] == [
            (e.sgt, e.sign) for e in reference_sink.events[suffix:]
        ]

    @pytest.mark.parametrize("op_cls", [NegativeTupleRpqOp, SPathOp])
    def test_arrays_snapshot_equals_object_snapshot(self, op_cls):
        obj_op = op_cls(["RL"], "RL+", "P")
        wire(obj_op)
        arr_op = op_cls(["RL"], "RL+", "P")
        assert arr_op.configure_state_layout("arrays")
        wire(arr_op)
        for src, trg, ts, exp in FIGURE9_EDGES:
            push(obj_op, src, trg, ts, exp)
            push(arr_op, src, trg, ts, exp)
        obj_op.on_advance(31)
        arr_op.on_advance(31)
        assert arr_op.snapshot_state() == obj_op.snapshot_state()
