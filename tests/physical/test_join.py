"""Unit tests for the PATTERN symmetric-hash-join operator."""

from repro.core.intervals import Interval
from repro.core.tuples import SGT
from repro.dataflow.graph import DELETE, DataflowGraph, Event, SinkOp
from repro.physical.join import PatternOp


def wire(op):
    graph = DataflowGraph()
    graph.add(op)
    sink = SinkOp()
    graph.add(sink)
    graph.connect(op, sink, 0)
    return sink


def sgt(src, trg, label, ts, exp):
    return SGT(src, trg, label, Interval(ts, exp))


class TestBinaryJoin:
    def _op(self):
        # out(x, z) <- a(x, y), b(y, z)
        return PatternOp([("x", "y"), ("y", "z")], "x", "z", "out")

    def test_join_on_shared_variable(self):
        op = self._op()
        sink = wire(op)
        op.on_event(0, Event(sgt(1, 2, "a", 0, 10)))
        op.on_event(1, Event(sgt(2, 3, "b", 0, 10)))
        assert len(sink.events) == 1
        result = sink.events[0].sgt
        assert (result.src, result.trg, result.label) == (1, 3, "out")

    def test_symmetric_both_orders(self):
        for first_port in (0, 1):
            op = self._op()
            sink = wire(op)
            events = [
                (0, sgt(1, 2, "a", 0, 10)),
                (1, sgt(2, 3, "b", 0, 10)),
            ]
            if first_port == 1:
                events.reverse()
            for port, tup in events:
                op.on_event(port, Event(tup))
            assert len(sink.events) == 1

    def test_no_match_no_output(self):
        op = self._op()
        sink = wire(op)
        op.on_event(0, Event(sgt(1, 2, "a", 0, 10)))
        op.on_event(1, Event(sgt(9, 3, "b", 0, 10)))
        assert sink.events == []

    def test_interval_intersection(self):
        op = self._op()
        sink = wire(op)
        op.on_event(0, Event(sgt(1, 2, "a", 0, 6)))
        op.on_event(1, Event(sgt(2, 3, "b", 4, 12)))
        assert sink.events[0].sgt.interval == Interval(4, 6)

    def test_disjoint_intervals_do_not_join(self):
        op = self._op()
        sink = wire(op)
        op.on_event(0, Event(sgt(1, 2, "a", 0, 4)))
        op.on_event(1, Event(sgt(2, 3, "b", 6, 12)))
        assert sink.events == []

    def test_multiple_matches(self):
        op = self._op()
        sink = wire(op)
        op.on_event(0, Event(sgt(1, 2, "a", 0, 10)))
        op.on_event(0, Event(sgt(5, 2, "a", 0, 10)))
        op.on_event(1, Event(sgt(2, 3, "b", 0, 10)))
        assert {e.sgt.src for e in sink.events} == {1, 5}


class TestTriangle:
    def test_example6_recent_liker(self, paper_stream, window24):
        # RL(u1, u2) <- likes(u1, m1), posts(u2, m1), follows(u1, u2)
        # (with follows standing in for the follows-path, which the full
        # engine computes with PATH; here u->v and y->u suffice).
        op = PatternOp(
            [("u1", "m1"), ("u2", "m1"), ("u1", "u2")], "u1", "u2", "RL"
        )
        sink = wire(op)
        port_of = {"likes": 0, "posts": 1, "follows": 2}
        for edge in paper_stream:
            interval = window24.interval_for(edge.t)
            op.on_event(
                port_of[edge.label],
                Event(SGT(edge.src, edge.trg, edge.label, interval)),
            )
        coverage = op and sink.coverage()
        # Example 6: (y, RL, u) on [28, 37) and (u, RL, v) on [29, 31).
        assert coverage[("y", "u", "RL")] == [Interval(28, 37)]
        assert coverage[("u", "v", "RL")] == [Interval(29, 31)]
        assert set(coverage) == {("y", "u", "RL"), ("u", "v", "RL")}


class TestRenameAndLoops:
    def test_single_conjunct_projection_flip(self):
        op = PatternOp([("x", "y")], "y", "x", "inv")
        sink = wire(op)
        op.on_event(0, Event(sgt("a", "b", "l", 0, 5)))
        result = sink.events[0].sgt
        assert (result.src, result.trg) == ("b", "a")

    def test_repeated_variable_filters_loops(self):
        op = PatternOp([("x", "x")], "x", "x", "loops")
        sink = wire(op)
        op.on_event(0, Event(sgt("a", "a", "l", 0, 5)))
        op.on_event(0, Event(sgt("a", "b", "l", 0, 5)))
        assert len(sink.events) == 1
        assert sink.events[0].sgt.src == "a"


class TestDeletionsAndExpiry:
    def test_delete_retracts_results(self):
        op = PatternOp([("x", "y"), ("y", "z")], "x", "z", "out")
        sink = wire(op)
        a = sgt(1, 2, "a", 0, 10)
        b = sgt(2, 3, "b", 0, 10)
        op.on_event(0, Event(a))
        op.on_event(1, Event(b))
        op.on_event(0, Event(a, DELETE))
        assert sink.coverage() == {}

    def test_delete_unknown_tuple_is_noop(self):
        op = PatternOp([("x", "y"), ("y", "z")], "x", "z", "out")
        sink = wire(op)
        op.on_event(0, Event(sgt(1, 2, "a", 0, 10), DELETE))
        assert sink.events == []

    def test_delete_one_of_two_parallel_edges(self):
        op = PatternOp([("x", "y"), ("y", "z")], "x", "z", "out")
        sink = wire(op)
        a1 = sgt(1, 2, "a", 0, 10)
        a2 = sgt(1, 2, "a", 2, 12)
        b = sgt(2, 3, "b", 0, 20)
        op.on_event(0, Event(a1))
        op.on_event(0, Event(a2))
        op.on_event(1, Event(b))
        op.on_event(0, Event(a1, DELETE))
        # The a2-derived result survives: coverage [2, 12).
        assert sink.coverage() == {(1, 3, "out"): [Interval(2, 12)]}

    def test_purge_drops_expired_state(self):
        op = PatternOp([("x", "y"), ("y", "z")], "x", "z", "out")
        wire(op)
        op.on_event(0, Event(sgt(1, 2, "a", 0, 10)))
        op.on_event(1, Event(sgt(2, 3, "b", 0, 10)))
        assert op.state_size() == 2
        op.on_advance(10)
        assert op.state_size() == 0

    def test_expired_tuple_no_longer_joins(self):
        op = PatternOp([("x", "y"), ("y", "z")], "x", "z", "out")
        sink = wire(op)
        op.on_event(0, Event(sgt(1, 2, "a", 0, 10)))
        op.on_advance(10)
        op.on_event(1, Event(sgt(2, 3, "b", 10, 20)))
        assert sink.events == []
