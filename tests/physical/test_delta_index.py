"""Unit tests for the Δ-PATH building blocks (Definitions 21-22)."""

import pytest

from repro.core.intervals import FOREVER, Interval
from repro.errors import ExecutionError
from repro.physical.delta_index import (
    DeltaPathIndex,
    SpanningTree,
    WindowAdjacency,
    reverse_transitions,
)
from repro.regex.dfa import dfa_from_regex


class TestSpanningTree:
    def test_root_never_expires(self):
        tree = SpanningTree("x", 0)
        root = tree.get(("x", 0))
        assert root.exp == FOREVER
        assert root.parent is None

    def test_add_child_links_both_ways(self):
        tree = SpanningTree("x", 0)
        tree.add_child(("x", 0), ("y", 1), 2, 9, "l")
        assert ("y", 1) in tree
        assert ("y", 1) in tree.get(("x", 0)).children
        assert tree.get(("y", 1)).parent == ("x", 0)

    def test_duplicate_child_rejected(self):
        tree = SpanningTree("x", 0)
        tree.add_child(("x", 0), ("y", 1), 2, 9, "l")
        with pytest.raises(ExecutionError):
            tree.add_child(("x", 0), ("y", 1), 3, 10, "l")

    def test_reparent_moves_children_sets(self):
        tree = SpanningTree("x", 0)
        tree.add_child(("x", 0), ("y", 1), 2, 9, "l")
        tree.add_child(("x", 0), ("z", 1), 2, 9, "l")
        tree.reparent(("z", 1), ("y", 1), "m")
        assert ("z", 1) not in tree.get(("x", 0)).children
        assert ("z", 1) in tree.get(("y", 1)).children
        assert tree.get(("z", 1)).via_label == "m"

    def test_remove_subtree(self):
        tree = SpanningTree("x", 0)
        tree.add_child(("x", 0), ("y", 1), 2, 9, "l")
        tree.add_child(("y", 1), ("z", 1), 3, 9, "l")
        removed = dict(tree.remove_subtree(("y", 1)))
        assert set(removed) == {("y", 1), ("z", 1)}
        assert tree.size() == 1

    def test_cannot_remove_root(self):
        tree = SpanningTree("x", 0)
        with pytest.raises(ExecutionError):
            tree.remove_subtree(("x", 0))

    def test_path_to_walks_parents(self):
        tree = SpanningTree("x", 0)
        tree.add_child(("x", 0), ("y", 1), 2, 9, "a")
        tree.add_child(("y", 1), ("z", 2), 3, 9, "b")
        path = tree.path_to(("z", 2))
        assert path.vertices == ("x", "y", "z")
        assert path.label_sequence() == ("a", "b")


class TestDeltaPathIndex:
    def test_ensure_tree_registers_root(self):
        index = DeltaPathIndex(0)
        tree = index.ensure_tree("x")
        assert index.roots_containing(("x", 0)) == ("x",)
        assert index.ensure_tree("x") is tree

    def test_register_unregister(self):
        index = DeltaPathIndex(0)
        index.ensure_tree("x")
        index.register("x", ("y", 1))
        assert "x" in index.roots_containing(("y", 1))
        index.unregister("x", ("y", 1))
        assert index.roots_containing(("y", 1)) == ()

    def test_drop_trivial_tree(self):
        index = DeltaPathIndex(0)
        tree = index.ensure_tree("x")
        index.drop_tree_if_trivial("x")
        assert index.tree("x") is None
        # Non-trivial trees survive.
        tree = index.ensure_tree("y")
        tree.add_child(("y", 0), ("z", 1), 0, 5, "l")
        index.drop_tree_if_trivial("y")
        assert index.tree("y") is tree

    def test_state_size(self):
        index = DeltaPathIndex(0)
        tree = index.ensure_tree("x")
        assert index.state_size() == 1
        tree.add_child(("x", 0), ("y", 1), 0, 5, "l")
        assert index.state_size() == 2


class TestWindowAdjacency:
    def test_add_and_out_edges(self):
        adj = WindowAdjacency()
        adj.add(1, 2, "l", Interval(0, 10))
        assert list(adj.out_edges(1, 5)) == [("l", 2, Interval(0, 10))]
        assert list(adj.out_edges(1, 10)) == []

    def test_in_edges(self):
        adj = WindowAdjacency()
        adj.add(1, 2, "l", Interval(0, 10))
        assert list(adj.in_edges(2, 5)) == [("l", 1, Interval(0, 10))]

    def test_parallel_occurrences_best_expiry_wins(self):
        adj = WindowAdjacency()
        adj.add(1, 2, "l", Interval(0, 10))
        adj.add(1, 2, "l", Interval(3, 20))
        (label, trg, interval), = adj.out_edges(1, 5)
        assert interval == Interval(3, 20)

    def test_remove_exact_interval(self):
        adj = WindowAdjacency()
        adj.add(1, 2, "l", Interval(0, 10))
        adj.add(1, 2, "l", Interval(3, 20))
        assert adj.remove(1, 2, "l", Interval(3, 20))
        (label, trg, interval), = adj.out_edges(1, 5)
        assert interval == Interval(0, 10)

    def test_remove_missing_returns_false(self):
        adj = WindowAdjacency()
        assert not adj.remove(1, 2, "l", Interval(0, 10))

    def test_purge_is_lazy_and_correct(self):
        adj = WindowAdjacency()
        adj.add(1, 2, "l", Interval(0, 10))
        adj.add(1, 3, "l", Interval(0, 30))
        adj.purge(15)
        assert len(adj) == 1
        assert list(adj.out_edges(1, 16)) == [("l", 3, Interval(0, 30))]


class TestReverseTransitions:
    def test_inverts_dfa(self):
        dfa = dfa_from_regex("a b")
        reverse = reverse_transitions(dfa)
        for (label, target), sources in reverse.items():
            for source in sources:
                assert dfa.delta(source, label) == target
        total = sum(len(s) for s in reverse.values())
        assert total == sum(len(m) for m in dfa.transitions.values())


class TestBulkPaths:
    """The bulk insert paths added for batched execution."""

    def test_add_many_matches_sequential_add(self):
        from repro.core.intervals import Interval
        from repro.physical.delta_index import WindowAdjacency

        edges = [
            (1, 2, "a", Interval(0, 10)),
            (1, 3, "b", Interval(2, 12)),
            (2, 3, "a", Interval(4, 8)),
            (1, 2, "a", Interval(1, 20)),  # parallel occurrence
        ]
        sequential = WindowAdjacency()
        for u, v, label, interval in edges:
            sequential.add(u, v, label, interval)
        bulk = WindowAdjacency()
        bulk.add_many(edges)

        assert len(bulk) == len(sequential) == 4
        for now in (0, 3, 5, 9, 15):
            assert sorted(bulk.out_edges(1, now)) == sorted(
                sequential.out_edges(1, now)
            )
            assert sorted(bulk.in_edges(3, now)) == sorted(
                sequential.in_edges(3, now)
            )

    def test_add_many_purges_like_add(self):
        from repro.core.intervals import Interval
        from repro.physical.delta_index import WindowAdjacency

        bulk = WindowAdjacency()
        bulk.add_many(
            [(1, 2, "a", Interval(0, 5)), (2, 3, "a", Interval(0, 50))]
        )
        bulk.purge(10)
        assert len(bulk) == 1
        assert list(bulk.out_edges(1, 12)) == []
        assert [v for _, v, _ in bulk.out_edges(2, 12)] == [3]

    def test_add_many_on_top_of_existing_state(self):
        from repro.core.intervals import Interval
        from repro.physical.delta_index import WindowAdjacency

        adjacency = WindowAdjacency()
        for i in range(8):
            adjacency.add(0, i + 1, "a", Interval(i, i + 30))
        adjacency.add_many([(0, 100, "a", Interval(0, 3))])
        adjacency.purge(5)  # the bulk-added edge expires first
        assert all(v != 100 for _, v, _ in adjacency.out_edges(0, 6))

    def test_hash_table_insert_many_matches_insert(self):
        from repro.core.intervals import Interval
        from repro.physical.join import _HashTable

        rows = [
            (("x",), ("x", "y"), Interval(0, 10)),
            (("x",), ("x", "z"), Interval(2, 8)),
            (("w",), ("w", "y"), Interval(1, 4)),
        ]
        sequential = _HashTable()
        for key, values, interval in rows:
            sequential.insert(key, values, interval)
        bulk = _HashTable()
        bulk.insert_many(rows)

        assert len(bulk) == len(sequential) == 3
        assert sorted(bulk.probe(("x",))) == sorted(sequential.probe(("x",)))
        bulk.purge(5)
        sequential.purge(5)
        assert sorted(bulk.probe(("w",))) == sorted(sequential.probe(("w",)))
        assert len(bulk) == len(sequential)


class TestRepairSettledGuard:
    """Diamond-shaped snapshot graphs: a repaired node must settle once.

    Regression for the repair pass's settled-set / best-pushed-expiry
    guard: on a diamond (two alternative parents for the same child) the
    heap previously accumulated one candidate per alternative and
    re-popped them all after the child had already been re-derived.
    """

    def _diamond(self):
        """r -> a -> c and r -> b -> c over label 'l', with b->c the
        longer-lived alternative."""
        from repro.physical.rpq_negative import NegativeTupleRpqOp

        op = NegativeTupleRpqOp(["l"], "l+", "P", materialize_paths=False)
        edges = [
            ("r", "a", Interval(0, 100)),
            ("r", "b", Interval(0, 100)),
            ("a", "c", Interval(1, 50)),
            ("b", "c", Interval(1, 80)),
        ]
        for u, v, interval in edges:
            op._insert(u, v, "l", interval)
        return op

    def test_diamond_repair_reparents_through_alternative(self):
        op = self._diamond()
        tree = op.index.tree("r")
        accepting = next(iter(op.dfa.accepting))
        # Expand-only: c's first derivation goes through a.
        assert tree.get(("c", accepting)).parent == ("a", accepting)
        op._delete("a", "c", "l", Interval(1, 50))
        node = tree.get(("c", accepting))
        assert node is not None, "c must be re-derived via b"
        assert node.parent == ("b", accepting)
        assert node.exp == 80

    def test_diamond_repair_settles_each_node_once(self, monkeypatch):
        import heapq as heapq_module

        op = self._diamond()
        # Widen the diamond: many alternative parents for c.
        for extra in range(5):
            mid = f"m{extra}"
            op._insert("r", mid, "l", Interval(0, 100))
            op._insert(mid, "c", "l", Interval(1, 60 + extra))

        pushes = 0
        real_heappush = heapq_module.heappush

        def counting_heappush(heap, item):
            nonlocal pushes
            pushes += 1
            real_heappush(heap, item)

        monkeypatch.setattr(heapq_module, "heappush", counting_heappush)
        op._delete("a", "c", "l", Interval(1, 50))
        # c has 6 surviving alternative parents; the best-expiry guard
        # admits only improving candidates (at most one per alternative
        # scanned in-order, plus relaxation), so the heap stays small.
        # Without the guard this scenario pushed a candidate per parent
        # per relaxation round.
        assert pushes <= 8, f"heap accumulated {pushes} candidates"
        tree = op.index.tree("r")
        accepting = next(iter(op.dfa.accepting))
        assert tree.get(("c", accepting)).parent == ("b", accepting)
