"""Unit tests for the S-PATH operator, including the paper's Figure 9
walkthrough."""

from repro.core.intervals import Interval
from repro.core.tuples import SGT, PathPayload
from repro.dataflow.graph import DELETE, DataflowGraph, Event, SinkOp
from repro.physical.spath import SPathOp


def wire(op):
    graph = DataflowGraph()
    graph.add(op)
    sink = SinkOp()
    graph.add(sink)
    graph.connect(op, sink, 0)
    return sink


def push(op, src, trg, ts, exp, port=0):
    op.on_event(port, Event(SGT(src, trg, op.labels[port], Interval(ts, exp))))


class TestSimpleClosure:
    def test_single_edge(self):
        op = SPathOp(["l"], "l+", "P")
        sink = wire(op)
        push(op, 1, 2, 0, 10)
        assert sink.coverage() == {(1, 2, "P"): [Interval(0, 10)]}

    def test_two_hop(self):
        op = SPathOp(["l"], "l+", "P")
        sink = wire(op)
        push(op, 1, 2, 0, 10)
        push(op, 2, 3, 2, 12)
        coverage = sink.coverage()
        assert coverage[(1, 3, "P")] == [Interval(2, 10)]
        assert coverage[(2, 3, "P")] == [Interval(2, 12)]

    def test_back_extension(self):
        # The later edge arrives upstream of the earlier one.
        op = SPathOp(["l"], "l+", "P")
        sink = wire(op)
        push(op, 2, 3, 0, 10)
        push(op, 1, 2, 2, 12)
        assert sink.coverage()[(1, 3, "P")] == [Interval(2, 10)]

    def test_cycle_reaches_all_pairs(self):
        op = SPathOp(["l"], "l+", "P")
        sink = wire(op)
        push(op, 1, 2, 0, 30)
        push(op, 2, 3, 1, 30)
        push(op, 3, 1, 2, 30)
        keys = set(sink.coverage())
        assert keys == {(i, j, "P") for i in (1, 2, 3) for j in (1, 2, 3)}

    def test_result_payload_is_materialized_path(self):
        op = SPathOp(["l"], "l+", "P")
        sink = wire(op)
        push(op, 1, 2, 0, 10)
        push(op, 2, 3, 1, 10)
        three_hop = [
            e.sgt
            for e in sink.events
            if e.sgt.src == 1 and e.sgt.trg == 3
        ]
        assert len(three_hop) == 1
        payload = three_hop[0].payload
        assert isinstance(payload, PathPayload)
        assert payload.vertices == (1, 2, 3)
        assert payload.label_sequence() == ("l", "l")


class TestRegexConstraints:
    def test_concat_regex(self):
        op = SPathOp(["a", "b"], "a b", "P")
        sink = wire(op)
        push(op, 1, 2, 0, 10, port=0)
        push(op, 2, 3, 1, 10, port=1)
        push(op, 3, 4, 2, 10, port=1)  # second b: word 'abb' not in L
        assert set(sink.coverage()) == {(1, 3, "P")}

    def test_q4_style_regex(self):
        op = SPathOp(["a", "b", "c"], "(a b c)+", "P")
        sink = wire(op)
        push(op, 1, 2, 0, 50, port=0)
        push(op, 2, 3, 1, 50, port=1)
        push(op, 3, 4, 2, 50, port=2)
        push(op, 4, 5, 3, 50, port=0)
        push(op, 5, 6, 4, 50, port=1)
        push(op, 6, 7, 5, 50, port=2)
        keys = set(sink.coverage())
        assert (1, 4, "P") in keys
        assert (4, 7, "P") in keys
        assert (1, 7, "P") in keys
        assert (1, 3, "P") not in keys


class TestFigure9:
    """The worked example of Section 6.2.4 (Figures 9a-9c)."""

    def _run(self):
        op = SPathOp(["RL"], "RL+", "RLP")
        sink = wire(op)
        edges = [
            ("x", "z", 23, 31),
            ("z", "u", 24, 32),
            ("x", "y", 25, 35),
            ("y", "w", 26, 33),
            ("z", "t", 27, 40),
            ("y", "u", 28, 37),
            ("u", "v", 29, 41),
            ("u", "s", 30, 38),
            ("w", "v", 30, 39),
        ]
        for src, trg, ts, exp in edges:
            push(op, src, trg, ts, exp)
        return op, sink

    def test_tree_structure_at_30(self):
        op, _ = self._run()
        tree = op.index.tree("x")
        assert tree is not None
        accept_state = next(iter(op.dfa.accepting))
        node_u = tree.get(("u", accept_state))
        # Propagate re-rooted u under y: interval [28, 35).
        assert node_u.ts <= 28
        assert node_u.exp == 35
        assert node_u.parent == ("y", accept_state)
        # v and s hang below u with exp = min(parent, edge).
        assert tree.get(("v", accept_state)).exp == 35
        assert tree.get(("s", accept_state)).exp == 35
        # z and t keep their original (expiring-at-31 / 31) intervals.
        assert tree.get(("z", accept_state)).exp == 31
        assert tree.get(("t", accept_state)).exp == 31

    def test_w_v_edge_does_not_downgrade(self):
        # At t=30 the (w, v) edge offers exp 33 < existing 35: no change.
        op, sink = self._run()
        accept_state = next(iter(op.dfa.accepting))
        tree = op.index.tree("x")
        assert tree.get(("v", accept_state)).exp == 35

    def test_direct_expiry_at_31(self):
        op, _ = self._run()
        op.on_advance(31)
        tree = op.index.tree("x")
        accept_state = next(iter(op.dfa.accepting))
        assert tree.get(("z", accept_state)) is None
        assert tree.get(("t", accept_state)) is None
        # The re-derived subtree under y survives.
        assert tree.get(("u", accept_state)) is not None
        assert tree.get(("v", accept_state)) is not None

    def test_coverage_includes_rederived_u(self):
        _, sink = self._run()
        # x reaches u via z on [24, 31) and via y on [28, 35): coalesced
        # coverage is one interval [24, 35).
        assert sink.coverage()[("x", "u", "RLP")] == [Interval(24, 35)]


class TestStateManagement:
    def test_purge_removes_expired_nodes(self):
        op = SPathOp(["l"], "l+", "P")
        wire(op)
        push(op, 1, 2, 0, 10)
        push(op, 2, 3, 1, 12)
        before = op.state_size()
        op.on_advance(10)
        assert op.state_size() < before
        op.on_advance(12)
        # Everything gone: trees dropped, adjacency empty.
        assert op.index.trees == {}
        assert len(op.adjacency) == 0

    def test_expired_node_replaced_on_new_derivation(self):
        op = SPathOp(["l"], "l+", "P")
        sink = wire(op)
        push(op, 1, 2, 0, 5)
        push(op, 1, 2, 6, 15)  # same edge re-inserted after expiry
        assert sink.coverage()[(1, 2, "P")] == [
            Interval(0, 5),
            Interval(6, 15),
        ]

    def test_state_size_reporting(self):
        op = SPathOp(["l"], "l+", "P")
        wire(op)
        assert op.state_size() == 0
        push(op, 1, 2, 0, 10)
        assert op.state_size() > 0


class TestExplicitDeletion:
    def test_delete_tree_edge_with_no_alternative(self):
        op = SPathOp(["l"], "l+", "P")
        sink = wire(op)
        push(op, 1, 2, 0, 10)
        op.on_event(0, Event(SGT(1, 2, "l", Interval(0, 10)), DELETE))
        # Validity from the deletion time on is retracted; the pair had
        # been valid on [0, 10) and deletion happened at now=0.
        assert sink.coverage() == {}

    def test_delete_with_alternative_path(self):
        op = SPathOp(["l"], "l+", "P")
        sink = wire(op)
        push(op, 1, 2, 0, 10)
        push(op, 1, 3, 1, 20)
        push(op, 3, 2, 2, 20)
        # Tree edge 1->2 deleted at now=2; alternative 1->3->2 valid.
        op.on_event(0, Event(SGT(1, 2, "l", Interval(0, 10)), DELETE))
        coverage = sink.coverage()
        intervals = coverage[(1, 2, "P")]
        assert any(iv.contains(5) for iv in intervals)  # still reachable
        assert any(iv.contains(15) for iv in intervals)  # via alternative

    def test_delete_non_tree_edge_keeps_results(self):
        op = SPathOp(["l"], "l+", "P")
        sink = wire(op)
        push(op, 1, 2, 0, 10)
        push(op, 1, 2, 1, 8)  # parallel worse edge: not a tree edge
        op.on_event(0, Event(SGT(1, 2, "l", Interval(1, 8)), DELETE))
        assert sink.coverage()[(1, 2, "P")] == [Interval(0, 10)]

    def test_delete_then_state_matches_rebuild(self):
        op = SPathOp(["l"], "l+", "P")
        wire(op)
        edges = [(1, 2, 0, 20), (2, 3, 1, 20), (3, 4, 2, 20), (2, 4, 3, 18)]
        for src, trg, ts, exp in edges:
            push(op, src, trg, ts, exp)
        op.on_event(0, Event(SGT(2, 3, "l", Interval(1, 20)), DELETE))

        rebuilt = SPathOp(["l"], "l+", "P")
        wire(rebuilt)
        for src, trg, ts, exp in edges:
            if (src, trg) != (2, 3):
                push(rebuilt, src, trg, ts, exp)

        # Reachable-at-now sets agree after the deletion.
        now = 3
        left = {
            (root, key[0])
            for root, tree in op.index.trees.items()
            for key, node in tree.nodes.items()
            if op.dfa.is_accepting(key[1]) and node.exp > now
        }
        right = {
            (root, key[0])
            for root, tree in rebuilt.index.trees.items()
            for key, node in tree.nodes.items()
            if rebuilt.dfa.is_accepting(key[1]) and node.exp > now
        }
        assert left == right
