"""Unit tests for the negative-tuple RPQ operator, including the
Example 10 / Figure 9d behavioural contrast with S-PATH."""

from repro.core.intervals import Interval
from repro.core.tuples import SGT
from repro.dataflow.graph import DELETE, DataflowGraph, Event, SinkOp
from repro.physical.rpq_negative import NegativeTupleRpqOp
from repro.physical.spath import SPathOp


def wire(op):
    graph = DataflowGraph()
    graph.add(op)
    sink = SinkOp()
    graph.add(sink)
    graph.connect(op, sink, 0)
    return sink


def push(op, src, trg, ts, exp, port=0):
    op.on_event(port, Event(SGT(src, trg, op.labels[port], Interval(ts, exp))))


FIGURE9_EDGES = [
    ("x", "z", 23, 31),
    ("z", "u", 24, 32),
    ("x", "y", 25, 35),
    ("y", "w", 26, 33),
    ("z", "t", 27, 40),
    ("y", "u", 28, 37),
    ("u", "v", 29, 41),
    ("u", "s", 30, 38),
    ("w", "v", 30, 39),
]


class TestBasics:
    def test_single_edge(self):
        op = NegativeTupleRpqOp(["l"], "l+", "P")
        sink = wire(op)
        push(op, 1, 2, 0, 10)
        assert sink.coverage() == {(1, 2, "P"): [Interval(0, 10)]}

    def test_cycle(self):
        op = NegativeTupleRpqOp(["l"], "l+", "P")
        sink = wire(op)
        push(op, 1, 2, 0, 30)
        push(op, 2, 1, 1, 30)
        keys = set(sink.coverage())
        assert keys == {(i, j, "P") for i in (1, 2) for j in (1, 2)}


class TestExample10Contrast:
    """Figure 9c vs 9d: S-PATH propagates new derivations eagerly; the
    negative-tuple approach keeps the first derivation until it expires."""

    def _load(self, op):
        wire_sink = wire(op)
        for src, trg, ts, exp in FIGURE9_EDGES:
            push(op, src, trg, ts, exp)
        return wire_sink

    def test_first_derivation_kept(self):
        op = NegativeTupleRpqOp(["RL"], "RL+", "RLP")
        self._load(op)
        accept = next(iter(op.dfa.accepting))
        tree = op.index.tree("x")
        node_u = tree.get(("u", accept))
        # Figure 9d: u stays under z with the original interval [24, 31).
        assert node_u.parent == ("z", accept)
        assert node_u.exp == 31
        # Its children inherit the pessimistic expiry.
        assert tree.get(("v", accept)).exp == 31
        assert tree.get(("s", accept)).exp == 31

    def test_spath_differs(self):
        op = SPathOp(["RL"], "RL+", "RLP")
        self._load(op)
        accept = next(iter(op.dfa.accepting))
        assert op.index.tree("x").get(("u", accept)).exp == 35

    def test_rederivation_at_expiry(self):
        op = NegativeTupleRpqOp(["RL"], "RL+", "RLP")
        sink = self._load(op)
        # At t=31 the subtree under z expires; re-derivation finds the
        # alternative path via y (valid until 35).
        op.on_advance(31)
        accept = next(iter(op.dfa.accepting))
        tree = op.index.tree("x")
        node_u = tree.get(("u", accept))
        assert node_u is not None
        assert node_u.parent == ("y", accept)
        assert node_u.exp == 35
        # v survives through u as well.
        assert tree.get(("v", accept)).exp == 35
        # t has no alternative: removed.
        assert tree.get(("t", accept)) is None

    def test_coverage_matches_spath_after_expiry(self):
        neg = NegativeTupleRpqOp(["RL"], "RL+", "RLP")
        neg_sink = self._load(neg)
        neg.on_advance(31)
        spath = SPathOp(["RL"], "RL+", "RLP")
        spath_sink = self._load(spath)
        spath.on_advance(31)
        # Identical validity at every instant from 31 on.
        for t in range(31, 45):
            assert neg_sink.valid_at(t) == spath_sink.valid_at(t), t


class TestExplicitDeletes:
    def test_delete_with_alternative(self):
        op = NegativeTupleRpqOp(["l"], "l+", "P")
        sink = wire(op)
        push(op, 1, 2, 0, 10)
        push(op, 1, 3, 1, 20)
        push(op, 3, 2, 2, 20)
        op.on_event(0, Event(SGT(1, 2, "l", Interval(0, 10)), DELETE))
        coverage = sink.coverage()[(1, 2, "P")]
        assert any(iv.contains(15) for iv in coverage)

    def test_delete_without_alternative_retracts_future(self):
        op = NegativeTupleRpqOp(["l"], "l+", "P")
        sink = wire(op)
        push(op, 1, 2, 0, 10)
        push(op, 2, 3, 4, 12)
        op.on_event(0, Event(SGT(2, 3, "l", Interval(4, 12)), DELETE))
        coverage = sink.coverage()
        # (1,3) was valid only between insertion (4) and deletion (4): gone.
        assert (1, 3, "P") not in coverage
        assert coverage[(1, 2, "P")] == [Interval(0, 10)]
