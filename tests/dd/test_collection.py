"""Unit tests for weighted relations (DD collections)."""

from repro.dd.collection import WeightedRelation


class TestWeights:
    def test_insert_creates_fact(self):
        r = WeightedRelation("r")
        assert r.apply((1, 2), 1) == 1
        assert (1, 2) in r
        assert r.weight((1, 2)) == 1

    def test_second_derivation_no_distinct_change(self):
        r = WeightedRelation("r")
        r.apply((1, 2), 1)
        assert r.apply((1, 2), 1) == 0
        assert r.weight((1, 2)) == 2

    def test_remove_one_of_two_keeps_fact(self):
        r = WeightedRelation("r")
        r.apply((1, 2), 2)
        assert r.apply((1, 2), -1) == 0
        assert (1, 2) in r

    def test_remove_last_drops_fact(self):
        r = WeightedRelation("r")
        r.apply((1, 2), 1)
        assert r.apply((1, 2), -1) == -1
        assert (1, 2) not in r
        assert r.weight((1, 2)) == 0

    def test_zero_weight_noop(self):
        r = WeightedRelation("r")
        assert r.apply((1, 2), 0) == 0


class TestEpochDeltas:
    def test_plus_delta(self):
        r = WeightedRelation("r")
        r.apply((1, 2), 1)
        assert r.epoch_delta() == [((1, 2), 1)]

    def test_insert_then_delete_cancels(self):
        r = WeightedRelation("r")
        r.apply((1, 2), 1)
        r.apply((1, 2), -1)
        assert r.epoch_delta() == []

    def test_delete_of_preexisting_fact(self):
        r = WeightedRelation("r")
        r.apply((1, 2), 1)
        r.end_epoch()
        r.apply((1, 2), -1)
        assert r.epoch_delta() == [((1, 2), -1)]

    def test_delete_then_reinsert_cancels(self):
        r = WeightedRelation("r")
        r.apply((1, 2), 1)
        r.end_epoch()
        r.apply((1, 2), -1)
        r.apply((1, 2), 1)
        assert r.epoch_delta() == []

    def test_end_epoch_clears(self):
        r = WeightedRelation("r")
        r.apply((1, 2), 1)
        r.end_epoch()
        assert r.epoch_delta() == []


class TestVersionedViews:
    def test_new_match_by_src(self):
        r = WeightedRelation("r")
        r.apply((1, 2), 1)
        r.apply((1, 3), 1)
        r.apply((2, 3), 1)
        assert set(r.new_match(src=1)) == {(1, 2), (1, 3)}
        assert set(r.new_match(trg=3)) == {(1, 3), (2, 3)}
        assert set(r.new_match(src=1, trg=2)) == {(1, 2)}
        assert set(r.new_match()) == {(1, 2), (1, 3), (2, 3)}

    def test_old_match_excludes_epoch_inserts(self):
        r = WeightedRelation("r")
        r.apply((1, 2), 1)
        r.end_epoch()
        r.apply((1, 3), 1)
        assert set(r.old_match(src=1)) == {(1, 2)}
        assert set(r.new_match(src=1)) == {(1, 2), (1, 3)}

    def test_old_match_includes_epoch_deletes(self):
        r = WeightedRelation("r")
        r.apply((1, 2), 1)
        r.end_epoch()
        r.apply((1, 2), -1)
        assert set(r.old_match(src=1)) == {(1, 2)}
        assert set(r.new_match(src=1)) == set()
