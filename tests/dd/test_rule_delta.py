"""Unit tests for the counting delta-join (rule_delta)."""

from repro.dd.collection import WeightedRelation
from repro.dd.operators import rule_delta
from repro.query.datalog import Atom, ClosureAtom, Rule


def relations(**facts):
    out = {}
    for name, pairs in facts.items():
        relation = WeightedRelation(name)
        for pair in pairs:
            relation.apply(pair, 1)
        relation.end_epoch()
        out[name] = relation
    return out


RULE = Rule("H", "x", "z", (Atom("a", "x", "y"), Atom("b", "y", "z")))


class TestInsertDeltas:
    def test_delta_joins_against_existing(self):
        rels = relations(a=[(1, 2)], b=[(2, 3)], H=[])
        # New a-fact joins existing b-facts.
        rels["a"].apply((5, 2), 1)
        delta = rule_delta(RULE, rels, {"a": rels["a"].epoch_delta()})
        assert delta == [((5, 3), 1)]

    def test_both_sides_change_counted_once(self):
        rels = relations(a=[], b=[], H=[])
        rels["a"].apply((1, 2), 1)
        rels["b"].apply((2, 3), 1)
        deltas = {
            "a": rels["a"].epoch_delta(),
            "b": rels["b"].epoch_delta(),
        }
        delta = rule_delta(RULE, rels, deltas)
        # new⋈Δ + Δ⋈old: exactly one derivation of (1, 3).
        assert delta == [((1, 3), 1)]

    def test_no_delta_no_output(self):
        rels = relations(a=[(1, 2)], b=[(2, 3)], H=[])
        assert rule_delta(RULE, rels, {}) == []


class TestDeleteDeltas:
    def test_retraction_joins(self):
        rels = relations(a=[(1, 2)], b=[(2, 3)], H=[])
        rels["a"].apply((1, 2), -1)
        delta = rule_delta(RULE, rels, {"a": rels["a"].epoch_delta()})
        assert delta == [((1, 3), -1)]

    def test_insert_and_delete_ballance(self):
        rels = relations(a=[(1, 2)], b=[(2, 3)], H=[])
        rels["a"].apply((1, 2), -1)
        rels["a"].apply((7, 2), 1)
        delta = dict(rule_delta(RULE, rels, {"a": rels["a"].epoch_delta()}))
        assert delta == {(1, 3): -1, (7, 3): 1}


class TestAtomShapes:
    def test_repeated_variable_in_delta_atom(self):
        rule = Rule("H", "x", "x", (Atom("a", "x", "x"),))
        rels = relations(a=[], H=[])
        rels["a"].apply((1, 1), 1)
        rels["a"].apply((1, 2), 1)
        delta = rule_delta(rule, rels, {"a": rels["a"].epoch_delta()})
        assert delta == [((1, 1), 1)]

    def test_repeated_variable_in_probe_atom(self):
        rule = Rule("H", "x", "y", (Atom("a", "x", "y"), Atom("b", "y", "y")))
        rels = relations(a=[], b=[(2, 2), (3, 4)], H=[])
        rels["a"].apply((1, 2), 1)
        rels["a"].apply((1, 3), 1)
        delta = rule_delta(rule, rels, {"a": rels["a"].epoch_delta()})
        assert delta == [((1, 2), 1)]

    def test_closure_atom_reads_closure_relation(self):
        rule = Rule(
            "H", "x", "z", (ClosureAtom("a", "x", "y", "A"), Atom("b", "y", "z"))
        )
        rels = relations(A=[(1, 5)], b=[], H=[])
        rels["b"].apply((5, 9), 1)
        delta = rule_delta(rule, rels, {"b": rels["b"].epoch_delta()})
        assert delta == [((1, 9), 1)]

    def test_cartesian_when_no_shared_variable(self):
        rule = Rule("H", "x", "w", (Atom("a", "x", "y"), Atom("b", "z", "w")))
        rels = relations(a=[(1, 2)], b=[], H=[])
        rels["b"].apply((8, 9), 1)
        delta = rule_delta(rule, rels, {"b": rels["b"].epoch_delta()})
        assert delta == [((1, 9), 1)]

    def test_triangle_counts_witnesses(self):
        rule = Rule(
            "H",
            "x",
            "y",
            (Atom("a", "x", "y"), Atom("b", "x", "m"), Atom("c", "m", "y")),
        )
        rels = relations(a=[], b=[(1, 10), (1, 11)], c=[(10, 2), (11, 2)], H=[])
        rels["a"].apply((1, 2), 1)
        delta = rule_delta(rule, rels, {"a": rels["a"].epoch_delta()})
        # Two witnesses (through m=10 and m=11): weight accumulates twice.
        assert sorted(delta) == [((1, 2), 1), ((1, 2), 1)]
