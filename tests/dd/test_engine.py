"""Integration tests: the DD engine against reference Datalog evaluation.

The invariant (see the engine docstring): after the epoch at boundary B,
the Answer relation equals the one-time evaluation over the snapshot at
instant ``B + beta - 1``, for window sizes that are multiples of the
slide.
"""

import pytest

from repro.algebra.reference import evaluate_rq
from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from repro.dd import DDEngine
from repro.query.parser import parse_rq
from tests.conftest import make_stream

# This module deliberately exercises the deprecated facade shims; the
# suite-wide filter that escalates those DeprecationWarnings to errors
# (pyproject filterwarnings) is relaxed here.
pytestmark = pytest.mark.filterwarnings("default::DeprecationWarning")


PROGRAMS = {
    "tc": ("Answer(x,y) <- a+(x,y) as A.", ("a",)),
    "q2": (
        """
        Answer(x,y) <- a(x,y).
        Answer(x,y) <- a(x,z), b+(z,y) as B.
        """,
        ("a", "b"),
    ),
    "q4": (
        """
        D(x,t) <- a(x,y), b(y,z), c(z,t).
        Answer(x,y) <- D+(x,y) as DP.
        """,
        ("a", "b", "c"),
    ),
    "q5": (
        """
        RR(m1,m2) <- a(x,y), b(m1,x), b(m2,y), c(m2,m1).
        Answer(m1,m2) <- RR(m1,m2).
        """,
        ("a", "b", "c"),
    ),
    "q7": (
        """
        RL(x,y) <- a+(x,y) as AP, b(x,m), c(m,y).
        Answer(x,m) <- RL+(x,y) as RLP, c(m,y).
        """,
        ("a", "b", "c"),
    ),
}


def run_and_check(program_text, labels, window, seed, n=80):
    program = parse_rq(program_text)
    w = SlidingWindow(*window)
    engine = DDEngine(program, w)
    edges = make_stream(seed, n, 6, labels, max_gap=2)
    by_boundary: dict[int, list[SGE]] = {}
    for e in edges:
        by_boundary.setdefault(w.slide_boundary(e.t), []).append(e)
    seen: list[SGE] = []
    last = max(by_boundary)
    # Include trailing empty epochs so everything expires at the end.
    trailing = (w.size // w.slide) + 2
    boundaries = sorted(
        set(by_boundary) | {last + w.slide * k for k in range(1, trailing + 1)}
    )
    for boundary in boundaries:
        answer = engine.advance_epoch(boundary, by_boundary.get(boundary, []))
        seen.extend(by_boundary.get(boundary, []))
        instant = boundary + w.slide - 1
        edb: dict[str, set] = {}
        for e in seen:
            if w.interval_for(e.t).contains(instant):
                edb.setdefault(e.label, set()).add((e.src, e.trg))
        expected = evaluate_rq(program, edb)
        assert answer == expected, f"epoch {boundary}: {answer ^ expected}"
    return engine


@pytest.mark.parametrize("name", sorted(PROGRAMS))
@pytest.mark.parametrize("window", [(15, 1), (16, 4), (24, 8)])
def test_engine_matches_reference(name, window):
    text, labels = PROGRAMS[name]
    for seed in (1, 2):
        run_and_check(text, labels, window, seed)


def test_everything_expires_eventually():
    text, labels = PROGRAMS["tc"]
    engine = run_and_check(text, labels, (15, 1), seed=3)
    assert engine.answer() == set()
    assert engine.state_size() == 0


def test_run_produces_stats():
    program = parse_rq("Answer(x,y) <- a+(x,y) as A.")
    engine = DDEngine(program, SlidingWindow(16, 4))
    edges = make_stream(5, 60, 6, ("a",), max_gap=2)
    stats = engine.run(edges)
    assert stats.total_edges == 60
    assert stats.throughput > 0
    assert len(stats.epochs) >= 2
    assert stats.tail_latency() >= 0


def test_label_window_overrides():
    program = parse_rq("Answer(x,z) <- a(x,y), b(y,z).")
    engine = DDEngine(
        program,
        SlidingWindow(4, 1),
        label_windows={"b": SlidingWindow(40, 1)},
    )
    engine.advance_epoch(0, [SGE(1, 2, "a", 0), SGE(2, 3, "b", 0)])
    assert engine.answer() == {(1, 3)}
    engine.advance_epoch(4, [])
    # a expired at 4, b still alive.
    assert engine.answer() == set()
    assert (2, 3) in engine.relations["b"]


def test_unknown_labels_ignored():
    program = parse_rq("Answer(x,y) <- a(x,y).")
    engine = DDEngine(program, SlidingWindow(10))
    engine.advance_epoch(0, [SGE(1, 2, "zzz", 0)])
    assert engine.answer() == set()


def test_epoch_regression_rejected():
    from repro.errors import ExecutionError

    program = parse_rq("Answer(x,y) <- a(x,y).")
    engine = DDEngine(program, SlidingWindow(10))
    engine.advance_epoch(5, [])
    with pytest.raises(ExecutionError):
        engine.advance_epoch(4, [])


class TestAgainstSGAEngine:
    """The two engines must agree on the paper's workload queries."""

    @pytest.mark.parametrize("qname", ["Q1", "Q2", "Q4", "Q6", "Q7"])
    def test_agreement_on_workload(self, qname):
        from repro.engine import StreamingGraphQueryProcessor
        from repro.workloads import QUERIES

        labels = {"a": "a", "b": "b", "c": "c"}
        window = SlidingWindow(16, 4)
        query = QUERIES[qname]
        edges = make_stream(9, 70, 6, ("a", "b", "c"), max_gap=2)

        sga = StreamingGraphQueryProcessor.from_sgq(
            query.sgq(labels, window)
        )
        for e in edges:
            sga.push(e)

        program = parse_rq(query.datalog(labels))
        dd = DDEngine(program, window)
        by_boundary: dict[int, list[SGE]] = {}
        for e in edges:
            by_boundary.setdefault(window.slide_boundary(e.t), []).append(e)
        for boundary in sorted(by_boundary):
            answer = dd.advance_epoch(boundary, by_boundary[boundary])
            instant = boundary + window.slide - 1
            sga.advance_to(instant)
            sga_answer = {
                (u, v) for (u, v, _) in sga.valid_at(instant)
            }
            assert answer == sga_answer, f"boundary {boundary}"
