"""Unit and property tests for the DRed incremental closure."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dd.operators import IncrementalClosure, closure_from_scratch


def rebuild(closure: IncrementalClosure) -> set:
    return closure_from_scratch(closure._succ)


class TestInserts:
    def test_chain(self):
        c = IncrementalClosure("c")
        delta = c.apply_delta([((1, 2), 1)])
        assert delta == [((1, 2), 1)]
        delta = c.apply_delta([((2, 3), 1)])
        assert sorted(delta) == [((1, 3), 1), ((2, 3), 1)]
        assert c.pairs == {(1, 2), (2, 3), (1, 3)}

    def test_cycle(self):
        c = IncrementalClosure("c")
        c.apply_delta([((1, 2), 1), ((2, 1), 1)])
        assert c.pairs == {(1, 2), (2, 1), (1, 1), (2, 2)}

    def test_duplicate_insert_ignored(self):
        c = IncrementalClosure("c")
        c.apply_delta([((1, 2), 1)])
        assert c.apply_delta([((1, 2), 1)]) == []


class TestDeletes:
    def test_delete_breaks_reachability(self):
        c = IncrementalClosure("c")
        c.apply_delta([((1, 2), 1), ((2, 3), 1)])
        delta = c.apply_delta([((2, 3), -1)])
        assert sorted(delta) == [((1, 3), -1), ((2, 3), -1)]
        assert c.pairs == {(1, 2)}

    def test_delete_with_alternative_path(self):
        c = IncrementalClosure("c")
        c.apply_delta([((1, 2), 1), ((1, 3), 1), ((3, 2), 1)])
        delta = c.apply_delta([((1, 2), -1)])
        # (1, 2) still reachable through 3: DRed re-derives it.
        assert delta == []
        assert (1, 2) in c

    def test_delete_in_cycle(self):
        c = IncrementalClosure("c")
        c.apply_delta([((1, 2), 1), ((2, 3), 1), ((3, 1), 1)])
        c.apply_delta([((3, 1), -1)])
        assert c.pairs == {(1, 2), (2, 3), (1, 3)}

    def test_rederivation_counter_increases(self):
        c = IncrementalClosure("c")
        c.apply_delta([((i, i + 1), 1) for i in range(6)])
        before = c.rederivation_checks
        c.apply_delta([((2, 3), -1)])
        assert c.rederivation_checks > before

    def test_mixed_epoch(self):
        c = IncrementalClosure("c")
        c.apply_delta([((1, 2), 1), ((2, 3), 1)])
        delta = dict(c.apply_delta([((2, 3), -1), ((2, 4), 1)]))
        assert delta[(1, 3)] == -1
        assert delta[(2, 4)] == 1
        assert delta[(1, 4)] == 1


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["ins", "del"]),
            st.integers(0, 5),
            st.integers(0, 5),
        ),
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_closure_matches_rebuild_hypothesis(ops):
    """After any operation sequence, the incremental closure equals a
    from-scratch recomputation (applied one epoch per op)."""
    c = IncrementalClosure("c")
    present: set = set()
    for kind, u, v in ops:
        if kind == "ins" and (u, v) not in present:
            present.add((u, v))
            c.apply_delta([((u, v), 1)])
        elif kind == "del" and (u, v) in present:
            present.discard((u, v))
            c.apply_delta([((u, v), -1)])
        assert c.pairs == rebuild(c)


def test_closure_matches_rebuild_batched():
    """Batched epochs (several inserts + deletes at once)."""
    rng = random.Random(7)
    c = IncrementalClosure("c")
    present: set = set()
    for _ in range(30):
        batch = []
        for _ in range(rng.randint(1, 6)):
            u, v = rng.randrange(6), rng.randrange(6)
            if rng.random() < 0.6 and (u, v) not in present:
                present.add((u, v))
                batch.append(((u, v), 1))
            elif (u, v) in present:
                present.discard((u, v))
                batch.append(((u, v), -1))
        c.apply_delta(batch)
        assert c.pairs == rebuild(c)
