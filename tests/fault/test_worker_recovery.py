"""Supervised shard-worker recovery under injected faults.

The contract: with a ``checkpoint_policy`` on the process transport, a
crashed shard worker (SIGKILL, torn pipe, or an exception inside the
command loop) is respawned, restored from the latest in-memory
snapshot, and the post-snapshot replay log is re-driven — so the
engine's results, coverage and ``valid_at`` surfaces are **identical**
to a run that never crashed.  Without a policy the crash surfaces as a
typed :class:`~repro.errors.WorkerCrashError` naming the shard and the
in-flight command, and the pool is poisoned.
"""

import os
import signal
import time

import pytest

from repro.bench.experiments import Scale, _stream
from repro.core.windows import HOUR
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.errors import ExecutionError, RecoveryError, WorkerCrashError
from repro.fault import CheckpointPolicy, FaultPlan, RetryPolicy
from repro.workloads import QUERIES, labels_for

SCALE = Scale(n_edges=240, n_vertices=40, window=6 * HOUR, slide=HOUR)

#: fast recovery backoff so budget-exhaustion drills stay quick
FAST_RETRY = RetryPolicy(max_restarts=3, backoff_base=0.01, backoff_max=0.05)


def _supervised_config(**overrides) -> EngineConfig:
    policy = overrides.pop(
        "checkpoint_policy",
        CheckpointPolicy(every_slides=4, retry=FAST_RETRY),
    )
    return EngineConfig(
        shards=2,
        shard_transport="process",
        checkpoint_policy=policy,
        **overrides,
    )


@pytest.fixture(scope="module")
def stream():
    return _stream("snb", SCALE)


def _plan(query_name="Q1"):
    return QUERIES[query_name].plan(
        labels_for(query_name, "snb"), SCALE.sliding_window()
    )


def _epoch_instants(stream):
    slide = SCALE.sliding_window().slide
    boundaries = sorted({(e.t // slide) * slide for e in stream})
    return [b + slide - 1 for b in boundaries]


def _surfaces(handle, stream):
    # Process-transport engines have no push callbacks; the raw event
    # stream is read back from the workers instead.
    return {
        "events": handle._events(),
        "results": handle.results(),
        "coverage": {k: tuple(v) for k, v in handle.coverage().items()},
        "valid_at": [handle.valid_at(t) for t in _epoch_instants(stream)],
    }


def _run(config, stream, fault_plan=None):
    engine = StreamingGraphEngine(config)
    if fault_plan is not None:
        engine.inject_faults(fault_plan)
    handle = engine.register(_plan(), name="q")
    engine.push_many(stream)
    surfaces = _surfaces(handle, stream)
    recoveries = engine.recoveries
    engine.close()
    return surfaces, recoveries


@pytest.fixture(scope="module")
def reference(stream):
    return _run(_supervised_config(), stream)


class TestSupervisedRecovery:
    @pytest.mark.parametrize("fault", ["kill", "tear", "raise"])
    def test_crashed_worker_recovers_bit_identical(
        self, stream, reference, fault
    ):
        plan = FaultPlan()
        if fault == "kill":
            plan.kill_worker(shard=1, at_command=5)
        elif fault == "tear":
            plan.tear_pipe(shard=1, at_command=5)
        else:
            plan.crash_worker(shard=1, at_command=5)
        surfaces, recoveries = _run(
            _supervised_config(), stream, fault_plan=plan
        )
        ref_surfaces, _ = reference
        assert recoveries >= 1
        assert surfaces == ref_surfaces

    def test_crash_late_in_stream_replays_from_snapshot(
        self, stream, reference
    ):
        # By command 15 (near the end of this stream's ~14 slides, past
        # the every-4-slides cadence) at least one snapshot has been
        # taken, so this recovery exercises restore + replay-log
        # re-drive, not a full from-scratch replay.
        plan = FaultPlan().kill_worker(shard=0, at_command=15)
        surfaces, recoveries = _run(
            _supervised_config(), stream, fault_plan=plan
        )
        ref_surfaces, _ = reference
        assert recoveries == 1
        assert surfaces == ref_surfaces

    def test_retry_budget_exhaustion_raises_recovery_error(self, stream):
        plan = FaultPlan().kill_worker(at_command=3, every_generation=True)
        retry = RetryPolicy(max_restarts=2, backoff_base=0.01, backoff_max=0.02)
        config = _supervised_config(
            checkpoint_policy=CheckpointPolicy(every_slides=4, retry=retry)
        )
        engine = StreamingGraphEngine(config)
        engine.inject_faults(plan)
        engine.register(_plan(), name="q")
        with pytest.raises(RecoveryError, match="after 2 attempt"):
            engine.push_many(stream)
        # The pool is poisoned: every later call fails fast and typed.
        with pytest.raises(ExecutionError):
            engine.push_many(stream)
        engine.close()

    def test_heartbeat_recovers_externally_killed_worker(
        self, stream, reference
    ):
        cut = len(stream) // 2
        engine = StreamingGraphEngine(_supervised_config())
        handle = engine.register(_plan(), name="q")
        engine.push_many(stream[:cut])
        victim = engine._sharded._workers[1][1]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5)
        assert engine.heartbeat(timeout=2.0) == [True, True]
        assert engine.recoveries == 1
        engine.push_many(stream[cut:])
        surfaces = _surfaces(handle, stream)
        engine.close()
        ref_surfaces, _ = reference
        assert surfaces == ref_surfaces

    def test_read_path_recovers_after_external_kill(self, stream):
        engine = StreamingGraphEngine(_supervised_config())
        engine.register(_plan(), name="q")
        engine.push_many(stream)
        before = engine.state_breakdown()
        victim = engine._sharded._workers[0][1]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5)
        # The read request notices the dead worker and recovers inline.
        assert engine.state_breakdown() == before
        assert engine.recoveries == 1
        engine.close()


class TestUnsupervisedCrashSurface:
    def test_crash_is_typed_with_shard_and_command(self, stream):
        config = EngineConfig(shards=2, shard_transport="process")
        engine = StreamingGraphEngine(config)
        engine.inject_faults(FaultPlan().crash_worker(shard=1, at_command=4))
        engine.register(_plan(), name="q")
        with pytest.raises(WorkerCrashError) as excinfo:
            engine.push_many(stream)
        crash = excinfo.value
        assert crash.shard == 1
        assert crash.command == "apply"
        assert "InjectedFault" in (crash.traceback_text or "")
        assert "worker traceback" in str(crash)
        # Poisoned: the pool is gone, later calls fail typed and fast.
        with pytest.raises(ExecutionError, match="fresh engine"):
            engine.push_many(stream)
        engine.close()

    def test_kill_is_typed_without_supervision(self, stream):
        config = EngineConfig(shards=2, shard_transport="process")
        engine = StreamingGraphEngine(config)
        engine.inject_faults(FaultPlan().kill_worker(shard=0, at_command=4))
        engine.register(_plan(), name="q")
        with pytest.raises(WorkerCrashError):
            engine.push_many(stream)
        engine.close()


class TestShutdownEscalation:
    def test_hung_worker_is_terminated_then_killed(self, stream):
        engine = StreamingGraphEngine(_supervised_config())
        engine.inject_faults(FaultPlan().hang_worker(shard=1, command="stop"))
        engine.register(_plan(), name="q")
        engine.push_many(stream[:40])
        runtime = engine._sharded
        runtime._join_timeout = 0.3
        workers = [process for _, process in runtime._workers]
        start = time.monotonic()
        engine.close()
        # Escalation: stop -> join timeout -> terminate -> kill; the
        # wedged worker cannot stall shutdown longer than a few grace
        # periods.
        assert time.monotonic() - start < 5.0
        for process in workers:
            process.join(timeout=5)
            assert not process.is_alive()
