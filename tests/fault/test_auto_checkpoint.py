"""Engine-level periodic checkpointing (`enable_auto_checkpoint`).

The in-process counterpart of the server's periodic checkpoints: once
armed with a store and a :class:`CheckpointPolicy`, the engine
snapshots itself at watermark-slide cadence as ingest calls complete —
call-boundary granularity — and each auto checkpoint is a full restore
point.
"""

import pytest

from repro.checkpoint import DirectoryCheckpointStore
from repro.core import SGE
from repro.core.windows import SlidingWindow
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.fault import CheckpointPolicy
from repro.query.sgq import SGQ

WINDOW, SLIDE = 24, 4


def _query():
    return SGQ.from_text(
        "Answer(x, y) <- k+(x, y) as K.", SlidingWindow(WINDOW, SLIDE)
    )


def _edges(n):
    return [SGE(i, i + 1, "k", i * 2) for i in range(n)]


class TestAutoCheckpoint:
    def test_cadence_over_chunked_ingest(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        engine = StreamingGraphEngine(EngineConfig())
        engine.register(_query(), name="q")
        engine.enable_auto_checkpoint(
            store, CheckpointPolicy(every_slides=2)
        )
        edges = _edges(40)  # t spans 0..78 -> ~20 slides
        for i in range(0, len(edges), 4):
            engine.push_many(edges[i : i + 4])
        assert engine.auto_checkpoint_count >= 4
        assert engine.last_auto_checkpoint_id in store.list()
        watermark = engine.watermark
        engine.close()

        restored = StreamingGraphEngine.restore(store)
        # The last auto checkpoint is at most one cadence behind.
        assert restored.watermark >= watermark - 2 * SLIDE
        assert restored.handle("q").results()
        restored.close()

    def test_policy_defaults_from_config(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        config = EngineConfig(
            checkpoint_policy=CheckpointPolicy(every_slides=1)
        )
        engine = StreamingGraphEngine(config)
        engine.register(_query(), name="q")
        engine.enable_auto_checkpoint(store)  # policy from the config
        for i in range(0, 16, 4):
            engine.push_many(_edges(16)[i : i + 4])
        assert engine.auto_checkpoint_count >= 1
        engine.close()

    def test_enable_requires_a_policy(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        engine = StreamingGraphEngine(EngineConfig())
        with pytest.raises(ValueError):
            engine.enable_auto_checkpoint(store)
        engine.close()

    def test_disarm_stops_checkpointing(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        engine = StreamingGraphEngine(EngineConfig())
        engine.register(_query(), name="q")
        engine.enable_auto_checkpoint(store, CheckpointPolicy(every_slides=1))
        edges = _edges(40)
        for i in range(0, 20, 4):
            engine.push_many(edges[i : i + 4])
        taken = engine.auto_checkpoint_count
        assert taken >= 1
        engine.enable_auto_checkpoint(None)
        for i in range(20, 40, 4):
            engine.push_many(edges[i : i + 4])
        assert engine.auto_checkpoint_count == taken
        engine.close()


class TestPolicyConfigRoundTrip:
    def test_checkpoint_policy_round_trips_through_restore(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        policy = CheckpointPolicy(every_slides=3, every_seconds=60.0)
        engine = StreamingGraphEngine(
            EngineConfig(checkpoint_policy=policy)
        )
        engine.register(_query(), name="q")
        engine.push_many(_edges(12))
        engine.checkpoint(store)
        engine.close()

        restored = StreamingGraphEngine.restore(store)
        assert restored.config.checkpoint_policy == policy
        restored.close()

    def test_config_coerces_policy_dicts(self):
        config = EngineConfig(
            checkpoint_policy={"every_slides": 2, "replay_bound": 64}
        )
        assert isinstance(config.checkpoint_policy, CheckpointPolicy)
        assert config.checkpoint_policy.every_slides == 2
        assert config.checkpoint_policy.replay_bound == 64

    def test_config_rejects_other_types(self):
        with pytest.raises(ValueError):
            EngineConfig(checkpoint_policy=42)
