"""Checkpoint-store fault injection: fsync and rename failures.

The atomicity contract under fault: a commit that fails at the
manifest fsync or the atomic rename leaves the store exactly as it
was — every previously committed checkpoint intact and readable, no
partial checkpoint visible, staging cleaned up — and surfaces as a
typed :class:`~repro.errors.CheckpointError`.
"""

import os

import pytest

from repro.checkpoint import DirectoryCheckpointStore
from repro.errors import CheckpointError
from repro.fault import FaultPlan


def _commit_one(store, payload):
    writer = store.begin()
    writer.put("state", payload)
    writer.set_meta(kind="engine")
    return writer.commit()


class TestStoreFaults:
    @pytest.mark.parametrize("site", ["fsync", "commit"])
    def test_failed_commit_leaves_previous_checkpoint_intact(
        self, tmp_path, site
    ):
        plan = (
            FaultPlan().fail_fsync(at=1)
            if site == "fsync"
            else FaultPlan().fail_commit(at=1)
        )
        # A good checkpoint first, with no faults armed yet.
        store = DirectoryCheckpointStore(str(tmp_path), fault_plan=None)
        first = _commit_one(store, {"epoch": 1})

        store.fault_plan = plan
        writer = store.begin()
        writer.put("state", {"epoch": 2})
        writer.set_meta(kind="engine")
        with pytest.raises(CheckpointError, match="failed to commit"):
            writer.commit()

        # Only the first checkpoint is visible; it still verifies.
        assert store.list() == [first]
        assert store.open().get("state") == {"epoch": 1}
        # The staging directory was removed.
        assert [
            entry
            for entry in os.listdir(str(tmp_path))
            if entry.startswith(".staging")
        ] == []

    def test_commit_succeeds_once_fault_is_spent(self, tmp_path):
        plan = FaultPlan().fail_commit(at=1)
        store = DirectoryCheckpointStore(str(tmp_path), fault_plan=plan)
        writer = store.begin()
        writer.put("state", {"epoch": 1})
        with pytest.raises(CheckpointError):
            writer.commit()
        # The next attempt (fault consumed) commits normally.
        second = _commit_one(store, {"epoch": 2})
        assert store.list() == [second]
        assert store.open(second).get("state") == {"epoch": 2}

    def test_failed_writer_is_spent(self, tmp_path):
        plan = FaultPlan().fail_fsync(at=1)
        store = DirectoryCheckpointStore(str(tmp_path), fault_plan=plan)
        writer = store.begin()
        writer.put("state", {})
        with pytest.raises(CheckpointError):
            writer.commit()
        # The writer aborted itself; a retry on the same writer is a
        # clear error, not a silent half-commit.
        with pytest.raises(CheckpointError, match="already committed"):
            writer.commit()
