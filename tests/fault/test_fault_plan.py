"""FaultPlan semantics: arming, matching, counting, firing, pickling."""

import pickle

import pytest

from repro.fault import (
    FAULT_ACTIONS,
    FAULT_SITES,
    CheckpointPolicy,
    FaultPlan,
    RetryPolicy,
)


class TestArming:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan().arm("worker.commnad")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultPlan().arm("worker.command", "explode")

    def test_worker_only_actions_rejected_elsewhere(self):
        for action in ("kill", "tear", "hang"):
            with pytest.raises(ValueError, match="only applies"):
                FaultPlan().arm("store.fsync", action)

    def test_at_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan().arm("callback", at=0)

    def test_arm_methods_chain(self):
        plan = (
            FaultPlan()
            .kill_worker(shard=1, at_command=3)
            .fail_fsync()
            .raise_in_callback(query="q2")
        )
        assert len(plan._armed) == 3

    def test_site_and_action_registries_cover_arm_helpers(self):
        assert set(FAULT_ACTIONS) == {"raise", "kill", "tear", "hang"}
        assert "worker.command" in FAULT_SITES
        assert "serve.ingest" in FAULT_SITES


class TestFiring:
    def test_fires_on_nth_matching_occurrence_only(self):
        plan = FaultPlan().arm("callback", at=3)
        assert plan.fire("callback") is None
        assert plan.fire("callback") is None
        assert plan.fire("callback") == "raise"
        assert plan.fire("callback") is None
        assert plan.fired("callback") == 1

    def test_repeat_fires_from_nth_onward(self):
        plan = FaultPlan().arm("callback", at=2, repeat=True)
        fires = [plan.fire("callback") for _ in range(4)]
        assert fires == [None, "raise", "raise", "raise"]

    def test_match_filters_on_context(self):
        plan = FaultPlan().kill_worker(shard=1, at_command=2)
        # Shard 0 occurrences never count toward shard 1's fault.
        for _ in range(5):
            assert plan.fire("worker.command", shard=0, generation=0) is None
        assert plan.fire("worker.command", shard=1, generation=0) is None
        assert plan.fire("worker.command", shard=1, generation=0) == "kill"

    def test_none_match_values_match_anything(self):
        plan = FaultPlan().raise_in_callback(tenant=None, query=None)
        assert plan.fire("callback", tenant="t", query="q") == "raise"

    def test_worker_faults_gate_on_generation_zero(self):
        plan = FaultPlan().kill_worker(at_command=1)
        # The respawned worker (generation 1) never re-fires the fault.
        assert plan.fire("worker.command", shard=0, generation=1) is None
        assert plan.fire("worker.command", shard=0, generation=0) == "kill"

    def test_every_generation_ignores_generation(self):
        plan = FaultPlan().kill_worker(at_command=1, every_generation=True)
        assert plan.fire("worker.command", shard=0, generation=3) == "kill"
        assert plan.fire("worker.command", shard=0, generation=4) == "kill"

    def test_occurrences_counts_per_site(self):
        plan = FaultPlan().arm("serve.ingest", at=10)
        for _ in range(4):
            plan.fire("serve.ingest")
        assert plan.occurrences("serve.ingest") == 4
        assert plan.occurrences("callback") == 0


class TestPickling:
    def test_round_trip_preserves_armed_faults(self):
        plan = FaultPlan().tear_pipe(shard=1, at_command=7)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.fire("worker.command", shard=0, generation=0) is None
        for _ in range(6):
            assert clone.fire("worker.command", shard=1, generation=0) is None
        assert clone.fire("worker.command", shard=1, generation=0) == "tear"

    def test_counters_are_per_copy(self):
        plan = FaultPlan().arm("callback", at=1)
        clone = pickle.loads(pickle.dumps(plan))
        assert plan.fire("callback") == "raise"
        # The clone's counter did not advance with the original's.
        assert clone.fire("callback") == "raise"


class TestPolicies:
    def test_checkpoint_policy_needs_a_cadence(self):
        with pytest.raises(ValueError, match="every_slides and/or"):
            CheckpointPolicy()

    def test_cadence_bounds(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(every_slides=0)
        with pytest.raises(ValueError):
            CheckpointPolicy(every_seconds=0.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(every_slides=2, replay_bound=0)

    def test_due_fires_on_either_trigger(self):
        policy = CheckpointPolicy(every_slides=4, every_seconds=30.0)
        assert not policy.due(slides_since=3, seconds_since=1.0)
        assert policy.due(slides_since=4, seconds_since=1.0)
        assert policy.due(slides_since=0, seconds_since=31.0)

    def test_retry_coerces_from_dict(self):
        policy = CheckpointPolicy(
            every_slides=2, retry={"max_restarts": 5}
        )
        assert isinstance(policy.retry, RetryPolicy)
        assert policy.retry.max_restarts == 5

    def test_retry_backoff_is_exponential_and_capped(self):
        retry = RetryPolicy(
            max_restarts=6, backoff_base=0.1, backoff_factor=2.0,
            backoff_max=0.3,
        )
        assert retry.delay(1) == 0.0
        assert retry.delay(2) == pytest.approx(0.1)
        assert retry.delay(3) == pytest.approx(0.2)
        assert retry.delay(4) == pytest.approx(0.3)
        assert retry.delay(6) == pytest.approx(0.3)
