"""Golden crash-recovery parity: every workload query, both datasets.

The strongest claim the fault-tolerance layer makes: a shard worker
SIGKILLed mid-stream under supervision leaves **no trace** — raw event
stream, ``results()``, ``coverage()`` and every ``valid_at`` surface
are identical to a run that never crashed.  This pins that claim for
Q1–Q7 on both benchmark datasets, the same grid the sharding and
restore golden suites use.
"""

import pytest

from repro.bench.experiments import Scale, _stream
from repro.core.windows import HOUR
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.fault import CheckpointPolicy, FaultPlan, RetryPolicy
from repro.workloads import QUERIES, labels_for

ALL = ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7"]
SCALE = Scale(n_edges=240, n_vertices=40, window=6 * HOUR, slide=HOUR)

CONFIG = EngineConfig(
    shards=2,
    shard_transport="process",
    checkpoint_policy=CheckpointPolicy(
        every_slides=4,
        retry=RetryPolicy(max_restarts=3, backoff_base=0.01, backoff_max=0.05),
    ),
)


@pytest.fixture(scope="module")
def streams():
    return {ds: _stream(ds, SCALE) for ds in ("so", "snb")}


def _epoch_instants(stream):
    slide = SCALE.sliding_window().slide
    boundaries = sorted({(e.t // slide) * slide for e in stream})
    return [b + slide - 1 for b in boundaries]


def _plan(query_name, dataset):
    return QUERIES[query_name].plan(
        labels_for(query_name, dataset), SCALE.sliding_window()
    )


def _run(plan, stream, fault_plan=None):
    engine = StreamingGraphEngine(CONFIG)
    if fault_plan is not None:
        engine.inject_faults(fault_plan)
    handle = engine.register(plan, name="q")
    engine.push_many(stream)
    surfaces = {
        "events": handle._events(),
        "results": handle.results(),
        "coverage": {k: tuple(v) for k, v in handle.coverage().items()},
        "valid_at": [handle.valid_at(t) for t in _epoch_instants(stream)],
    }
    recoveries = engine.recoveries
    engine.close()
    return surfaces, recoveries


class TestCrashRecoveryGolden:
    @pytest.mark.parametrize("dataset", ["so", "snb"])
    @pytest.mark.parametrize("query_name", ALL)
    def test_sigkill_mid_stream_is_bit_identical(
        self, streams, dataset, query_name
    ):
        stream = streams[dataset]
        plan = _plan(query_name, dataset)
        ref, _ = _run(plan, stream)
        # Command 7 lands mid-stream for every query/dataset cell (each
        # worker sees ~15+ commands on this stream).
        fault = FaultPlan().kill_worker(shard=1, at_command=7)
        got, recoveries = _run(plan, stream, fault_plan=fault)
        assert recoveries == 1
        assert got == ref
