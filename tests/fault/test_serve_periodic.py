"""Periodic server checkpoints + crash-resume through the serve layer.

The server-level recovery drill: a server taking policy-cadence
checkpoints is abandoned mid-stream (the SIGKILL stand-in — no drain,
no final checkpoint), a fresh server restores from the latest periodic
checkpoint, the client re-drives the post-checkpoint edge suffix and
reconnects with ``?last_seq=N&ahead=wait`` — and observes exactly the
uninterrupted event stream: no gaps, no duplicates, sequence numbers
continuous across the crash.
"""

import asyncio
import json

from repro.checkpoint import DirectoryCheckpointStore
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.fault import CheckpointPolicy
from repro.ql.query import Query
from repro.serve.app import GraphStreamServer
from repro.serve.protocol import dumps, encode_event
from repro.serve.tenants import ServerLimits, TenantManager
from tests.conftest import make_stream
from tests.serve.test_server import (
    LIKES,
    SLIDE,
    WINDOW,
    SseStream,
    call,
    edge_dicts,
    register,
)


def run(coro):
    return asyncio.run(coro)


def _reference(batches):
    """Encoded event stream of an uninterrupted engine ingesting the
    same batches."""
    engine = StreamingGraphEngine(EngineConfig())
    got, seq = [], [0]

    def cb(event):
        seq[0] += 1
        got.append(dumps(encode_event(seq[0], event)))

    engine.register(
        Query.datalog(LIKES, window=WINDOW, slide=SLIDE), on_result=cb
    )
    for batch in batches:
        engine.push_many(batch)
    engine.close()
    return got


class TestPeriodicCheckpoints:
    def test_policy_cadence_checkpoints_during_ingest(self, tmp_path):
        async def go():
            store = DirectoryCheckpointStore(str(tmp_path))
            manager = TenantManager(
                ServerLimits(),
                EngineConfig(),
                checkpoint_store=store,
                checkpoint_policy=CheckpointPolicy(every_slides=4),
            )
            server = GraphStreamServer(port=0, manager=manager)
            await server.start()
            p = server.port
            await register(p, "a", "q")
            edges = make_stream(31, 48, 10, ("likes",), max_gap=2)
            for i in range(0, len(edges), 8):
                await call(
                    p,
                    "POST",
                    "/tenants/a/ingest",
                    {"edges": edge_dicts(edges[i : i + 8])},
                )
            status, metrics, _ = await call(p, "GET", "/metrics")
            assert status == 200
            assert metrics["checkpoints"]["count"] >= 2
            assert metrics["checkpoints"]["failures"] == 0
            assert metrics["checkpoints"]["last_id"] in store.list()
            # The periodic checkpoint is a normal server checkpoint.
            reader = store.open(metrics["checkpoints"]["last_id"])
            assert reader.meta["kind"] == "server"
            assert reader.meta["trigger"] == "policy"
            await server.shutdown()

        run(go())

    def test_crash_resume_from_periodic_checkpoint(self, tmp_path):
        async def go():
            store = DirectoryCheckpointStore(str(tmp_path))
            manager = TenantManager(
                ServerLimits(),
                EngineConfig(),
                checkpoint_store=store,
                checkpoint_policy=CheckpointPolicy(every_slides=4),
            )
            server = GraphStreamServer(port=0, manager=manager)
            await server.start()
            p = server.port
            await register(p, "a", "q")

            edges = make_stream(32, 60, 10, ("likes",), max_gap=2)
            crash_at = (2 * len(edges)) // 3
            pre_batches = [
                edges[i : i + 8] for i in range(0, crash_at, 8)
            ]

            sse1 = SseStream(p, "a", "q").start()
            await sse1.ready.wait()
            for batch in pre_batches:
                await call(
                    p, "POST", "/tenants/a/ingest",
                    {"edges": edge_dicts(batch)},
                )
            await asyncio.sleep(0.15)
            status, metrics, _ = await call(p, "GET", "/metrics")
            assert metrics["checkpoints"]["count"] >= 1
            seen = len(sse1.events)  # the client's resume position
            assert seen > 0
            # Crash: the server is abandoned — no drain, no final
            # checkpoint.  Only the periodic checkpoint survives.

            restored = TenantManager.restore(
                store,
                checkpoint_store=store,
                checkpoint_policy=CheckpointPolicy(every_slides=4),
            )
            revived = GraphStreamServer(port=0, manager=restored)
            await revived.start()
            p2 = revived.port
            status, metrics2, _ = await call(p2, "GET", "/metrics")
            ingested = metrics2["tenants"]["a"]["ingested_total"]
            assert 0 < ingested <= crash_at

            # Reconnect ahead of the restored stream head: the client
            # has seen more events than the checkpoint retained.
            sse2 = SseStream(
                p2, "a", "q", params=f"?last_seq={seen}&ahead=wait"
            ).start()
            await sse2.ready.wait()
            # Re-drive everything past the checkpoint, plus new edges.
            await call(
                p2,
                "POST",
                "/tenants/a/ingest",
                {"edges": edge_dicts(edges[ingested:])},
            )
            await asyncio.sleep(0.2)

            reference = _reference(pre_batches + [edges[crash_at:]])
            combined = sse1.events + sse2.events
            assert combined == reference
            seqs = [json.loads(m)["seq"] for m in combined]
            assert seqs == list(range(1, len(reference) + 1))
            await revived.shutdown()
            await server.shutdown()  # cleanup of the "crashed" server

        run(go())

    def test_ahead_requires_wait_or_error(self, tmp_path):
        async def go():
            server = GraphStreamServer(port=0)
            await server.start()
            p = server.port
            await register(p, "a", "q")
            status, body, _ = await call(
                p, "GET", "/tenants/a/queries/q/subscribe?ahead=maybe"
            )
            assert status == 400
            assert "ahead" in body["error"]
            # Default stays strict: resuming past the head is a 409.
            status, body, _ = await call(
                p, "GET", "/tenants/a/queries/q/subscribe?last_seq=99"
            )
            assert status == 409
            await server.shutdown()

        run(go())
