"""Tenant worker-thread supervision and query quarantine.

The serve-layer half of fault tolerance: a crashed tenant command loop
restarts in place (bounded budget, typed failures, FIFO preserved), a
raising query callback quarantines that one query while the rest of
the tenant keeps streaming, and the ingest fault site surfaces as a
normal failed request rather than a wedged worker.
"""

import asyncio

import pytest

from repro.checkpoint import DirectoryCheckpointStore
from repro.core import SGE
from repro.engine.session import EngineConfig
from repro.errors import ServeError
from repro.fault import FaultPlan
from repro.serve.protocol import RegisterSpec
from repro.serve.subscriptions import SubscriberQueue
from repro.serve.tenants import AdmissionError, ServerLimits, TenantManager

HOUR = 3600
WINDOW = 6 * HOUR


def _spec(name):
    return RegisterSpec(text="knows", window=WINDOW, slide=HOUR, name=name)


def _edge(i):
    return SGE(i, i + 1, "knows", i * HOUR)


def _manager(fault_plan=None, **limit_overrides):
    limits = ServerLimits(**limit_overrides)
    return TenantManager(limits, EngineConfig(), fault_plan=fault_plan)


class TestWorkerSupervision:
    def test_loop_crash_restarts_in_place(self):
        async def scenario():
            plan = FaultPlan().crash_tenant_loop(tenant="t", at_command=3)
            manager = _manager(plan)
            tenant = manager.get_or_create("t")
            await tenant.call(lambda: tenant.register(_spec("q")))
            await tenant.call(lambda: tenant.ingest([_edge(0)]))
            # The third command hits the injected crash: only it fails.
            with pytest.raises(ServeError, match="worker crashed"):
                await tenant.call(lambda: tenant.ingest([_edge(1)]))
            # The restarted loop serves the next command normally.
            result = await tenant.call(lambda: tenant.ingest([_edge(2)]))
            assert result["ingested"] == 1
            assert tenant.worker_restarts == 1
            await manager.drain_all()

        asyncio.run(scenario())

    def test_budget_exhaustion_fails_fast(self):
        async def scenario():
            plan = FaultPlan().crash_tenant_loop(
                tenant="t", at_command=1, repeat=True
            )
            manager = _manager(plan, max_worker_restarts=2)
            tenant = manager.get_or_create("t")
            for _ in range(3):
                with pytest.raises(ServeError):
                    await tenant.call(lambda: tenant.ingest([_edge(0)]))
            assert tenant.worker_restarts == 3  # 2 in budget + the fatal one
            # Dead tenant: submit raises immediately, nothing queues.
            with pytest.raises(ServeError, match="dead"):
                tenant.submit(lambda: None)
            # Drain still completes (nothing to hand a dead worker).
            await manager.drain_all()

        asyncio.run(scenario())

    def test_draining_still_wins_over_liveness(self):
        async def scenario():
            manager = _manager()
            tenant = manager.get_or_create("t")
            await manager.drain_all()
            with pytest.raises(AdmissionError, match="draining"):
                tenant.submit(lambda: None)

        asyncio.run(scenario())


class TestQuarantine:
    def test_failing_callback_quarantines_one_query(self):
        async def scenario():
            plan = FaultPlan().raise_in_callback(
                tenant="t", query="bad", at_event=2
            )
            manager = _manager(plan)
            tenant = manager.get_or_create("t")
            await tenant.call(lambda: tenant.register(_spec("bad")))
            await tenant.call(lambda: tenant.register(_spec("good")))
            loop = asyncio.get_running_loop()
            sub = SubscriberQueue(loop, maxsize=64, policy="block")
            tenant.channels["bad"].attach(sub)
            for i in range(6):
                await tenant.call(lambda e=[_edge(i)]: tenant.ingest(e))
            bad, good = tenant.channels["bad"], tenant.channels["good"]
            assert bad.quarantined
            assert "InjectedFault" in bad.quarantine_reason
            # The sibling query kept delivering; the tenant never
            # crashed.
            assert not good.quarantined
            assert good.seq == 6
            assert tenant.worker_restarts == 0
            # Existing subscribers got a typed close, new ones are
            # refused.
            assert "quarantined" in sub.close_reason
            with pytest.raises(ServeError, match="quarantined"):
                bad.attach(SubscriberQueue(loop, maxsize=8, policy="block"))
            await manager.drain_all()

        asyncio.run(scenario())

    def test_quarantine_survives_checkpoint_restore(self, tmp_path):
        async def scenario():
            plan = FaultPlan().raise_in_callback(
                tenant="t", query="bad", at_event=1
            )
            manager = _manager(plan)
            tenant = manager.get_or_create("t")
            await tenant.call(lambda: tenant.register(_spec("bad")))
            for i in range(3):
                await tenant.call(lambda e=[_edge(i)]: tenant.ingest(e))
            assert tenant.channels["bad"].quarantined
            store = DirectoryCheckpointStore(str(tmp_path))
            await manager.drain_all(store)

            restored = TenantManager.restore(store)
            channel = restored.get("t").channels["bad"]
            assert channel.quarantined
            assert "InjectedFault" in channel.quarantine_reason
            await restored.drain_all()

        asyncio.run(scenario())


class TestIngestFault:
    def test_ingest_fault_fails_the_request_not_the_worker(self):
        async def scenario():
            plan = FaultPlan().fail_ingest(tenant="t", at=2)
            manager = _manager(plan)
            tenant = manager.get_or_create("t")
            await tenant.call(lambda: tenant.register(_spec("q")))
            await tenant.call(lambda: tenant.ingest([_edge(0)]))
            with pytest.raises(Exception, match="injected ingest fault"):
                await tenant.call(lambda: tenant.ingest([_edge(1)]))
            # The worker thread survived: the next ingest succeeds.
            result = await tenant.call(lambda: tenant.ingest([_edge(2)]))
            assert result["ingested"] == 1
            assert tenant.worker_restarts == 0
            await manager.drain_all()

        asyncio.run(scenario())
