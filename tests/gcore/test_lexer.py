"""Unit tests for the G-CORE tokenizer."""

import pytest

from repro.errors import ParseError
from repro.gcore.lexer import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


class TestEdgeTokens:
    def test_forward_edge(self):
        tokens = tokenize("(x)-[:likes]->(y)")
        assert kinds("(x)-[:likes]->(y)") == [
            "lparen",
            "ident",
            "rparen",
            "edge_fwd",
            "lparen",
            "ident",
            "rparen",
        ]
        assert tokens[3].extra["label"] == "likes"

    def test_backward_edge(self):
        tokens = tokenize("(x)<-[:posts]-(y)")
        assert tokens[3].kind == "edge_bwd"
        assert tokens[3].extra["label"] == "posts"

    def test_reachability_star(self):
        tokens = tokenize("(x)-/<:follows*>/->(y)")
        reach = tokens[3]
        assert reach.kind == "reach"
        assert reach.extra["label"] == "follows"
        assert reach.extra["kind"] == ":"
        assert reach.extra["path_var"] is None

    def test_reachability_with_path_var(self):
        tokens = tokenize("(u)-/p<~RL*>/->(v)")
        reach = tokens[3]
        assert reach.extra["label"] == "RL"
        assert reach.extra["kind"] == "~"
        assert reach.extra["path_var"] == "p"

    def test_caret_star_accepted(self):
        tokens = tokenize("(x)-/<:follows^*>/->(y)")
        assert tokens[3].extra["star"] == "^*"

    def test_whitespace_inside_ascii_art(self):
        # The paper's figures put spaces everywhere inside edges.
        messy = "( u1 ) - / <: follows ^* > / - > ( u2 )"
        tokens = tokenize(messy)
        assert [t.kind for t in tokens] == [
            "lparen",
            "ident",
            "rparen",
            "reach",
            "lparen",
            "ident",
            "rparen",
        ]


class TestKeywordsAndAtoms:
    def test_keywords_case_insensitive(self):
        assert kinds("match Match MATCH") == ["MATCH", "MATCH", "MATCH"]

    def test_identifier_not_keyword(self):
        tokens = tokenize("social_stream")
        assert tokens[0].kind == "ident"

    def test_numbers(self):
        tokens = tokenize("WINDOW (24 h)")
        assert [t.kind for t in tokens] == [
            "WINDOW",
            "lparen",
            "number",
            "ident",
            "rparen",
        ]

    def test_invalid_character(self):
        with pytest.raises(ParseError):
            tokenize("MATCH (x) ; (y)")
