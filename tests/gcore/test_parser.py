"""Unit tests for the G-CORE parser."""

import pytest

from repro.core.windows import DAY, HOUR
from repro.errors import ParseError
from repro.gcore.parser import parse_gcore_query

FIG6 = """
PATH RL = (u1) -/<:follows*>/-> (u2),
          (u1)-[:likes]->(m1)<-[:posts]-(u2)
CONSTRUCT (u)-[:notify]->(m)
MATCH (u) -/p<~RL*>/-> (v),
      (v)-[:posts]->(m)
ON social_stream WINDOW (24 h) SLIDE (1 h)
"""

FIG7 = """
GRAPH VIEW rec_stream AS (
CONSTRUCT (u1)-[:recommendation]->(p)
MATCH (u1)
OPTIONAL (u1)-[:follows]->(u2)
OPTIONAL (u1)-[:likes]->(m)<-[:posts]-(u2)
ON social_stream WINDOW (24 hours)
MATCH (c)-[:purchase]->(p)
ON tx_stream WINDOW (30 d) SLIDE (1 d)
WHERE (u2) = (c) )
"""


class TestFigure6:
    def test_path_definition(self):
        query = parse_gcore_query(FIG6)
        assert len(query.paths) == 1
        path = query.paths[0]
        assert path.name == "RL"
        assert len(path.patterns) == 2
        assert path.patterns[0].endpoints == ("u1", "u2")
        assert path.patterns[0].hops[0].reach

    def test_construct(self):
        query = parse_gcore_query(FIG6)
        assert query.construct.label == "notify"
        assert query.construct.src_var == "u"
        assert query.construct.trg_var == "m"

    def test_match_block(self):
        query = parse_gcore_query(FIG6)
        assert len(query.matches) == 1
        block = query.matches[0]
        assert block.stream == "social_stream"
        assert block.window.size == 24 * HOUR
        assert block.window.slide == HOUR
        reach_hop = block.patterns[0].hops[0]
        assert reach_hop.reach
        assert reach_hop.path_var == "p"
        assert reach_hop.label == "RL"


class TestFigure7:
    def test_view_wrapper(self):
        query = parse_gcore_query(FIG7)
        assert query.view_name == "rec_stream"

    def test_optionals(self):
        query = parse_gcore_query(FIG7)
        first = query.matches[0]
        assert len(first.optionals) == 2
        assert first.optionals[0].endpoints == ("u1", "u2")
        # The second optional chains u1 -> m <- u2.
        assert first.optionals[1].endpoints == ("u1", "u2")

    def test_two_match_blocks_with_windows(self):
        query = parse_gcore_query(FIG7)
        assert len(query.matches) == 2
        assert query.matches[0].window.size == 24 * HOUR
        assert query.matches[0].window.slide == 1
        assert query.matches[1].window.size == 30 * DAY
        assert query.matches[1].window.slide == DAY

    def test_where(self):
        query = parse_gcore_query(FIG7)
        assert query.where == (("u2", "c"),)


class TestSyntaxDetails:
    def test_backward_edge_direction(self):
        query = parse_gcore_query(
            "CONSTRUCT (x)-[:out]->(y) "
            "MATCH (x)<-[:likes]-(y) ON s WINDOW (10)"
        )
        hop = query.matches[0].patterns[0].hops[0]
        assert hop.direction == "bwd"

    def test_anonymous_node(self):
        query = parse_gcore_query(
            "CONSTRUCT (x)-[:out]->(y) "
            "MATCH (x)-[:a]->()-[:b]->(y) ON s WINDOW (10)"
        )
        middle = query.matches[0].patterns[0].nodes[1]
        assert middle.var.startswith("_anon")

    def test_duration_without_unit_is_ticks(self):
        query = parse_gcore_query(
            "CONSTRUCT (x)-[:out]->(y) MATCH (x)-[:a]->(y) ON s WINDOW (77)"
        )
        assert query.matches[0].window.size == 77

    def test_multiple_where_with_and(self):
        query = parse_gcore_query(
            "CONSTRUCT (x)-[:out]->(y) "
            "MATCH (x)-[:a]->(y) ON s WINDOW (10) "
            "MATCH (z)-[:b]->(w) ON t WINDOW (10) "
            "WHERE (x) = (z) AND (y) = (w)"
        )
        assert query.where == (("x", "z"), ("y", "w"))


class TestErrors:
    def test_empty(self):
        with pytest.raises(ParseError):
            parse_gcore_query("")

    def test_missing_match(self):
        with pytest.raises(ParseError):
            parse_gcore_query("CONSTRUCT (x)-[:out]->(y)")

    def test_missing_on(self):
        with pytest.raises(ParseError):
            parse_gcore_query(
                "CONSTRUCT (x)-[:out]->(y) MATCH (x)-[:a]->(y)"
            )

    def test_construct_with_two_hops_rejected(self):
        with pytest.raises(ParseError):
            parse_gcore_query(
                "CONSTRUCT (x)-[:a]->(y)-[:b]->(z) "
                "MATCH (x)-[:a]->(y) ON s WINDOW (10)"
            )

    def test_unknown_duration_unit(self):
        with pytest.raises(ParseError):
            parse_gcore_query(
                "CONSTRUCT (x)-[:out]->(y) "
                "MATCH (x)-[:a]->(y) ON s WINDOW (10 parsecs)"
            )

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_gcore_query(
                "CONSTRUCT (x)-[:out]->(y) "
                "MATCH (x)-[:a]->(y) ON s WINDOW (10) MATCH"
            )
