"""Unit and integration tests for G-CORE → SGQ translation."""

import pytest

from repro.core.tuples import SGE
from repro.core.windows import DAY, HOUR, SlidingWindow
from tests.conftest import SessionHarness
from repro.errors import ParseError
from repro.gcore import parse_gcore
from repro.query.datalog import Atom, ClosureAtom

FIG6 = """
PATH RL = (u1) -/<:follows*>/-> (u2),
          (u1)-[:likes]->(m1)<-[:posts]-(u2)
CONSTRUCT (u)-[:notify]->(m)
MATCH (u) -/p<~RL*>/-> (v),
      (v)-[:posts]->(m)
ON social_stream WINDOW (24 h) SLIDE (1 h)
"""

FIG7 = """
GRAPH VIEW rec_stream AS (
CONSTRUCT (u1)-[:recommendation]->(p)
MATCH (u1)
OPTIONAL (u1)-[:follows]->(u2)
OPTIONAL (u1)-[:likes]->(m)<-[:posts]-(u2)
ON social_stream WINDOW (24 hours)
MATCH (c)-[:purchase]->(p)
ON tx_stream WINDOW (30 d) SLIDE (1 d)
WHERE (u2) = (c) )
"""


class TestFigure6Translation:
    """Figure 6 must produce exactly the Example 2 Regular Query."""

    def test_rl_rule(self):
        sgq = parse_gcore(FIG6)
        rl_rules = sgq.program.rules_for("RL")
        assert len(rl_rules) == 1
        body = rl_rules[0].body
        assert ClosureAtom("follows", "u1", "u2", "follows_path") in body
        assert Atom("likes", "u1", "m1") in body
        assert Atom("posts", "u2", "m1") in body

    def test_notify_rule_uses_rl_closure(self):
        sgq = parse_gcore(FIG6)
        notify = sgq.program.rules_for("notify")[0]
        # The path variable p names the closure.
        assert ClosureAtom("RL", "u", "v", "p") in notify.body
        assert Atom("posts", "v", "m") in notify.body

    def test_answer_renames_construct_label(self):
        sgq = parse_gcore(FIG6)
        answer = sgq.program.rules_for("Answer")[0]
        assert answer.body == (Atom("notify", "u", "m"),)

    def test_window_applied_to_all_labels(self):
        sgq = parse_gcore(FIG6)
        for label in ("follows", "likes", "posts"):
            assert sgq.window_for(label) == SlidingWindow(24 * HOUR, HOUR)


class TestFigure7Translation:
    """Figure 7 must produce the Example 4 union translation."""

    def test_optional_union(self):
        sgq = parse_gcore(FIG7)
        aux_rules = sgq.program.rules_for("Opt1")
        assert len(aux_rules) == 2
        bodies = {rule.body for rule in aux_rules}
        assert (Atom("follows", "u1", "u2"),) in bodies

    def test_where_unifies_across_blocks(self):
        sgq = parse_gcore(FIG7)
        rec = sgq.program.rules_for("recommendation")[0]
        # c is unified with u2: purchase's source variable becomes u2.
        assert Atom("purchase", "u2", "p") in rec.body

    def test_per_stream_windows(self):
        sgq = parse_gcore(FIG7)
        assert sgq.window_for("follows") == SlidingWindow(24 * HOUR, 1)
        assert sgq.window_for("likes") == SlidingWindow(24 * HOUR, 1)
        assert sgq.window_for("purchase") == SlidingWindow(30 * DAY, DAY)


class TestEndToEnd:
    def test_figure6_on_paper_stream(self, paper_stream):
        ticks = FIG6.replace("24 h", "24 ticks").replace("1 h", "1 ticks")
        processor = SessionHarness.from_gcore(ticks)
        for edge in paper_stream:
            processor.push(edge)
        assert processor.valid_at(30) == {
            ("u", "b", "Answer"),
            ("u", "c", "Answer"),
            ("y", "a", "Answer"),
            ("y", "b", "Answer"),
            ("y", "c", "Answer"),
        }

    def test_figure7_windows_interact(self):
        processor = SessionHarness.from_gcore(
            FIG7.replace("24 hours", "24 ticks")
            .replace("30 d", "720 ticks")
            .replace("1 d", "24 ticks")
        )
        processor.push(SGE("carol", "hat", "purchase", 1))
        processor.push(SGE("alice", "carol", "follows", 3))
        processor.advance_to(40)  # perform the probed window movements
        assert ("alice", "hat", "Answer") in processor.valid_at(10)
        # The follows edge expires after 24 ticks; the purchase survives.
        assert ("alice", "hat", "Answer") not in processor.valid_at(40)

    def test_mismatched_optional_endpoints_rejected(self):
        bad = (
            "CONSTRUCT (x)-[:out]->(y) "
            "MATCH (x) "
            "OPTIONAL (x)-[:a]->(y) "
            "OPTIONAL (z)-[:b]->(w) "
            "ON s WINDOW (10)"
        )
        with pytest.raises(ParseError, match="endpoints"):
            parse_gcore(bad)

    def test_gcore_equals_datalog_formulation(self, paper_stream):
        from tests.conftest import PAPER_QUERY

        gcore = SessionHarness.from_gcore(
            FIG6.replace("24 h", "24 ticks").replace("1 h", "1 ticks")
        )
        datalog = SessionHarness.from_datalog(
            PAPER_QUERY, SlidingWindow(24)
        )
        for edge in paper_stream:
            gcore.push(edge)
            datalog.push(edge)
        gcore.advance_to(59)  # perform the probed window movements
        datalog.advance_to(59)
        for t in range(0, 60, 3):
            assert gcore.valid_at(t) == datalog.valid_at(t)
