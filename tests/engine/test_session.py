"""Unit tests for the session API: config, handles, delivery, backends."""

import pytest

from repro.core.batch import RunStats
from repro.core.coalesce import coalesce_stream
from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from repro.engine import EngineConfig, StreamingGraphEngine
from repro.engine.session import QueryStats
from repro.errors import ExecutionError, PlanError, StreamOrderError
from repro.query.sgq import SGQ
from tests.conftest import make_stream

W = SlidingWindow(20)

REACH = "Answer(x, y) <- knows+(x, y) as K."
PAIRS = "Answer(x, z) <- knows+(x, y) as K, likes(y, z)."
LIKES = "Answer(x, y) <- likes(x, y)."


def sgq(text, window=W):
    return SGQ.from_text(text, window)


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.backend == "sga"
        assert config.path_impl == "spath"
        assert config.late_policy == "allow"
        assert config.batch_size is None

    def test_frozen(self):
        with pytest.raises(AttributeError):
            EngineConfig().backend = "dd"

    def test_invalid_backend(self):
        with pytest.raises(ValueError, match="backend"):
            EngineConfig(backend="timely")

    def test_invalid_path_impl(self):
        with pytest.raises(PlanError, match="PATH implementation"):
            EngineConfig(path_impl="magic")

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            EngineConfig(batch_size=0)

    def test_invalid_late_policy(self):
        with pytest.raises(ValueError, match="late policy"):
            EngineConfig(late_policy="whatever")

    def test_with_overrides_validates(self):
        config = EngineConfig()
        assert config.with_overrides(path_impl="negative").path_impl == "negative"
        with pytest.raises(PlanError):
            config.with_overrides(path_impl="magic")
        with pytest.raises(ValueError, match="unknown EngineConfig field"):
            config.with_overrides(pathimpl="spath")

    def test_engine_accepts_kwargs_shorthand(self):
        engine = StreamingGraphEngine(path_impl="negative")
        assert engine.config.path_impl == "negative"


class TestRegistration:
    def test_auto_names(self):
        engine = StreamingGraphEngine()
        a = engine.register(sgq(REACH))
        b = engine.register(sgq(LIKES))
        assert (a.name, b.name) == ("q0", "q1")
        assert engine.query_names == ("q0", "q1")

    def test_duplicate_name_rejected(self):
        engine = StreamingGraphEngine()
        engine.register(sgq(REACH), name="a")
        with pytest.raises(PlanError, match="already registered"):
            engine.register(sgq(LIKES), name="a")

    def test_unknown_handle(self):
        with pytest.raises(PlanError, match="unknown"):
            StreamingGraphEngine().handle("zzz")

    def test_push_without_queries(self):
        with pytest.raises(ExecutionError, match="no queries"):
            StreamingGraphEngine().push(SGE(1, 2, "knows", 0))
        with pytest.raises(ExecutionError, match="no queries"):
            StreamingGraphEngine(backend="dd").push(SGE(1, 2, "knows", 0))

    def test_per_query_override_compile_options_only(self):
        engine = StreamingGraphEngine()
        engine.register(sgq(REACH), name="a", path_impl="negative")
        with pytest.raises(ValueError, match="engine-wide"):
            engine.register(sgq(LIKES), name="b", batch_size=4)

    def test_watermark_cadence_covers_all_plan_slides(self):
        """Mixed slides take the gcd so no plan's boundary is skipped
        (the same rule mid-stream registration uses)."""
        engine = StreamingGraphEngine()
        engine.register(sgq(REACH, SlidingWindow(50, 10)), name="a")
        engine.register(sgq(LIKES, SlidingWindow(40, 4)), name="b")
        assert engine.slide == 2

    def test_sharing_matches_multiprocessor_semantics(self):
        engine = StreamingGraphEngine()
        engine.register(sgq(REACH), name="reach")
        engine.register(sgq(PAIRS), name="pairs")
        assert engine.sharing_savings() >= 2

    def test_differing_options_do_not_share_compiled_operators(self):
        engine = StreamingGraphEngine()
        engine.register(sgq(REACH), name="a")
        one = engine.operator_count()
        engine.register(sgq(REACH), name="b", path_impl="negative")
        assert engine.operator_count() > one


class TestHandleSurface:
    def test_pull_results_and_snapshots(self):
        engine = StreamingGraphEngine()
        handle = engine.register(sgq(REACH), name="reach")
        engine.push(SGE(1, 2, "knows", 0))
        engine.push(SGE(2, 3, "knows", 1))
        assert handle.valid_at(1) == {
            (1, 2, "Answer"),
            (2, 3, "Answer"),
            (1, 3, "Answer"),
        }
        assert len(handle.results()) == 3
        assert handle.result_count() >= 3
        assert (1, 3, "Answer") in handle.coverage()
        handle.clear_results()
        assert handle.results() == []

    def test_callback_and_pull_agree(self):
        received = []
        engine = StreamingGraphEngine()
        handle = engine.register(
            sgq(REACH), name="reach", on_result=received.append
        )
        engine.push_many(make_stream(3, 60, 6, ("knows",), max_gap=2))
        inserted = [event.sgt for event in received if event.sign == 1]
        assert coalesce_stream(inserted) == handle.results()
        assert len(received) == len(handle._sink.events)

    def test_stats_and_explain(self):
        engine = StreamingGraphEngine()
        handle = engine.register(sgq(REACH), name="reach")
        engine.push(SGE(1, 2, "knows", 0))
        stats = handle.stats()
        assert isinstance(stats, QueryStats)
        assert stats.name == "reach"
        assert stats.backend == "sga"
        assert stats.results == 1
        assert stats.live
        assert "PATH" in handle.explain()

    def test_tap(self):
        engine = StreamingGraphEngine()
        engine.register(sgq(REACH), name="reach")
        tap = engine.tap("knows")
        engine.push(SGE(1, 2, "knows", 0))
        assert tap.valid_at(0) == {(1, 2, "knows")}

    def test_push_many_returns_stats_and_matches_push(self):
        stream = make_stream(7, 80, 6, ("knows",), max_gap=2)
        fast = StreamingGraphEngine(batch_size=16)
        fast_handle = fast.register(sgq(REACH))
        stats = fast.push_many(stream)
        assert isinstance(stats, RunStats)
        assert stats.total_edges == 80
        assert stats.total_batches >= 1
        slow = StreamingGraphEngine()
        slow_handle = slow.register(sgq(REACH))
        for edge in stream:
            slow.push(edge)
        assert fast_handle.results() == slow_handle.results()

    def test_late_policy_is_engine_wide(self):
        engine = StreamingGraphEngine(late_policy="raise")
        engine.register(sgq(REACH))
        engine.push(SGE(1, 2, "knows", 40))
        with pytest.raises(StreamOrderError):
            engine.push(SGE(2, 3, "knows", 2))
        dropper = StreamingGraphEngine(late_policy="drop")
        dropper.register(sgq(REACH))
        dropper.push(SGE(1, 2, "knows", 40))
        dropper.push(SGE(2, 3, "knows", 2))
        assert dropper.late_count == 1


class TestDDBackend:
    def test_same_handle_api(self):
        engine = StreamingGraphEngine(backend="dd")
        handle = engine.register(sgq(REACH, SlidingWindow(20, 4)), name="reach")
        engine.push_many(
            [SGE(1, 2, "knows", 0), SGE(2, 3, "knows", 1), SGE(3, 4, "knows", 9)]
        )
        assert handle.answer() == {
            (1, 2), (2, 3), (1, 3), (3, 4), (2, 4), (1, 4),
        }
        assert (1, 3, "Answer") in handle.results()
        assert handle.valid_at(9) == {
            (u, v, "Answer") for u, v in handle.answer()
        }
        stats = handle.stats()
        assert stats.backend == "dd"
        assert stats.results == 6
        assert "DD[" in handle.explain()

    def test_valid_at_is_a_pure_read(self):
        engine = StreamingGraphEngine(backend="dd")
        handle = engine.register(sgq(REACH, SlidingWindow(8, 4)), name="reach")
        engine.push(SGE(1, 2, "knows", 0))
        assert (1, 2, "Answer") in handle.valid_at(3)
        # Past the expiry horizon the answer is empty — answered purely,
        # without performing any window movement...
        assert handle.valid_at(40) == set()
        # ...so an in-order edge pushed afterwards is NOT late.
        engine.push(SGE(2, 3, "knows", 1))
        assert (1, 3, "Answer") in handle.valid_at(3)

    def test_valid_at_ahead_of_stream_requires_advance(self):
        engine = StreamingGraphEngine(backend="dd")
        handle = engine.register(sgq(REACH, SlidingWindow(20, 4)), name="reach")
        engine.push(SGE(1, 2, "knows", 0))
        # Boundary 8 has not been evaluated and the edge has not yet
        # expired there: reading would require a window movement.
        with pytest.raises(ExecutionError, match="advance_to"):
            handle.valid_at(8)
        engine.advance_to(8)
        assert (1, 2, "Answer") in handle.valid_at(8)

    def test_no_plans_no_deletions_no_taps(self):
        from repro.workloads import QUERIES

        engine = StreamingGraphEngine(backend="dd")
        plan = QUERIES["Q1"].plan({"a": "a", "b": "b", "c": "c"}, W)
        with pytest.raises(PlanError, match="Regular Query"):
            engine.register(plan)
        handle = engine.register(sgq(REACH))
        with pytest.raises(ExecutionError, match="deletions"):
            engine.delete(SGE(1, 2, "knows", 0))
        with pytest.raises(ExecutionError, match="coverage|validity"):
            handle.coverage()
        with pytest.raises(ExecutionError, match="sga"):
            engine.tap("K")

    def test_callback_receives_signed_answer_deltas(self):
        deltas = []
        engine = StreamingGraphEngine(backend="dd")
        engine.register(
            sgq(REACH, SlidingWindow(8, 4)), name="reach",
            on_result=deltas.append,
        )
        engine.push(SGE(1, 2, "knows", 0))
        engine.advance_to(3)
        engine.advance_to(40)
        assert ((1, 2), 1) in deltas
        assert ((1, 2), -1) in deltas

    def test_late_policy_applies(self):
        engine = StreamingGraphEngine(backend="dd", late_policy="drop")
        engine.register(sgq(REACH, SlidingWindow(20, 4)))
        engine.push(SGE(1, 2, "knows", 10))
        engine.push(SGE(5, 6, "knows", 2))
        assert engine.late_count == 1

    def test_late_count_is_per_edge_not_per_query(self):
        engine = StreamingGraphEngine(backend="dd", late_policy="drop")
        engine.register(sgq(REACH, SlidingWindow(20, 4)), name="a")
        engine.register(sgq(REACH, SlidingWindow(20, 4)), name="b")
        # Two late edges in one batch, consulted by both queries.
        engine.push_many(
            [
                SGE(1, 2, "knows", 25),
                SGE(5, 6, "knows", 5),
                SGE(7, 8, "knows", 6),
            ]
        )
        assert engine.late_count == 2

    def test_far_future_probes_and_advances_are_bounded(self):
        """Neither reading far past the horizon nor advancing over a
        huge quiet gap steps through millions of empty epochs."""
        engine = StreamingGraphEngine(backend="dd")
        handle = engine.register(sgq(REACH, SlidingWindow(10, 1)))
        engine.push(SGE(1, 2, "knows", 0))
        assert handle.valid_at(2_000_000) == set()   # pure horizon read
        engine.advance_to(3_000_000)                 # drains, then jumps
        # History stays sparse: only answer-changing epochs are kept.
        assert len(handle._boundaries) <= 4
        assert (1, 2, "Answer") in handle.valid_at(5)

    def test_valid_at_between_sparse_arrivals_reflects_expiry(self):
        """A jump over quiet slides steps through the intervening empty
        epochs, so valid_at inside the gap sees the expiration — and
        agrees with the sga backend."""
        window = SlidingWindow(10, 10)
        dd_engine = StreamingGraphEngine(backend="dd")
        dd = dd_engine.register(sgq(REACH, window))
        sga_engine = StreamingGraphEngine()
        sga = sga_engine.register(sgq(REACH, window))
        for edge in [SGE(1, 2, "knows", 5), SGE(8, 9, "knows", 100)]:
            dd_engine.push(edge)
            sga_engine.push(edge)
        # t=50 lies between the two arrivals; the first edge expired at 15.
        assert dd.valid_at(50) == set()
        assert dd.valid_at(50) == sga.valid_at(50)
        assert dd.valid_at(5) == {(1, 2, "Answer")} == sga.valid_at(5)


class TestDecode:
    def test_decode_maps_interned_ids_back(self):
        from repro.core.tuples import SGE
        from repro.core.windows import SlidingWindow
        from repro.query.sgq import SGQ

        engine = StreamingGraphEngine()  # columnar default: interning on
        engine.register(
            SGQ.from_text(
                "Answer(x, y) <- knows(x, y).", SlidingWindow(10)
            ),
            name="q",
        )
        engine.push(SGE(("P", 1), ("P", 2), "knows", 0))
        assert engine.decode(0) == ("P", 1)
        assert engine.decode(1) == ("P", 2)

    def test_decode_is_identity_under_rows_execution(self):
        engine = StreamingGraphEngine(EngineConfig(execution="rows"))
        assert engine.decode(("P", 1)) == ("P", 1)
