"""The unified temporal-read and decode contracts of the session API.

Satellite sweep regressions:

* ``valid_at(t)`` follows one documented contract on every backend
  (sga handles, sharded handles, the dd handle, and the legacy shim):
  exact at or behind the last performed window movement, exactly empty
  at or past the expiry horizon, :class:`~repro.errors.HorizonError`
  in between.
* ``engine.decode`` (and every Interner read surface) raises
  :class:`~repro.errors.DecodeError` naming the offending id for ids
  never interned — e.g. ids minted by a different engine instance —
  instead of returning an arbitrary value.
"""

from __future__ import annotations

import pytest

from repro.core.interning import Interner
from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.errors import DecodeError, ExecutionError, HorizonError
from repro.query.sgq import SGQ

REACH = "Answer(x, y) <- knows+(x, y) as K."


def sgq(text=REACH, window=None):
    return SGQ.from_text(text, window or SlidingWindow(20, 4))


def _configs():
    return [
        EngineConfig(),
        EngineConfig(execution="rows"),
        EngineConfig(backend="dd"),
        EngineConfig(shards=2),
    ]


class TestValidAtContract:
    @pytest.mark.parametrize("config", _configs(), ids=lambda c: (
        f"{c.backend}-{c.execution}-s{c.shards}"
    ))
    def test_contract_uniform_across_backends(self, config):
        engine = StreamingGraphEngine(config)
        handle = engine.register(sgq(), name="q")
        engine.push(SGE(1, 2, "knows", 0))
        # At or behind the last performed movement: exact.
        assert (1, 2, "Answer") in handle.valid_at(0)
        # Ahead of the stream but before the horizon (the edge is still
        # valid at t=10 — the movement just hasn't been performed):
        # HorizonError.
        with pytest.raises(HorizonError, match="advance_to"):
            handle.valid_at(10)
        # HorizonError subclasses ExecutionError (compat).
        with pytest.raises(ExecutionError):
            handle.valid_at(10)
        # At or past the horizon: exactly the empty set, as a pure read.
        assert handle.valid_at(10_000) == set()
        # The pure read performed no window movement: an in-order edge
        # pushed afterwards is not late.
        engine.push(SGE(2, 3, "knows", 1))
        assert (1, 3, "Answer") in handle.valid_at(1)
        # After performing the movements, the gap answers exactly.
        engine.advance_to(30)
        assert handle.valid_at(30) == set()

    def test_legacy_shim_inherits_contract(self):
        from repro.engine import StreamingGraphQueryProcessor

        with pytest.warns(DeprecationWarning):
            p = StreamingGraphQueryProcessor.from_datalog(
                REACH, SlidingWindow(20, 4)
            )
        p.push(SGE(1, 2, "knows", 0))
        with pytest.raises(HorizonError):
            p.valid_at(10)
        assert p.valid_at(10_000) == set()

    def test_not_started_is_empty_everywhere(self):
        for config in _configs():
            engine = StreamingGraphEngine(config)
            handle = engine.register(sgq(), name="q")
            assert handle.valid_at(5) == set()

    @pytest.mark.parametrize("shards", [1, 2])
    def test_epoch_instant_agrees_with_dd(self, shards):
        """At every epoch's final instant — DD's temporal resolution —
        the sga and dd backends answer identically, including at the
        expiry horizon's edge (interval ends exclusive)."""
        window = SlidingWindow(8, 4)
        stream = [
            SGE(1, 2, "knows", 0),
            SGE(2, 3, "knows", 3),
            SGE(4, 5, "knows", 9),
        ]
        sga_engine = StreamingGraphEngine(EngineConfig(shards=shards))
        sga = sga_engine.register(sgq(window=window), name="q")
        dd_engine = StreamingGraphEngine(EngineConfig(backend="dd"))
        dd = dd_engine.register(sgq(window=window), name="q")
        for edge in stream:
            sga_engine.push(edge)
            dd_engine.push(edge)
        final = 20
        sga_engine.advance_to(final)
        dd_engine.advance_to(final)
        for t in range(3, final, 4):  # epoch-final instants
            assert sga.valid_at(t) == dd.valid_at(t), t


class TestDecodeErrors:
    def test_engine_decode_rejects_foreign_ids(self):
        engine = StreamingGraphEngine()
        engine.register(sgq(), name="q")
        engine.push(SGE("alice", "bob", "knows", 0))
        assert engine.decode(0) == "alice"
        with pytest.raises(DecodeError, match="999"):
            engine.decode(999)
        with pytest.raises(DecodeError, match="-1"):
            engine.decode(-1)  # negative must not index from the end
        # DecodeError is a KeyError (the interner is a mapping).
        with pytest.raises(KeyError):
            engine.decode(999)

    def test_ids_from_another_engine_instance(self):
        a = StreamingGraphEngine()
        a.register(sgq(), name="q")
        a.push(SGE("alice", "bob", "knows", 0))
        b = StreamingGraphEngine()
        b.register(sgq(), name="q")
        with pytest.raises(DecodeError):
            b.decode(a._interner.id_of("alice"))

    def test_interner_read_surfaces_raise(self):
        from repro.core.intervals import Interval
        from repro.core.tuples import SGT

        interner = Interner()
        interner.intern("v0")
        with pytest.raises(DecodeError, match="7"):
            interner.value(7)
        with pytest.raises(DecodeError, match="not-an-id"):
            interner.value("not-an-id")
        with pytest.raises(DecodeError, match="3"):
            interner.decode_key((0, 3, "Answer"))
        with pytest.raises(DecodeError, match="5"):
            interner.decode_sgt(SGT(0, 5, "Answer", Interval(0, 1)))
        # Negative ids must not silently decode from the end of the
        # table, and non-int ids must not raise a raw TypeError.
        with pytest.raises(DecodeError, match="-1"):
            interner.decode_sgt(SGT(-1, 0, "Answer", Interval(0, 1)))
        with pytest.raises(DecodeError, match="bogus"):
            interner.decode_sgt(SGT(0, "bogus", "Answer", Interval(0, 1)))

    def test_rows_execution_decode_is_identity(self):
        engine = StreamingGraphEngine(EngineConfig(execution="rows"))
        assert engine.decode(12345) == 12345
