"""Unit tests for tapping intermediate derived streams."""

import pytest

from repro.core.intervals import Interval
from repro.core.tuples import SGE, PathPayload
from repro.core.windows import SlidingWindow
from tests.conftest import SessionHarness
from repro.errors import PlanError
from tests.conftest import PAPER_QUERY


class TestTap:
    def test_tap_intermediate_label(self, paper_stream):
        processor = SessionHarness.from_datalog(
            PAPER_QUERY, SlidingWindow(24)
        )
        rl = processor.tap("RL")
        for edge in paper_stream:
            processor.push(edge)
        # Example 6: the recentLiker edges (y, u) and (u, v).
        assert rl.valid_at(30) == {("y", "u", "RL"), ("u", "v", "RL")}
        coverage = rl.coverage()
        assert coverage[("y", "u", "RL")] == [Interval(28, 37)]
        assert coverage[("u", "v", "RL")] == [Interval(29, 31)]

    def test_tap_closure_paths(self, paper_stream):
        processor = SessionHarness.from_datalog(
            PAPER_QUERY, SlidingWindow(24)
        )
        rlp = processor.tap("RLP")
        for edge in paper_stream:
            processor.push(edge)
        # Example 7: the length-2 recentLiker path y -> u -> v.
        paths = [
            e.sgt.payload
            for e in rlp.events
            if e.sign == 1 and isinstance(e.sgt.payload, PathPayload)
        ]
        assert any(p.vertices == ("y", "u", "v") for p in paths)

    def test_tap_input_label(self):
        processor = SessionHarness.from_datalog(
            "Answer(x, z) <- a(x, y), b(y, z).", SlidingWindow(10)
        )
        a_tap = processor.tap("a")
        processor.push(SGE(1, 2, "a", 0))
        processor.push(SGE(2, 3, "b", 0))
        assert a_tap.valid_at(0) == {(1, 2, "a")}

    def test_tap_unknown_label_raises(self):
        processor = SessionHarness.from_datalog(
            "Answer(x, y) <- a(x, y).", SlidingWindow(10)
        )
        with pytest.raises(PlanError, match="zzz"):
            processor.tap("zzz")

    def test_tap_collects_from_call_time(self, paper_stream):
        processor = SessionHarness.from_datalog(
            PAPER_QUERY, SlidingWindow(24)
        )
        for edge in paper_stream[:5]:
            processor.push(edge)
        rl = processor.tap("RL")
        for edge in paper_stream[5:]:
            processor.push(edge)
        # Both RL results derive from likes edges pushed after the tap.
        assert len(rl.coverage()) == 2
