"""Unit tests for the result-path helpers."""

from repro.core.intervals import Interval
from repro.core.tuples import SGT, EdgePayload, PathPayload
from repro.engine.results import longest_result_path, result_paths


def path_sgt(src, trg, hops, ts=0, exp=10):
    return SGT(src, trg, "P", Interval(ts, exp), PathPayload(tuple(hops)))


class TestResultPaths:
    def test_extracts_paths_only(self):
        results = [
            SGT("a", "b", "P", Interval(0, 10)),  # edge payload
            path_sgt("a", "c", [EdgePayload("a", "b", "l"), EdgePayload("b", "c", "l")]),
        ]
        paths = result_paths(results)
        assert len(paths) == 1
        assert paths[0].vertices == ("a", "b", "c")

    def test_fields(self):
        rp = result_paths(
            [path_sgt("a", "c", [EdgePayload("a", "b", "x"), EdgePayload("b", "c", "y")], 3, 9)]
        )[0]
        assert rp.src == "a"
        assert rp.trg == "c"
        assert rp.label == "P"
        assert rp.interval == Interval(3, 9)
        assert rp.labels == ("x", "y")
        assert rp.length == 2

    def test_str_renders_hops(self):
        rp = result_paths(
            [path_sgt("a", "b", [EdgePayload("a", "b", "l")])]
        )[0]
        assert "a -> b" in str(rp)

    def test_longest(self):
        results = [
            path_sgt("a", "b", [EdgePayload("a", "b", "l")]),
            path_sgt(
                "a",
                "c",
                [EdgePayload("a", "b", "l"), EdgePayload("b", "c", "l")],
            ),
        ]
        assert longest_result_path(results).length == 2

    def test_longest_of_empty_is_none(self):
        assert longest_result_path([]) is None
