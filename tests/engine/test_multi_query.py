"""Unit and integration tests for multi-query operator sharing."""

import pytest

from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from repro.engine import MultiQueryProcessor, StreamingGraphQueryProcessor
from repro.errors import ExecutionError, PlanError
from repro.query.sgq import SGQ
from tests.conftest import make_stream

# This module deliberately exercises the deprecated facade shims; the
# suite-wide filter that escalates those DeprecationWarnings to errors
# (pyproject filterwarnings) is relaxed here.
pytestmark = pytest.mark.filterwarnings("default::DeprecationWarning")


W = SlidingWindow(20)

REACH = "Answer(x, y) <- knows+(x, y) as K."
PAIRS = "Answer(x, z) <- knows+(x, y) as K, likes(y, z)."
LIKES = "Answer(x, y) <- likes(x, y)."


def multi_with(*pairs, **kwargs):
    multi = MultiQueryProcessor(**kwargs)
    for name, text in pairs:
        multi.register(name, SGQ.from_text(text, W))
    return multi


class TestRegistration:
    def test_duplicate_name_rejected(self):
        multi = multi_with(("a", REACH))
        with pytest.raises(PlanError, match="already registered"):
            multi.register("a", SGQ.from_text(LIKES, W))

    def test_register_after_start_rejected(self):
        multi = multi_with(("a", REACH))
        multi.push(SGE(1, 2, "knows", 0))
        with pytest.raises(ExecutionError):
            multi.register("b", SGQ.from_text(LIKES, W))

    def test_no_queries_rejected(self):
        with pytest.raises(ExecutionError):
            MultiQueryProcessor().push(SGE(1, 2, "knows", 0))

    def test_unknown_query_name(self):
        multi = multi_with(("a", REACH))
        with pytest.raises(PlanError, match="unknown"):
            multi.valid_at("zzz", 0)

    def test_query_names(self):
        multi = multi_with(("a", REACH), ("b", LIKES))
        assert multi.query_names == ("a", "b")


class TestSharing:
    def test_shared_closure_counted_once(self):
        multi = multi_with(("reach", REACH), ("pairs", PAIRS))
        # The knows+ PATH operator (and the knows WSCAN/source chain) is
        # compiled once for both queries.
        assert multi.sharing_savings() >= 2

    def test_disjoint_queries_share_nothing_but_sources(self):
        multi = multi_with(("reach", REACH), ("likes", LIKES))
        assert multi.sharing_savings() == 0

    def test_identical_queries_share_everything(self):
        multi = multi_with(("a", REACH), ("b", REACH))
        single = multi_with(("a", REACH))
        assert multi.operator_count() == single.operator_count()


class TestCorrectness:
    def test_each_query_matches_isolated_run(self):
        edges = make_stream(31, 80, 6, ("knows", "likes"), max_gap=2)
        multi = multi_with(("reach", REACH), ("pairs", PAIRS), ("likes", LIKES))
        isolated = {
            "reach": StreamingGraphQueryProcessor.from_datalog(REACH, W),
            "pairs": StreamingGraphQueryProcessor.from_datalog(PAIRS, W),
            "likes": StreamingGraphQueryProcessor.from_datalog(LIKES, W),
        }
        for edge in edges:
            multi.push(edge)
            for processor in isolated.values():
                processor.push(edge)
        for t in range(0, edges[-1].t + 25, 7):
            multi.advance_to(t)
            for name, processor in isolated.items():
                processor.advance_to(t)
                assert multi.valid_at(name, t) == processor.valid_at(t), (
                    name,
                    t,
                )

    def test_run_returns_stats(self):
        multi = multi_with(("reach", REACH))
        stats = multi.run(make_stream(5, 40, 5, ("knows",), max_gap=1))
        assert stats.total_edges == 40
        assert stats.throughput > 0

    def test_deletions_reach_all_queries(self):
        multi = multi_with(("reach", REACH), ("pairs", PAIRS))
        multi.push(SGE(1, 2, "knows", 0))
        multi.push(SGE(2, 3, "likes", 1))
        assert multi.valid_at("pairs", 1) == {(1, 3, "Answer")}
        multi.delete(SGE(1, 2, "knows", 0))
        multi.advance_to(2)  # valid_at answers performed window movements
        assert multi.valid_at("reach", 2) == set()
        assert multi.valid_at("pairs", 2) == set()

    def test_results_and_coverage_per_query(self):
        multi = multi_with(("reach", REACH), ("likes", LIKES))
        multi.push(SGE(1, 2, "knows", 0))
        multi.push(SGE(1, 9, "likes", 1))
        assert len(multi.results("reach")) == 1
        assert (1, 9, "Answer") in multi.coverage("likes")
        assert multi.state_size() > 0
