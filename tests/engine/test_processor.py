"""Unit and integration tests for the end-to-end query processor."""

import pytest

from repro.core.intervals import Interval
from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from repro.engine import StreamingGraphQueryProcessor, result_paths
from repro.engine.results import longest_result_path
from tests.conftest import PAPER_QUERY

# This module deliberately exercises the deprecated facade shims; the
# suite-wide filter that escalates those DeprecationWarnings to errors
# (pyproject filterwarnings) is relaxed here.
pytestmark = pytest.mark.filterwarnings("default::DeprecationWarning")



class TestLifecycle:
    def test_from_datalog(self):
        p = StreamingGraphQueryProcessor.from_datalog(
            "Answer(x, y) <- knows(x, y).", SlidingWindow(10)
        )
        p.push(SGE(1, 2, "knows", 0))
        assert p.valid_at(0) == {(1, 2, "Answer")}

    def test_unknown_labels_discarded(self):
        p = StreamingGraphQueryProcessor.from_datalog(
            "Answer(x, y) <- knows(x, y).", SlidingWindow(10)
        )
        p.push(SGE(1, 2, "likes", 0))
        assert p.results() == []

    def test_results_are_coalesced(self):
        p = StreamingGraphQueryProcessor.from_datalog(
            "Answer(x, y) <- knows(x, y).", SlidingWindow(10)
        )
        p.push(SGE(1, 2, "knows", 0))
        p.push(SGE(1, 2, "knows", 5))
        results = p.results()
        assert len(results) == 1
        assert results[0].interval == Interval(0, 15)

    def test_clear_results_keeps_state(self):
        p = StreamingGraphQueryProcessor.from_datalog(
            "Answer(x, z) <- a(x, y), b(y, z).", SlidingWindow(10)
        )
        p.push(SGE(1, 2, "a", 0))
        p.clear_results()
        p.push(SGE(2, 3, "b", 1))
        assert p.valid_at(1) == {(1, 3, "Answer")}

    def test_result_count_and_state_size(self):
        p = StreamingGraphQueryProcessor.from_datalog(
            "Answer(x, y) <- knows+(x, y) as K.", SlidingWindow(10)
        )
        for t, (u, v) in enumerate([(1, 2), (2, 3), (3, 4)]):
            p.push(SGE(u, v, "knows", t))
        assert p.result_count() >= 6
        assert p.state_size() > 0

    def test_run_returns_stats(self):
        p = StreamingGraphQueryProcessor.from_datalog(
            "Answer(x, y) <- knows(x, y).", SlidingWindow(10, 2)
        )
        stats = p.run([SGE(1, 2, "knows", t) for t in range(0, 20, 1)])
        assert stats.total_edges == 20
        assert stats.throughput > 0
        assert len(stats.slides) == 10
        assert stats.tail_latency() >= 0

    def test_invalid_path_impl_rejected(self):
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            StreamingGraphQueryProcessor.from_datalog(
                "Answer(x, y) <- knows(x, y).",
                SlidingWindow(10),
                path_impl="magic",
            )


class TestWindowSemantics:
    def test_results_expire_with_window(self):
        p = StreamingGraphQueryProcessor.from_datalog(
            "Answer(x, z) <- a(x, y), b(y, z).", SlidingWindow(5)
        )
        p.push(SGE(1, 2, "a", 0))
        p.push(SGE(2, 3, "b", 3))
        p.advance_to(5)  # valid_at answers performed window movements
        assert p.valid_at(4) == {(1, 3, "Answer")}
        # a expires at 5: join result interval is [3, 5).
        assert p.valid_at(5) == set()

    def test_per_label_windows(self):
        p = StreamingGraphQueryProcessor.from_datalog(
            "Answer(x, z) <- a(x, y), b(y, z).",
            SlidingWindow(5),
            label_windows={"b": SlidingWindow(50)},
        )
        p.push(SGE(1, 2, "a", 0))
        p.push(SGE(2, 3, "b", 1))
        p.advance_to(5)
        # a valid [0,5), b valid [1,51): result [1,5).
        assert p.valid_at(4) == {(1, 3, "Answer")}
        assert p.valid_at(5) == set()

    def test_slide_controls_expiry_granularity(self):
        p = StreamingGraphQueryProcessor.from_datalog(
            "Answer(x, y) <- a(x, y).", SlidingWindow(6, 3)
        )
        p.push(SGE(1, 2, "a", 2))  # exp = floor(2/3)*3 + 6 = 6
        p.advance_to(6)
        assert p.valid_at(5) == {(1, 2, "Answer")}
        assert p.valid_at(6) == set()


class TestExplicitDeletions:
    def test_delete_via_processor(self):
        p = StreamingGraphQueryProcessor.from_datalog(
            "Answer(x, z) <- a(x, y), b(y, z).", SlidingWindow(10)
        )
        p.push(SGE(1, 2, "a", 0))
        p.push(SGE(2, 3, "b", 1))
        p.delete(SGE(1, 2, "a", 0))
        assert p.coverage() == {}

    def test_delete_in_path_query(self):
        p = StreamingGraphQueryProcessor.from_datalog(
            "Answer(x, y) <- k+(x, y) as K.", SlidingWindow(20)
        )
        p.push(SGE(1, 2, "k", 0))
        p.push(SGE(2, 3, "k", 1))
        p.delete(SGE(2, 3, "k", 1))
        p.advance_to(2)
        # From the deletion time on, only (1, 2) remains reachable.
        assert p.valid_at(2) == {(1, 2, "Answer")}


class TestPathsAsFirstClassCitizens:
    def test_answer_carries_materialized_paths(self):
        p = StreamingGraphQueryProcessor.from_datalog(
            "Answer(x, y) <- k+(x, y) as K.", SlidingWindow(20)
        )
        for t, (u, v) in enumerate([(1, 2), (2, 3), (3, 4)]):
            p.push(SGE(u, v, "k", t))
        paths = result_paths(p.results())
        assert paths, "expected materialized paths in results"
        longest = longest_result_path(p.results())
        assert longest.vertices == (1, 2, 3, 4)
        assert longest.labels == ("k", "k", "k")

    def test_paper_query_returns_recent_liker_paths(self, paper_stream):
        p = StreamingGraphQueryProcessor.from_datalog(
            PAPER_QUERY.replace("Answer(u, m) <- Notify(u, m).", "")
            + "Answer(u, v) <- RL+(u, v) as RLP2.",
            SlidingWindow(24),
        )
        for edge in paper_stream:
            p.push(edge)
        paths = result_paths(p.results())
        vertex_seqs = {tuple(rp.vertices) for rp in paths}
        # Example 7: paths y->u, u->v, and the length-2 path y->u->v.
        assert ("y", "u") in vertex_seqs
        assert ("u", "v") in vertex_seqs
        assert ("y", "u", "v") in vertex_seqs


class TestBothPathImpls:
    @pytest.mark.parametrize("impl", ["spath", "negative"])
    def test_paper_example_end_to_end(self, paper_stream, impl):
        p = StreamingGraphQueryProcessor.from_datalog(
            PAPER_QUERY, SlidingWindow(24), path_impl=impl
        )
        for edge in paper_stream:
            p.push(edge)
        assert p.valid_at(30) == {
            ("u", "b", "Answer"),
            ("u", "c", "Answer"),
            ("y", "a", "Answer"),
            ("y", "b", "Answer"),
            ("y", "c", "Answer"),
        }
