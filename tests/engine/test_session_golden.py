"""Golden equivalence: the Table-2 query set through every engine surface.

One stream, the paper's workload queries (Q1-Q7), four evaluation
routes — ``StreamingGraphEngine`` with ``backend="sga"`` and
``backend="dd"``, plus the two legacy shims
(:class:`StreamingGraphQueryProcessor` and :class:`DDEngine`) — must all
produce identical result sets at every epoch-aligned instant.
"""

import warnings

import pytest

from repro.core.windows import SlidingWindow
from repro.engine import (
    EngineConfig,
    StreamingGraphEngine,
    StreamingGraphQueryProcessor,
)
from repro.workloads import QUERIES
from tests.conftest import make_stream

# This module deliberately exercises the deprecated facade shims; the
# suite-wide filter that escalates those DeprecationWarnings to errors
# (pyproject filterwarnings) is relaxed here.
pytestmark = pytest.mark.filterwarnings("default::DeprecationWarning")


WINDOW = SlidingWindow(16, 4)
LABELS = {"a": "a", "b": "b", "c": "c"}
TABLE2_QUERIES = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7")


def pairs(valid_at_keys):
    return {(u, v) for (u, v, _) in valid_at_keys}


@pytest.fixture(scope="module")
def stream():
    return make_stream(9, 70, 6, ("a", "b", "c"), max_gap=2)


@pytest.fixture(scope="module")
def boundaries(stream):
    return sorted({WINDOW.slide_boundary(e.t) for e in stream})


class TestGoldenTable2:
    """``backend="sga"`` vs ``backend="dd"`` vs both legacy shims."""

    @pytest.mark.parametrize("query_name", TABLE2_QUERIES)
    def test_all_surfaces_agree(self, stream, boundaries, query_name):
        query = QUERIES[query_name]
        sgq = query.sgq(LABELS, WINDOW)

        sga_engine = StreamingGraphEngine(EngineConfig(backend="sga"))
        sga = sga_engine.register(sgq, name=query_name)
        dd_engine = StreamingGraphEngine(EngineConfig(backend="dd"))
        dd = dd_engine.register(sgq, name=query_name)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.dd import DDEngine
            from repro.query.parser import parse_rq

            legacy_sga = StreamingGraphQueryProcessor.from_sgq(sgq)
            legacy_dd = DDEngine(parse_rq(query.datalog(LABELS)), WINDOW)

        for edge in stream:
            sga_engine.push(edge)
            dd_engine.push(edge)
            legacy_sga.push(edge)
        legacy_dd.run(stream)

        for boundary in boundaries:
            instant = boundary + WINDOW.slide - 1
            sga_engine.advance_to(instant)
            legacy_sga.advance_to(instant)
            golden = pairs(sga.valid_at(instant))
            assert pairs(dd.valid_at(instant)) == golden, (query_name, instant)
            assert pairs(legacy_sga.valid_at(instant)) == golden, (
                query_name,
                instant,
            )
            assert pairs(legacy_dd._handle.valid_at(instant)) == golden, (
                query_name,
                instant,
            )

    def test_multi_query_single_engine_matches_isolated(self, stream):
        """All seven Table-2 queries registered in ONE engine session
        (sharing whatever they share) match per-query isolated runs."""
        engine = StreamingGraphEngine()
        handles = {
            name: engine.register(
                QUERIES[name].sgq(LABELS, WINDOW), name=name
            )
            for name in TABLE2_QUERIES
        }
        assert engine.sharing_savings() > 0
        engine.push_many(stream)

        final = stream[-1].t
        for name, handle in handles.items():
            solo_engine = StreamingGraphEngine()
            solo = solo_engine.register(QUERIES[name].sgq(LABELS, WINDOW))
            solo_engine.push_many(stream)
            assert handle.valid_at(final) == solo.valid_at(final), name
