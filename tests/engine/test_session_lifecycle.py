"""Live query lifecycle: register/unregister while the stream runs."""

import pytest

from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from repro.dataflow.graph import SinkOp
from repro.engine import StreamingGraphEngine
from repro.errors import PlanError
from repro.query.sgq import SGQ
from tests.conftest import make_stream

W = SlidingWindow(20)

REACH = "Answer(x, y) <- knows+(x, y) as K."
PAIRS = "Answer(x, z) <- knows+(x, y) as K, likes(y, z)."
LIKES = "Answer(x, y) <- likes(x, y)."


def sgq(text, window=W):
    return SGQ.from_text(text, window)


def isolated_results(text, stream, upto=None):
    engine = StreamingGraphEngine()
    handle = engine.register(sgq(text))
    for edge in stream:
        if upto is not None and edge.t > upto:
            break
        engine.push(edge)
    return handle


class TestUnregisterLive:
    def test_survivor_unaffected_and_operators_pruned(self):
        """The acceptance scenario: two closure-sharing queries, one is
        unregistered mid-stream; the survivor's results are unaffected
        while the pruned operators are gone from the dataflow."""
        stream = make_stream(13, 120, 6, ("knows", "likes"), max_gap=2)
        engine = StreamingGraphEngine()
        reach = engine.register(sgq(REACH), name="reach")
        pairs = engine.register(sgq(PAIRS), name="pairs")
        ops_with_both = engine.operator_count()

        half = len(stream) // 2
        for edge in stream[:half]:
            engine.push(edge)
        pairs_results_at_detach = pairs.results()

        engine.unregister("pairs")
        assert not pairs.is_live
        assert engine.query_names == ("reach",)
        # The join tree and the likes wscan/source are pruned; the
        # shared knows+ closure and its wscan/source survive.
        solo = StreamingGraphEngine()
        solo.register(sgq(REACH))
        assert engine.operator_count() == solo.operator_count()
        assert engine.operator_count() < ops_with_both
        assert "likes" not in engine._graph.sources

        for edge in stream[half:]:
            engine.push(edge)

        expected = isolated_results(REACH, stream)
        assert reach.results() == expected.results()
        # Probe past the stream end: perform the window movements first
        # on both engines (valid_at raises HorizonError for unperformed
        # movements below the expiry horizon, same contract as dd).
        final_t = stream[-1].t + 25
        engine.advance_to(final_t)
        expected._engine.advance_to(final_t)
        for t in range(0, final_t, 7):
            assert reach.valid_at(t) == expected.valid_at(t), t
        # The detached handle stays readable, frozen at detach time.
        assert pairs.results() == pairs_results_at_detach

    def test_unregister_unknown(self):
        with pytest.raises(PlanError, match="unknown"):
            StreamingGraphEngine().unregister("zzz")

    def test_handle_unregister_shortcut(self):
        engine = StreamingGraphEngine()
        handle = engine.register(sgq(REACH), name="reach")
        handle.unregister()
        assert engine.query_names == ()

    def test_cache_evicted_so_reregistration_recompiles(self):
        stream = make_stream(5, 40, 6, ("knows",), max_gap=2)
        engine = StreamingGraphEngine()
        engine.register(sgq(REACH), name="a")
        for edge in stream[:20]:
            engine.push(edge)
        engine.unregister("a")
        assert engine.operator_count() == 0
        # Registering the same plan again must compile fresh operators,
        # not splice dangling cached ones.
        revived = engine.register(sgq(REACH), name="a2")
        for edge in stream[20:]:
            engine.push(edge)
        assert engine.operator_count() > 0
        final_t = stream[-1].t
        # Only edges after re-registration contribute.
        expected = StreamingGraphEngine()
        expected_handle = expected.register(sgq(REACH))
        for edge in stream[20:]:
            expected.push(edge)
        assert revived.valid_at(final_t) == expected_handle.valid_at(final_t)

    def test_tap_pins_operators(self):
        engine = StreamingGraphEngine()
        engine.register(sgq(REACH), name="reach")
        tap = engine.tap("knows")
        engine.push(SGE(1, 2, "knows", 0))
        engine.unregister("reach")
        assert engine.operator_count() > 0  # pinned by the tap
        engine.push(SGE(2, 3, "knows", 1))
        assert (2, 3, "knows") in tap.valid_at(1)


class TestRegisterLive:
    def test_register_mid_stream_shares_retained_closure_state(self):
        """A query spliced in mid-stream re-shares the live Δ-PATH
        closure: derivations that *extend* pre-registration edges flow
        to the late query, because the shared operator retains the
        window's state."""
        OTHER = "Answer(x, z) <- knows+(x, y) as K, follows(y, z)."
        engine = StreamingGraphEngine()
        engine.register(sgq(PAIRS), name="pairs")
        engine.push(SGE(1, 2, "knows", 0))
        engine.push(SGE(2, 3, "knows", 1))

        before = engine.operator_count()
        other = engine.register(sgq(OTHER), name="other")
        # The knows+ closure (and its coalescing stage) was re-shared.
        both = StreamingGraphEngine()
        both.register(sgq(PAIRS), name="p")
        both.register(sgq(OTHER), name="o")
        assert engine.operator_count() == both.operator_count()
        assert engine.operator_count() > before

        engine.push(SGE(3, 4, "knows", 2))
        engine.push(SGE(4, 9, "follows", 3))
        # The 1->4 and 2->4 closure pairs need the knows-edges pushed
        # *before* registration — retained in the shared Δ-PATH index.
        assert other.valid_at(3) == {
            (1, 9, "Answer"),
            (2, 9, "Answer"),
            (3, 9, "Answer"),
        }

    def test_register_mid_stream_misses_unshared_history(self):
        """State only non-shared operators would have held is gone: a
        likes-edge pushed before registration never reaches the late
        query (documented limitation)."""
        engine = StreamingGraphEngine()
        engine.register(sgq(REACH), name="reach")
        engine.push(SGE(1, 2, "knows", 0))
        engine.push(SGE(2, 9, "likes", 1))
        pairs = engine.register(sgq(PAIRS), name="pairs")
        engine.advance_to(3)
        assert pairs.valid_at(3) == set()

    def test_reregister_same_plan_reshares_and_backfills(self):
        stream = make_stream(17, 60, 6, ("knows",), max_gap=2)
        engine = StreamingGraphEngine()
        first = engine.register(sgq(REACH), name="a")
        half = len(stream) // 2
        for edge in stream[:half]:
            engine.push(edge)

        again = engine.register(sgq(REACH), name="b")
        # Fully re-shared: only one more sink, zero new operators.
        solo = StreamingGraphEngine()
        solo.register(sgq(REACH))
        assert engine.operator_count() == solo.operator_count()
        # Backfilled: results parity from the moment of registration.
        assert again.results() == first.results()

        for edge in stream[half:]:
            engine.push(edge)
        assert again.results() == first.results()
        assert len(again._sink.events) == len(first._sink.events)

    def test_backfill_replays_through_callback(self):
        received = []
        engine = StreamingGraphEngine()
        engine.register(sgq(REACH), name="a")
        engine.push(SGE(1, 2, "knows", 0))
        engine.register(
            sgq(REACH), name="b", on_result=received.append
        )
        assert [e.sgt.key() for e in received] == [(1, 2, "Answer")]

    def test_register_mid_stream_with_finer_slide_tightens_cadence(self):
        engine = StreamingGraphEngine()
        engine.register(sgq(REACH, SlidingWindow(40, 8)), name="coarse")
        engine.push(SGE(1, 2, "knows", 0))
        assert engine.slide == 8
        engine.register(sgq(LIKES, SlidingWindow(40, 2)), name="fine")
        assert engine.slide == 2
        engine.push(SGE(2, 3, "knows", 20))

    def test_non_dividing_finer_slide_keeps_boundary_grid_aligned(self):
        """Tightening slide 10 -> gcd(10, 4) at boundary 30 must keep
        stepping on a grid that hits 40 — otherwise ordered edges behind
        an overshot boundary would be treated as late."""
        engine = StreamingGraphEngine(late_policy="drop")
        coarse = engine.register(sgq(REACH, SlidingWindow(50, 10)), name="c")
        engine.push(SGE(1, 2, "knows", 35))     # boundary 30
        engine.register(sgq(LIKES, SlidingWindow(40, 4)), name="f")
        assert engine.slide == 2                # gcd(10, 4)
        engine.push(SGE(2, 3, "knows", 43))     # in order: must NOT drop
        assert engine.late_count == 0
        assert (1, 3, "Answer") in coarse.valid_at(43)

    def test_new_sources_align_to_current_watermark(self):
        engine = StreamingGraphEngine()
        engine.register(sgq(REACH), name="reach")
        engine.push(SGE(1, 2, "knows", 30))
        likes = engine.register(sgq(LIKES), name="likes")
        # The new wscan/source chain starts at the current boundary; a
        # subsequent push must not trip a watermark regression.
        engine.push(SGE(7, 8, "likes", 31))
        assert likes.valid_at(31) == {(7, 8, "Answer")}

    def test_sinks_are_private_per_query(self):
        engine = StreamingGraphEngine()
        a = engine.register(sgq(REACH), name="a")
        b = engine.register(sgq(REACH), name="b")
        assert isinstance(a._sink, SinkOp) and isinstance(b._sink, SinkOp)
        assert a._sink is not b._sink
        engine.push(SGE(1, 2, "knows", 0))
        a.clear_results()
        assert a.results() == [] and len(b.results()) == 1
