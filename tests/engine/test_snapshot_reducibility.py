"""Snapshot reducibility (Definition 14): the cornerstone property.

For every query plan, stream, and instant *t*, the snapshot at *t* of the
incremental engine's output must equal the one-time reference evaluation
over the input snapshots at *t*.  We check this for hand-picked plans and
with hypothesis-generated random streams, for both physical PATH
implementations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.operators import (
    Filter,
    Path,
    Pattern,
    PatternInput,
    Predicate,
    Relabel,
    Union,
    WScan,
)
from repro.algebra.reference import evaluate_plan_at
from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from tests.conftest import SessionHarness
from tests.conftest import make_stream, streams_by_label

W = SlidingWindow(15)


def check_reducibility(plan, edges, path_impl, instants=None):
    """Pointwise Definition 14 check.

    Instants are visited in increasing order and the engine's watermark is
    advanced to each before comparing — a persistent query observes wall
    time passing even when no edges arrive, and the negative-tuple PATH
    performs its re-derivations exactly on those window movements.
    """
    processor = SessionHarness(plan, path_impl=path_impl)
    for edge in edges:
        processor.push(edge)
    streams = streams_by_label(edges)
    label = plan.out_label
    last = edges[-1].t if edges else 0
    if instants is None:
        instants = range(0, last + 20)
    for t in sorted(instants):
        processor.advance_to(t)
        expected = {
            (u, v, label) for u, v in evaluate_plan_at(plan, streams, t)
        }
        actual = processor.valid_at(t)
        assert actual == expected, f"snapshot mismatch at t={t} ({path_impl})"


PLANS = {
    "filter": Filter(WScan("a", W), Predicate((("src", "==", 1),))),
    "union": Union(Relabel(WScan("a", W), "o"), Relabel(WScan("b", W), "o"), "o"),
    "pattern2": Pattern(
        (
            PatternInput(WScan("a", W), "x", "y"),
            PatternInput(WScan("b", W), "y", "z"),
        ),
        "x",
        "z",
        "o",
    ),
    "triangle": Pattern(
        (
            PatternInput(WScan("a", W), "x", "y"),
            PatternInput(WScan("b", W), "y", "z"),
            PatternInput(WScan("c", W), "z", "x"),
        ),
        "x",
        "z",
        "o",
    ),
    "tc": Path.over({"a": WScan("a", W)}, "a+", "o"),
    "q2": Path.over({"a": WScan("a", W), "b": WScan("b", W)}, "a b*", "o"),
    "q3": Path.over(
        {"a": WScan("a", W), "b": WScan("b", W), "c": WScan("c", W)},
        "a b* c*",
        "o",
    ),
    "q4": Path.over(
        {"a": WScan("a", W), "b": WScan("b", W), "c": WScan("c", W)},
        "(a b c)+",
        "o",
    ),
    "alt": Path.over(
        {"a": WScan("a", W), "b": WScan("b", W)}, "(a|b)+", "o"
    ),
    "path_over_pattern": Path.over(
        {
            "d": Pattern(
                (
                    PatternInput(WScan("a", W), "x", "y"),
                    PatternInput(WScan("b", W), "y", "z"),
                ),
                "x",
                "z",
                "d",
            )
        },
        "d+",
        "o",
    ),
}


@pytest.mark.parametrize("path_impl", ["spath", "negative"])
@pytest.mark.parametrize("plan_name", sorted(PLANS))
def test_fixed_plans_random_streams(plan_name, path_impl):
    plan = PLANS[plan_name]
    for seed in (11, 22, 33):
        edges = make_stream(seed, 70, 6, ("a", "b", "c"), max_gap=2)
        check_reducibility(plan, edges, path_impl)


@pytest.mark.parametrize("path_impl", ["spath", "negative"])
def test_paper_query_reducibility(paper_stream, path_impl):
    from repro.algebra.translate import sgq_to_sga
    from repro.query.sgq import SGQ
    from tests.conftest import PAPER_QUERY

    plan = sgq_to_sga(SGQ.from_text(PAPER_QUERY, SlidingWindow(24)))
    check_reducibility(plan, paper_stream, path_impl)


# ----------------------------------------------------------------------
# Hypothesis: random streams against the cyclic transitive closure, the
# hardest operator (Δ-PATH with Propagate).
# ----------------------------------------------------------------------
edge_strategy = st.tuples(
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=4),
    st.sampled_from(["a", "b"]),
    st.integers(min_value=0, max_value=3),
)


def to_stream(raw) -> list[SGE]:
    t = 0
    edges = []
    for src, trg, label, gap in raw:
        t += gap
        edges.append(SGE(src, trg, label, t))
    return edges


@given(st.lists(edge_strategy, min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_tc_reducibility_hypothesis(raw):
    edges = to_stream(raw)
    plan = PLANS["tc"]
    filtered = [e for e in edges if e.label == "a"]
    if not filtered:
        return
    check_reducibility(plan, filtered, "spath")


@given(st.lists(edge_strategy, min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_tc_reducibility_negative_hypothesis(raw):
    edges = to_stream(raw)
    plan = PLANS["tc"]
    filtered = [e for e in edges if e.label == "a"]
    if not filtered:
        return
    check_reducibility(plan, filtered, "negative")


@given(st.lists(edge_strategy, min_size=1, max_size=35))
@settings(max_examples=40, deadline=None)
def test_q2_reducibility_hypothesis(raw):
    edges = to_stream(raw)
    check_reducibility(PLANS["q2"], edges, "spath")


@given(st.lists(edge_strategy, min_size=1, max_size=35))
@settings(max_examples=30, deadline=None)
def test_path_over_pattern_hypothesis(raw):
    edges = to_stream(raw)
    check_reducibility(PLANS["path_over_pattern"], edges, "spath")


# ----------------------------------------------------------------------
# Coarser slides: S-PATH stays exact at every instant; both agree at
# slide boundaries.
# ----------------------------------------------------------------------
W_SLIDE = SlidingWindow(16, 4)


@pytest.mark.parametrize("seed", [5, 17, 29])
def test_spath_exact_with_coarse_slide(seed):
    plan = Path.over({"a": WScan("a", W_SLIDE)}, "a+", "o")
    edges = make_stream(seed, 60, 5, ("a",), max_gap=2)
    check_reducibility(plan, edges, "spath")


@pytest.mark.parametrize("seed", [5, 17, 29])
def test_negative_exact_at_boundaries_with_coarse_slide(seed):
    plan = Path.over({"a": WScan("a", W_SLIDE)}, "a+", "o")
    edges = make_stream(seed, 60, 5, ("a",), max_gap=2)
    boundaries = range(0, edges[-1].t + 24, 4)
    check_reducibility(plan, edges, "negative", instants=boundaries)
