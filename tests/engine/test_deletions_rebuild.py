"""Property test: explicit deletions vs from-scratch rebuild.

Contract (Section 6.2.5): after an explicit deletion processed at wall
time τ, for every instant t ≥ τ the engine's output snapshot equals that
of a fresh engine fed the stream without the deleted edges.  (History
before τ is *not* rewritten for PATH state — the paper's operators
invalidate previously reported results only where required.)
"""

import random

import pytest

from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from tests.conftest import SessionHarness

QUERIES_UNDER_TEST = {
    "closure": "Answer(x, y) <- a+(x, y) as A.",
    "join": "Answer(x, z) <- a(x, y), b(y, z).",
    "combined": """
        RL(x, y) <- a+(x, y) as AP, b(x, m).
        Answer(x, m) <- RL(x, m).
    """,
}


def scripted_run(seed: int, query: str, path_impl: str):
    """Interleave inserts and deletions; return (engine, survivors, τ)."""
    rng = random.Random(seed)
    window = SlidingWindow(25)
    engine = SessionHarness.from_datalog(
        query, window, path_impl=path_impl
    )
    live: list[SGE] = []
    survivors: list[SGE] = []
    t = 0
    for _ in range(70):
        t += rng.randint(0, 1)
        if live and rng.random() < 0.25:
            victim = live.pop(rng.randrange(len(live)))
            engine.advance_to(t)
            engine.delete(victim)
            if victim in survivors:
                survivors.remove(victim)
        else:
            label = rng.choice(["a", "b"])
            edge = SGE(rng.randrange(5), rng.randrange(5), label, t)
            engine.push(edge)
            live.append(edge)
            survivors.append(edge)
    return engine, survivors, t


@pytest.mark.parametrize("impl", ["spath", "negative"])
@pytest.mark.parametrize("query_name", sorted(QUERIES_UNDER_TEST))
@pytest.mark.parametrize("seed", [2, 11, 23])
def test_deletions_match_rebuild(impl, query_name, seed):
    query = QUERIES_UNDER_TEST[query_name]
    engine, survivors, tau = scripted_run(seed, query, impl)

    rebuilt = SessionHarness.from_datalog(
        query, SlidingWindow(25), path_impl=impl
    )
    for edge in survivors:
        rebuilt.push(edge)

    horizon = tau + 30
    for t in range(tau, horizon):
        engine.advance_to(t)
        rebuilt.advance_to(t)
        assert engine.valid_at(t) == rebuilt.valid_at(t), (
            f"{query_name}/{impl}/seed{seed}: divergence at t={t}"
        )
