"""Thread-safety of the engine session: lifecycle churn, close races.

The serving layer drives one engine from several threads (worker
threads ingest and register, asyncio handlers read stats, the drain
path closes mid-read).  These tests pin the contracts that makes safe:

* ``register``/``unregister`` racing ``push_many`` never corrupts the
  surviving queries — their result streams stay identical to a
  serially built engine fed the same edges;
* ``close()`` is idempotent and a read racing a process-transport
  close gets either its result or the poisoned ``ExecutionError`` —
  never an ``AttributeError`` from torn-down internals.
"""

import threading

import pytest

from repro.core.tuples import SGE
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.errors import ExecutionError
from repro.ql.query import Query
from tests.conftest import PAPER_QUERY, make_stream

LABELS = ("likes", "follows", "posts")
CHURN_QUERY = "Answer(u,m) <- likes(u,m)."


def _paper_query():
    return Query.datalog(PAPER_QUERY, window=24, slide=1)


def _churn_query():
    # same slide as the survivor: churn must not perturb its windows
    return Query.datalog(CHURN_QUERY, window=24, slide=1)


def _reference(edges, **config):
    engine = StreamingGraphEngine(EngineConfig(**config))
    handle = engine.register(_paper_query(), name="survivor")
    engine.push_many(edges)
    results = handle.results()
    coverage = handle.coverage()
    engine.close()
    return results, coverage


class TestLifecycleChurn:
    @pytest.mark.parametrize(
        "config",
        [{}, {"shards": 2, "execution": "columnar"}],
        ids=["serial", "sharded-inline"],
    )
    def test_churn_does_not_perturb_survivor(self, config):
        edges = make_stream(11, 400, 20, LABELS, max_gap=2)
        engine = StreamingGraphEngine(EngineConfig(**config))
        survivor = engine.register(_paper_query(), name="survivor")
        errors: list[BaseException] = []
        stop = threading.Event()

        def churn(worker: int) -> None:
            name = f"churn{worker}"
            try:
                while not stop.is_set():
                    handle = engine.register(_churn_query(), name=name)
                    handle.stats()
                    engine.unregister(name)
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        def read() -> None:
            try:
                while not stop.is_set():
                    survivor.stats()
                    survivor.results()
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(i,)) for i in range(3)
        ] + [threading.Thread(target=read)]
        for thread in threads:
            thread.start()
        try:
            # the pushing "thread" is this one: batches race the churn
            for start in range(0, len(edges), 40):
                engine.push_many(edges[start : start + 40])
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors, errors[0]

        want_results, want_coverage = _reference(edges, **config)
        assert survivor.results() == want_results
        assert survivor.coverage() == want_coverage
        stats = survivor.stats()
        assert stats.events >= stats.inserts > 0
        assert stats.watermark == engine.watermark
        assert stats.last_advance_at is not None
        engine.close()

    def test_concurrent_registers_all_land(self):
        engine = StreamingGraphEngine(EngineConfig())
        engine.register(_paper_query(), name="survivor")
        errors: list[BaseException] = []

        def add(worker: int) -> None:
            try:
                engine.register(_churn_query(), name=f"extra{worker}")
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        threads = [
            threading.Thread(target=add, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors[0]
        edges = make_stream(3, 100, 10, LABELS, max_gap=2)
        engine.push_many(edges)
        handles = [engine.handle(f"extra{i}") for i in range(8)]
        first = handles[0].results()
        assert all(h.results() == first for h in handles[1:])
        engine.close()


class TestCloseSemantics:
    def test_close_is_idempotent_everywhere(self):
        for config in ({}, {"shards": 2, "execution": "columnar"}):
            engine = StreamingGraphEngine(EngineConfig(**config))
            engine.register(_paper_query(), name="q")
            engine.close()
            engine.close()  # double close: no-op, no error

    def test_serial_engine_readable_after_close(self):
        engine = StreamingGraphEngine(EngineConfig())
        handle = engine.register(_paper_query(), name="q")
        engine.push_many(make_stream(3, 100, 10, LABELS, max_gap=2))
        results = handle.results()
        engine.close()
        assert handle.results() == results  # close is a no-op here

    def test_process_close_poisons_reads(self):
        engine = StreamingGraphEngine(
            EngineConfig(shards=2, shard_transport="process")
        )
        handle = engine.register(_paper_query(), name="q")
        engine.push_many(make_stream(3, 150, 12, LABELS, max_gap=2))
        assert handle.results() is not None  # readable before close
        engine.close()
        engine.close()
        with pytest.raises(ExecutionError, match="closed"):
            handle.results()
        with pytest.raises(ExecutionError, match="closed"):
            engine.push(SGE(0, 1, "likes", 10_000))

    def test_reads_racing_process_close(self):
        """Concurrent readers during close() see results or the
        poisoned error — never an AttributeError/TypeError."""
        engine = StreamingGraphEngine(
            EngineConfig(shards=2, shard_transport="process")
        )
        handle = engine.register(_paper_query(), name="q")
        engine.push_many(make_stream(7, 150, 12, LABELS, max_gap=2))
        unexpected: list[BaseException] = []
        start = threading.Barrier(5)

        def read() -> None:
            try:
                start.wait(timeout=10)
                for _ in range(50):
                    handle.results()
                    handle.stats()
            except ExecutionError:
                pass  # the poisoned close error: expected
            except BaseException as exc:  # pragma: no cover - fail loud
                unexpected.append(exc)

        def close() -> None:
            try:
                start.wait(timeout=10)
                engine.close()
            except BaseException as exc:  # pragma: no cover - fail loud
                unexpected.append(exc)

        threads = [threading.Thread(target=read) for _ in range(4)] + [
            threading.Thread(target=close)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not unexpected, unexpected[0]
