"""The legacy facades: deprecation signalling and kwarg-drift fixes.

Historically ``StreamingGraphQueryProcessor.from_sgq`` / ``from_datalog``
silently dropped ``materialize_paths``, ``coalesce_intermediate`` and
``late_policy``, and ``MultiQueryProcessor`` had no ``late_policy`` at
all.  The shims route everything through one validated
:class:`~repro.engine.session.EngineConfig`, so the full option set now
works from every constructor.
"""

import warnings

import pytest

from repro.core.tuples import SGE, PathPayload
from repro.core.windows import SlidingWindow
from repro.dd import DDEngine
from repro.engine import MultiQueryProcessor, StreamingGraphQueryProcessor
from repro.errors import StreamOrderError
from repro.query.parser import parse_rq
from repro.query.sgq import SGQ

# This module deliberately exercises the deprecated facade shims; the
# suite-wide filter that escalates those DeprecationWarnings to errors
# (pyproject filterwarnings) is relaxed here.
pytestmark = pytest.mark.filterwarnings("default::DeprecationWarning")


W = SlidingWindow(20)
REACH = "Answer(x, y) <- knows+(x, y) as K."


def no_warnings_ctx():
    ctx = warnings.catch_warnings()
    ctx.__enter__()
    warnings.simplefilter("ignore", DeprecationWarning)
    return ctx


class TestDeprecationSignalling:
    def test_processor_warns(self):
        with pytest.warns(DeprecationWarning, match="StreamingGraphEngine"):
            StreamingGraphQueryProcessor.from_datalog(REACH, W)

    def test_multi_warns(self):
        with pytest.warns(DeprecationWarning, match="StreamingGraphEngine"):
            MultiQueryProcessor()

    def test_dd_engine_warns(self):
        with pytest.warns(DeprecationWarning, match="StreamingGraphEngine"):
            DDEngine(parse_rq(REACH), W)

    def test_session_api_does_not_warn(self):
        from repro.engine import StreamingGraphEngine

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine = StreamingGraphEngine()
            engine.register(SGQ.from_text(REACH, W))
            engine.push(SGE(1, 2, "knows", 0))


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestKwargDriftFixed:
    """Options that the pre-session constructors silently dropped."""

    def push_chain(self, processor):
        processor.push(SGE(1, 2, "knows", 0))
        processor.push(SGE(2, 3, "knows", 1))
        return processor

    def test_from_datalog_materialize_paths_honoured(self):
        materialized = self.push_chain(
            StreamingGraphQueryProcessor.from_datalog(REACH, W)
        )
        assert any(
            isinstance(sgt.payload, PathPayload)
            for sgt in materialized.results()
        )
        plain = self.push_chain(
            StreamingGraphQueryProcessor.from_datalog(
                REACH, W, materialize_paths=False
            )
        )
        assert not any(
            isinstance(sgt.payload, PathPayload) for sgt in plain.results()
        )

    def test_from_sgq_materialize_paths_honoured(self):
        plain = self.push_chain(
            StreamingGraphQueryProcessor.from_sgq(
                SGQ.from_text(REACH, W), materialize_paths=False
            )
        )
        assert not any(
            isinstance(sgt.payload, PathPayload) for sgt in plain.results()
        )

    def test_from_datalog_coalesce_intermediate_honoured(self):
        text = (
            "P(x, y) <- knows+(x, y) as K.\n"
            "Answer(x, z) <- P+(x, y) as PP, likes(y, z)."
        )
        with_stage = StreamingGraphQueryProcessor.from_datalog(text, W)
        without = StreamingGraphQueryProcessor.from_datalog(
            text, W, coalesce_intermediate=False
        )
        count = lambda p: sum(  # noqa: E731
            1
            for op in p._engine._graph.operators
            if type(op).__name__ == "CoalesceOp"
        )
        assert count(with_stage) > count(without)

    def test_from_datalog_late_policy_honoured(self):
        strict = StreamingGraphQueryProcessor.from_datalog(
            REACH, W, late_policy="raise"
        )
        strict.push(SGE(1, 2, "knows", 50))
        with pytest.raises(StreamOrderError):
            strict.push(SGE(2, 3, "knows", 3))

    def test_from_gcore_accepts_full_option_set(self):
        text = "CONSTRUCT (x)-[:out]->(y) MATCH (x)-[:a]->(y) ON s WINDOW (10)"
        processor = StreamingGraphQueryProcessor.from_gcore(
            text, materialize_paths=False, late_policy="drop"
        )
        processor.push(SGE(1, 2, "a", 0))
        assert processor.valid_at(0) == {(1, 2, "Answer")}

    def test_multi_late_policy_exists_now(self):
        multi = MultiQueryProcessor(late_policy="drop")
        multi.register("reach", SGQ.from_text(REACH, W))
        multi.push(SGE(1, 2, "knows", 50))
        multi.push(SGE(2, 3, "knows", 3))  # late: dropped, counted
        assert multi.late_count == 1
        assert multi.valid_at("reach", 50) == {(1, 2, "Answer")}
