"""Regression tests pinning the result-draining semantics of
``StreamingGraphQueryProcessor.results()``.

The documented contract: a **non-destructive, repeatable pull** — every
call re-coalesces the full accumulated result set; nothing is drained
implicitly.  ``clear_results()`` is the explicit drain-and-reset.
"""

from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from tests.conftest import SessionHarness

QUERY = "Answer(x, y) <- knows+(x, y) as K."
WINDOW = SlidingWindow(size=100, slide=10)

EDGES = [
    SGE("ada", "bob", "knows", 0),
    SGE("bob", "cyd", "knows", 12),
    SGE("cyd", "dan", "knows", 25),
]


def _make():
    return SessionHarness.from_datalog(QUERY, window=WINDOW)


class TestResultsAreRepeatable:
    def test_two_consecutive_calls_return_equal_lists(self):
        processor = _make()
        for edge in EDGES:
            processor.push(edge)
        first = processor.results()
        second = processor.results()
        assert first == second
        assert len(first) > 0

    def test_pull_does_not_drain(self):
        processor = _make()
        processor.push(EDGES[0])
        assert len(processor.results()) == 1
        # Pulling again still sees the same accumulated results.
        assert len(processor.results()) == 1

    def test_results_grow_monotonically_with_input(self):
        processor = _make()
        processor.push(EDGES[0])
        before = len(processor.results())
        processor.push(EDGES[1])
        processor.push(EDGES[2])
        after = len(processor.results())
        assert after > before

    def test_clear_results_is_the_explicit_drain(self):
        processor = _make()
        for edge in EDGES[:2]:
            processor.push(edge)
        assert processor.results()
        processor.clear_results()
        assert processor.results() == []
        # Streaming continues after the drain: state is preserved, so a
        # new edge joining existing state still derives new results.
        processor.push(EDGES[2])
        assert processor.results()
