"""Vector-mode configuration plumbing: auto resolution, the numpy-less
degrade path, ``columnar_min_run`` promotion into :class:`EngineConfig`,
and the compile-time kernel-selection pass surfaced through ``explain``.

The no-numpy behavior is simulated by monkeypatching the module-level
``HAVE_NUMPY`` flags (the engine must import and run without numpy; the
CI no-numpy leg exercises the real thing).
"""

from __future__ import annotations

import warnings

import pytest

import repro.engine.session as session_mod
from repro.core.nplib import HAVE_NUMPY
from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from repro.dataflow.executor import Executor
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.ql.pipeline import (
    kernel_choices,
    resolve_execution,
    vector_ingress_mode,
)
from repro.ql.query import Query

WINDOW = SlidingWindow(size=6, slide=2)


def _rpq(expr="knows+", **options):
    return Query.rpq(expr, window=6, slide=2, **options)


class TestExecutionResolution:
    def test_auto_resolves_to_concrete_mode(self):
        config = EngineConfig(backend="sga")
        assert config.execution == ("vector" if HAVE_NUMPY else "columnar")

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy installed")
    def test_explicit_modes_accepted(self):
        for execution in ("vector", "columnar", "rows"):
            assert EngineConfig(execution=execution).execution == execution

    def test_unknown_execution_rejected(self):
        with pytest.raises(ValueError, match="unknown execution"):
            EngineConfig(execution="simd")

    def test_auto_degrades_to_columnar_without_numpy(self, monkeypatch):
        monkeypatch.setattr(session_mod, "HAVE_NUMPY", False)
        monkeypatch.setattr(session_mod, "_warned_vector_degrade", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = EngineConfig(backend="sga")
        assert config.execution == "columnar"
        degrade = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(degrade) == 1
        assert "repro[vector]" in str(degrade[0].message)

    def test_degrade_warns_once_per_process(self, monkeypatch):
        monkeypatch.setattr(session_mod, "HAVE_NUMPY", False)
        monkeypatch.setattr(session_mod, "_warned_vector_degrade", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            EngineConfig(backend="sga")
            EngineConfig(backend="sga")
        degrade = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(degrade) == 1

    def test_explicit_vector_errors_without_numpy(self, monkeypatch):
        monkeypatch.setattr(session_mod, "HAVE_NUMPY", False)
        with pytest.raises(ValueError, match="requires numpy"):
            EngineConfig(execution="vector")

    def test_resolve_execution_helper(self):
        assert resolve_execution("columnar") == "columnar"
        assert resolve_execution("auto") == (
            "vector" if HAVE_NUMPY else "columnar"
        )


class TestColumnarMinRun:
    def test_default_matches_executor_class_attribute(self):
        assert EngineConfig().columnar_min_run == Executor.columnar_min_run == 8

    def test_invalid_values_rejected(self):
        for bad in (0, -3, 1.5, True, "8"):
            with pytest.raises(ValueError):
                EngineConfig(columnar_min_run=bad)

    def test_threaded_through_to_executor(self):
        engine = StreamingGraphEngine(
            EngineConfig(backend="sga", columnar_min_run=3)
        )
        engine.register(_rpq(), name="q")
        engine.push(SGE(1, 2, "knows", 0))
        assert engine._executor.columnar_min_run == 3
        # The class default is untouched: the threshold is per session.
        assert Executor.columnar_min_run == 8

    def test_executor_rejects_invalid_override(self):
        from repro.dataflow.graph import DataflowGraph

        with pytest.raises(ValueError, match="columnar_min_run"):
            Executor(DataflowGraph(), slide=1, columnar_min_run=0)

    def test_min_run_one_forces_batches(self):
        """With the threshold at 1 every run flows columnar; results
        must be unchanged from the default threshold."""
        edges = [SGE(1, 2, "knows", 0), SGE(2, 3, "knows", 1), SGE(3, 4, "knows", 2)]
        results = {}
        for min_run in (1, 8):
            engine = StreamingGraphEngine(
                EngineConfig(backend="sga", columnar_min_run=min_run)
            )
            handle = engine.register(_rpq(), name="q")
            for edge in edges:
                engine.push(edge)
            results[min_run] = set(handle.results())
        assert results[1] == results[8]


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector execution requires numpy")
class TestKernelSelection:
    def test_single_label_path_groups(self):
        plan = _rpq().plan()
        assert vector_ingress_mode([plan]) == "grouped"

    def test_multi_label_path_segments(self):
        plan = _rpq("(a b)+").plan()
        assert vector_ingress_mode([plan]) == "segmented"

    def test_plan_options_pairs_accepted(self):
        plan = _rpq("(a b)+").plan()
        assert vector_ingress_mode([(plan, ("negative", False, True))]) == (
            "segmented"
        )

    def test_any_segmented_plan_wins(self):
        grouped = _rpq().plan()
        segmented = _rpq("(a b)+").plan()
        assert vector_ingress_mode([grouped, segmented]) == "segmented"
        assert vector_ingress_mode([grouped]) == "grouped"

    def test_kernel_choices_tags_operators(self):
        from repro.ql.pipeline import compile_plan, logical_plan

        query = _rpq()
        physical = compile_plan(logical_plan(query), "negative", False, True)
        tags = set(kernel_choices(physical, "vector").values())
        assert "wscan.vector" in tags
        assert "path.state-arrays+batched-rederive" in tags

    def test_kernel_choices_columnar_mode(self):
        from repro.ql.pipeline import compile_plan, logical_plan

        query = _rpq()
        physical = compile_plan(logical_plan(query), "negative", False, True)
        tags = set(kernel_choices(physical, "columnar").values())
        assert "wscan.columnar" in tags
        assert "path.row-ingest" in tags
        assert not any(t.endswith(".vector") for t in tags)
        assert not any("state-arrays" in t for t in tags)

    def test_explain_kernels_level(self):
        text = _rpq().explain("kernels")
        assert text.startswith("execution: vector")
        assert "ingress: grouped" in text
        assert "state: arrays" in text
        assert "[kernel=wscan.vector]" in text
        assert "[kernel=path.state-arrays+batched-drain]" in text

    def test_explain_kernels_segmented_header(self):
        text = _rpq("(a b)+").explain("kernels")
        assert "ingress: segmented" in text

    def test_explain_all_includes_kernels_section(self):
        text = _rpq().explain("all")
        assert "-- kernels " in text

    def test_handle_explain_kernels(self):
        engine = StreamingGraphEngine(EngineConfig(backend="sga"))
        handle = engine.register(_rpq(), name="q")
        assert "[kernel=" in handle.explain("kernels")


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector execution requires numpy")
class TestVectorExecutorGates:
    def test_vector_requires_interner(self):
        from repro.dataflow.graph import DataflowGraph

        with pytest.raises(ValueError, match="interner"):
            Executor(DataflowGraph(), slide=1, vector=True)

    def test_tap_disables_grouping(self):
        engine = StreamingGraphEngine(EngineConfig(execution="vector"))
        engine.register(_rpq(), name="q")
        engine.push(SGE(1, 2, "knows", 0))
        assert engine._executor.vector_grouped
        engine.tap("knows")
        assert not engine._executor.vector_grouped

    def test_unregister_reenables_grouping(self):
        engine = StreamingGraphEngine(EngineConfig(execution="vector"))
        engine.register(_rpq(), name="single")
        engine.register(_rpq("(a b)+"), name="multi")
        engine.push(SGE(1, 2, "knows", 0))
        assert not engine._executor.vector_grouped
        engine.unregister("multi")
        assert engine._executor.vector_grouped
