"""Golden parity: sharded execution must match the serial engine.

``EngineConfig(shards=N, shard_transport="inline")`` runs N partition-
parallel shards under the deterministic round-robin scheduler, whose
synchronous exchange makes the global execution order exactly the serial
engine's.  Every Table 1 query on both benchmark streams is held to

* the identical coalesced decoded result set,
* the identical net validity coverage,
* the identical ``valid_at`` snapshot at every epoch's final instant,
* and (a stronger property the runtime guarantees by construction) the
  identical raw insert/retraction counts — each result event lives on
  exactly one shard.

The multiprocessing transport exchanges at slide granularity, which can
reorder within-slide derived deltas; it is held to result-set and
coverage parity on a representative query mix.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import Scale, _stream
from repro.core.windows import HOUR
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.workloads import QUERIES, labels_for

ALL = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7")
SCALE = Scale(n_edges=400, n_vertices=50, window=6 * HOUR, slide=HOUR)


@pytest.fixture(scope="module")
def streams():
    return {ds: _stream(ds, SCALE) for ds in ("so", "snb")}


def _run(
    plan, stream, shards, transport="inline", path_impl="spath", execution="auto"
):
    engine = StreamingGraphEngine(
        EngineConfig(
            path_impl=path_impl,
            materialize_paths=False,
            execution=execution,
            shards=shards,
            shard_transport=transport,
        )
    )
    handle = engine.register(plan, name="q")
    engine.push_many(stream)
    return handle, engine


def _epoch_instants(stream, slide):
    boundaries = sorted({(e.t // slide) * slide for e in stream})
    return [b + slide - 1 for b in boundaries]


class TestShardedGolden:
    @pytest.mark.parametrize("dataset", ["so", "snb"])
    @pytest.mark.parametrize("query_name", ALL)
    def test_four_shards_match_serial(self, streams, dataset, query_name):
        stream = streams[dataset]
        window = SCALE.sliding_window()
        plan = QUERIES[query_name].plan(labels_for(query_name, dataset), window)
        serial, _ = _run(plan, stream, shards=1)
        sharded, _ = _run(plan, stream, shards=4)

        assert set(sharded.results()) == set(serial.results())
        cover_serial = {k: tuple(v) for k, v in serial.coverage().items()}
        cover_sharded = {k: tuple(v) for k, v in sharded.coverage().items()}
        assert cover_sharded == cover_serial
        for t in _epoch_instants(stream, window.slide):
            assert sharded.valid_at(t) == serial.valid_at(t), f"t={t}"

    @pytest.mark.parametrize("dataset", ["so", "snb"])
    @pytest.mark.parametrize("query_name", ["Q1", "Q4", "Q5", "Q6"])
    def test_event_multiset_parity(self, streams, dataset, query_name):
        """Beyond the set/cover surfaces: for plans without shared-scan
        fanout, the merged per-shard sinks carry exactly the serial
        event multiset (each result event lives on exactly one shard).

        Plans where one windowed scan feeds several stateful consumers
        (Q2/Q3/Q7) can interleave the consumers' cross-shard cascades
        differently from the serial fanout order; the difference is
        always net-balanced insert/retraction pairs, which the
        set/cover/valid_at surfaces (asserted above for all seven
        queries) are insensitive to.

        Both runs pin ``execution="columnar"``: the multiset claim is a
        property of the sharding layer under a *fixed* ingress order,
        and the sharded runtime exchanges events in columnar arrival
        order.  Vector mode's grouped ingress intentionally relaxes
        within-slide raw-event order (per-label grouping), which shifts
        coalesce duplicate-drop decisions — the set/cover/valid_at
        surfaces asserted for all seven queries are unaffected.
        """
        stream = streams[dataset]
        window = SCALE.sliding_window()
        plan = QUERIES[query_name].plan(labels_for(query_name, dataset), window)
        serial, _ = _run(plan, stream, shards=1, execution="columnar")
        sharded, _ = _run(plan, stream, shards=4, execution="columnar")
        assert sharded.result_count() == serial.result_count()
        assert sharded.stats().retractions == serial.stats().retractions

    @pytest.mark.parametrize("dataset", ["so", "snb"])
    @pytest.mark.parametrize("query_name", ALL)
    def test_negative_path_impl_parity(self, streams, dataset, query_name):
        """The order-sensitive expand-only PATH operator is the acid
        test for the deterministic scheduler's serial-order claim —
        including its expiry rederivations, whose emissions the runtime
        pre-advances across shards before any same-boundary purge."""
        stream = streams[dataset]
        window = SCALE.sliding_window()
        plan = QUERIES[query_name].plan(labels_for(query_name, dataset), window)
        serial, _ = _run(plan, stream, shards=1, path_impl="negative")
        sharded, _ = _run(plan, stream, shards=3, path_impl="negative")
        assert set(sharded.results()) == set(serial.results())
        assert {k: tuple(v) for k, v in sharded.coverage().items()} == {
            k: tuple(v) for k, v in serial.coverage().items()
        }
        for t in _epoch_instants(stream, window.slide):
            assert sharded.valid_at(t) == serial.valid_at(t), f"t={t}"

    @pytest.mark.parametrize("dataset", ["so", "snb"])
    def test_materialized_paths_survive_sharding(self, streams, dataset):
        """Path payloads stay on the shard that derived them and decode
        through the shared interner at read time."""
        stream = streams[dataset]
        window = SCALE.sliding_window()
        plan = QUERIES["Q1"].plan(labels_for("Q1", dataset), window)
        engine = StreamingGraphEngine(EngineConfig(shards=2))
        handle = engine.register(plan, name="q")
        engine.push_many(stream)
        raw_vertices = {e.src for e in stream} | {e.trg for e in stream}
        results = handle.results()
        assert results
        for sgt in results:
            hops = sgt.payload.edges()
            assert hops, "materialized result must carry its path"
            vertices = [hops[0].src] + [hop.trg for hop in hops]
            assert vertices[0] == sgt.src and vertices[-1] == sgt.trg
            assert set(vertices) <= raw_vertices


class TestProcessTransport:
    """The multiprocessing backend: real workers, slide-level exchange."""

    @pytest.mark.parametrize("query_name", ["Q1", "Q5", "Q7"])
    def test_result_parity(self, streams, query_name):
        stream = streams["snb"]
        window = SCALE.sliding_window()
        plan = QUERIES[query_name].plan(labels_for(query_name, "snb"), window)
        serial, _ = _run(plan, stream, shards=1)
        sharded, engine = _run(plan, stream, shards=2, transport="process")
        try:
            assert set(sharded.results()) == set(serial.results())
            assert {k: tuple(v) for k, v in sharded.coverage().items()} == {
                k: tuple(v) for k, v in serial.coverage().items()
            }
            t = _epoch_instants(stream, window.slide)[-1]
            assert sharded.valid_at(t) == serial.valid_at(t)
        finally:
            engine.close()

    def test_close_is_idempotent_and_poisons_reads(self):
        from repro.core.tuples import SGE
        from repro.core.windows import SlidingWindow
        from repro.errors import ExecutionError
        from repro.query.sgq import SGQ

        with StreamingGraphEngine(
            EngineConfig(shards=2, shard_transport="process")
        ) as engine:
            handle = engine.register(
                SGQ.from_text(
                    "Answer(x, y) <- k+(x, y) as K.", SlidingWindow(20, 4)
                ),
                name="q",
            )
            engine.push(SGE(1, 2, "k", 0))
            assert handle.result_count() == 1
        engine.close()  # idempotent
        with pytest.raises(ExecutionError, match="closed"):
            handle.results()
        with pytest.raises(ExecutionError, match="closed"):
            engine.push(SGE(2, 3, "k", 1))

    def test_lifecycle_restrictions(self):
        from repro.core.tuples import SGE
        from repro.core.windows import SlidingWindow
        from repro.errors import ExecutionError
        from repro.query.sgq import SGQ

        engine = StreamingGraphEngine(
            EngineConfig(shards=2, shard_transport="process")
        )
        query = SGQ.from_text(
            "Answer(x, y) <- k+(x, y) as K.", SlidingWindow(20, 4)
        )
        with pytest.raises(ExecutionError, match="inline"):
            engine.register(query, name="cb", on_result=lambda e: None)
        handle = engine.register(query, name="q")
        engine.push(SGE(1, 2, "k", 0))
        try:
            with pytest.raises(ExecutionError, match="inline"):
                engine.register(query, name="late")
            with pytest.raises(ExecutionError, match="inline"):
                handle.unregister()
            assert (1, 2, "Answer") in handle.valid_at(0)
        finally:
            engine.close()
