"""Golden tests: engine.tap() under sharding vs the serial engine.

The merged tap (per-shard sinks stitched in global arrival order) must
be indistinguishable from a serial tap for every read surface:

* **replicated** intermediate streams (RL, RLP — and raw input labels)
  replay the exact serial event sequence, signs included;
* **partitioned** streams (the FP closure output) divide one push's
  work across shards, so the guarantee is multiset equality of events
  plus identical ``results()`` / ``coverage()`` / ``valid_at``.
"""

import pytest

from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.errors import ExecutionError, PlanError
from repro.ql.query import Query
from tests.conftest import PAPER_QUERY, make_stream

LABELS = ("likes", "follows", "posts")


def _engine(shards: int) -> StreamingGraphEngine:
    engine = StreamingGraphEngine(
        EngineConfig(shards=shards, execution="columnar")
    )
    engine.register(
        Query.datalog(PAPER_QUERY, window=24, slide=1), name="paper"
    )
    return engine


def _event_key(event):
    sgt = event.sgt
    payload = getattr(sgt.payload, "vertices", None)
    return (
        sgt.interval.ts,
        sgt.interval.exp,
        str(sgt.src),
        str(sgt.trg),
        event.sign,
        str(payload),
    )


def _signed(events):
    return [(e.sign, e.sgt) for e in events]


@pytest.fixture(scope="module")
def stream():
    return make_stream(11, 500, 20, LABELS, max_gap=2)


class TestShardedTapGolden:
    @pytest.mark.parametrize("label", ["RL", "RLP", "likes"])
    def test_replicated_streams_replay_serial_order(self, stream, label):
        serial, sharded = _engine(1), _engine(2)
        ref, tap = serial.tap(label), sharded.tap(label)
        serial.push_many(stream)
        sharded.push_many(stream)
        assert _signed(tap.events) == _signed(ref.events)
        assert tap.insert_count == ref.insert_count
        assert tap.results() == ref.results()
        assert tap.coverage() == ref.coverage()
        serial.close()
        sharded.close()

    def test_partitioned_stream_multiset_parity(self, stream):
        serial, sharded = _engine(1), _engine(2)
        ref, tap = serial.tap("FP"), sharded.tap("FP")
        serial.push_many(stream)
        sharded.push_many(stream)
        # FP is the partitioned closure output: shards divide one push's
        # work, so ordering is shard-major — compare as a multiset.
        assert sorted(map(_event_key, tap.events)) == sorted(
            map(_event_key, ref.events)
        )
        assert tap.insert_count == ref.insert_count
        assert tap.results() == ref.results()
        assert tap.coverage() == ref.coverage()
        serial.close()
        sharded.close()

    @pytest.mark.parametrize("label", ["RL", "FP"])
    def test_valid_at_matches_serial(self, stream, label):
        serial, sharded = _engine(1), _engine(2)
        ref, tap = serial.tap(label), sharded.tap(label)
        serial.push_many(stream)
        sharded.push_many(stream)
        horizon = max(e.t for e in stream)
        for t in range(0, horizon, 7):
            assert tap.valid_at(t) == ref.valid_at(t), f"t={t}"
        serial.close()
        sharded.close()

    def test_tap_collects_from_call_time(self, stream):
        serial, sharded = _engine(1), _engine(2)
        half = len(stream) // 2
        serial.push_many(stream[:half])
        sharded.push_many(stream[:half])
        ref, tap = serial.tap("RL"), sharded.tap("RL")
        serial.push_many(stream[half:])
        sharded.push_many(stream[half:])
        assert _signed(tap.events) == _signed(ref.events)
        serial.close()
        sharded.close()

    def test_callbacks_fire_in_merged_order(self, stream):
        serial, sharded = _engine(1), _engine(2)
        ref, tap = serial.tap("RL"), sharded.tap("RL")
        ref_seen, tap_seen = [], []
        ref.set_callback(lambda e: ref_seen.append((e.sign, e.sgt)))
        tap.set_callback(lambda e: tap_seen.append((e.sign, e.sgt)))
        serial.push_many(stream)
        sharded.push_many(stream)
        assert ref_seen  # the workload actually derived RL edges
        assert tap_seen == ref_seen
        serial.close()
        sharded.close()

    def test_three_shards_agree_too(self, stream):
        serial, sharded = _engine(1), _engine(3)
        ref, tap = serial.tap("RL"), sharded.tap("RL")
        serial.push_many(stream)
        sharded.push_many(stream)
        assert _signed(tap.events) == _signed(ref.events)
        serial.close()
        sharded.close()


class TestShardedTapErrors:
    def test_unknown_label_raises_plan_error(self):
        engine = _engine(2)
        with pytest.raises(PlanError, match="zzz"):
            engine.tap("zzz")
        engine.close()

    def test_process_transport_rejects_tap(self):
        engine = StreamingGraphEngine(
            EngineConfig(shards=2, shard_transport="process")
        )
        engine.register(
            Query.datalog(PAPER_QUERY, window=24, slide=1), name="paper"
        )
        try:
            with pytest.raises(ExecutionError, match="inline"):
                engine.tap("RL")
        finally:
            engine.close()

    def test_clear_resets_merged_parts(self, stream):
        engine = _engine(2)
        tap = engine.tap("RL")
        engine.push_many(stream)
        assert tap.insert_count > 0
        tap.clear()
        assert tap.insert_count == 0
        assert list(tap.events) == []
        engine.close()
