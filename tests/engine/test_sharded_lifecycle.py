"""Live query lifecycle × columnar execution × sharded execution.

The regression the satellite sweep pins: ``unregister`` followed by
re-``register`` of the same query *mid-stream* — under the default
columnar execution and under ``shards > 1`` (inline transport) — leaves
both the surviving query and the re-registered handle bit-identical to a
fresh engine fed the corresponding stream suffix.
"""

from __future__ import annotations

import pytest

from repro.core.windows import SlidingWindow
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.query.sgq import SGQ
from tests.conftest import make_stream

REACH = "Answer(x, y) <- knows+(x, y) as K."
PAIRS = "Answer(x, z) <- knows(x, y), likes(y, z)."
W = SlidingWindow(24, 6)


def sgq(text):
    return SGQ.from_text(text, W)


def _fresh(text, stream, config):
    engine = StreamingGraphEngine(config)
    handle = engine.register(sgq(text), name="ref")
    engine.push_many(stream)
    return handle


def _signature(handle):
    return (
        set(handle.results()),
        {k: tuple(v) for k, v in handle.coverage().items()},
    )


@pytest.mark.parametrize(
    "config",
    [
        EngineConfig(execution="columnar"),
        EngineConfig(shards=2),
        EngineConfig(shards=3),
    ],
    ids=["columnar", "shards2", "shards3"],
)
class TestUnregisterReregisterMidStream:
    def test_survivor_and_revived_match_fresh_engines(self, config):
        stream = make_stream(7, 60, 5, ("knows", "likes"), max_gap=2)
        half = len(stream) // 2
        cut_t = stream[half - 1].t

        engine = StreamingGraphEngine(config)
        survivor = engine.register(sgq(REACH), name="reach")
        doomed = engine.register(sgq(PAIRS), name="pairs")
        for edge in stream[:half]:
            engine.push(edge)
        frozen = _signature(doomed)

        doomed.unregister()
        assert not doomed.is_live
        revived = engine.register(sgq(PAIRS), name="pairs2")
        for edge in stream[half:]:
            engine.push(edge)

        # The survivor saw the whole stream: bit-identical to a fresh
        # engine fed everything.
        expected_survivor = _fresh(REACH, stream, config)
        assert _signature(survivor) == _signature(expected_survivor)

        # The re-registered query starts from the retained shared window
        # state (the knows/likes scans are still live through the
        # survivor's plan cache? no — PAIRS shares no operators with
        # REACH beyond the knows scan), so compare against a fresh
        # engine fed only the suffix: with no shared stateful operators
        # retaining PAIRS state, results must match the suffix run.
        expected_revived = _fresh(PAIRS, stream[half:], config)
        assert _signature(revived) == _signature(expected_revived)

        # The detached handle stays readable, frozen at detach time.
        assert _signature(doomed) == frozen

    def test_unregister_then_identical_reregistration_recompiles(self, config):
        stream = make_stream(5, 48, 5, ("knows",), max_gap=2)
        half = len(stream) // 2
        engine = StreamingGraphEngine(config)
        first = engine.register(sgq(REACH), name="a")
        for edge in stream[:half]:
            engine.push(edge)
        engine.unregister("a")
        assert engine.operator_count() == 0
        revived = engine.register(sgq(REACH), name="a2")
        for edge in stream[half:]:
            engine.push(edge)
        assert engine.operator_count() > 0
        expected = _fresh(REACH, stream[half:], config)
        assert _signature(revived) == _signature(expected)
        assert first.results() is not None  # old handle still readable


@pytest.mark.parametrize(
    "config",
    [EngineConfig(execution="columnar"), EngineConfig(shards=2)],
    ids=["columnar", "shards2"],
)
class TestFullPlanReShareBackfill:
    def test_late_twin_backfills_results(self, config):
        """Registering an identical plan mid-stream re-shares the whole
        compiled dataflow and backfills the new sink from the richest
        donor, so results() parity is immediate."""
        stream = make_stream(6, 48, 5, ("knows",), max_gap=2)
        half = len(stream) // 2
        engine = StreamingGraphEngine(config)
        original = engine.register(sgq(REACH), name="a")
        for edge in stream[:half]:
            engine.push(edge)
        twin = engine.register(sgq(REACH), name="twin")
        assert _signature(twin) == _signature(original)
        for edge in stream[half:]:
            engine.push(edge)
        assert _signature(twin) == _signature(original)


class TestShardedCallbacks:
    def test_inline_callbacks_match_serial(self):
        stream = make_stream(6, 48, 5, ("knows",), max_gap=2)

        def run(config):
            events = []
            engine = StreamingGraphEngine(config)
            engine.register(
                sgq(REACH), name="q",
                on_result=lambda e: events.append(
                    (e.sgt.src, e.sgt.trg, e.sgt.label, e.sgt.interval, e.sign)
                ),
            )
            engine.push_many(stream)
            return events

        serial = run(EngineConfig())
        sharded = run(EngineConfig(shards=3))
        # Push delivery decodes through the interner and fires exactly
        # once per result event; the multiset matches serial delivery.
        assert sorted(serial, key=repr) == sorted(sharded, key=repr)
