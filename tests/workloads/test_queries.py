"""Unit tests for the Q1-Q7 workload templates (Table 1)."""

import pytest

from repro.algebra import evaluate_plan_at
from repro.algebra.operators import Path, Pattern, Relabel
from repro.core.windows import SlidingWindow
from repro.errors import PlanError
from repro.workloads import (
    QUERIES,
    labels_for,
    q4_plan_space,
    rpq_direct_plan,
)
from tests.conftest import make_stream, streams_by_label

W = SlidingWindow(15)
ABC = {"a": "a", "b": "b", "c": "c"}


class TestTemplates:
    def test_all_seven_queries_defined(self):
        assert sorted(QUERIES) == ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7"]

    def test_datalog_instantiation(self):
        text = QUERIES["Q6"].datalog(
            {"a": "knows", "b": "likes", "c": "hasCreator"}
        )
        assert "knows+(x, y) as AP" in text
        assert "likes(x, m)" in text

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_plans_build_for_both_datasets(self, name):
        for dataset in ("so", "snb"):
            plan = QUERIES[name].plan(labels_for(name, dataset), W)
            assert plan.out_label == "Answer"

    def test_rpq_flags(self):
        assert QUERIES["Q1"].is_rpq
        assert QUERIES["Q4"].is_rpq
        assert not QUERIES["Q5"].is_rpq
        assert not QUERIES["Q7"].is_rpq


class TestLabelMaps:
    def test_so_uses_three_labels(self):
        labels = labels_for("Q4", "so")
        assert set(labels.values()) == {"a2q", "c2q", "c2a"}

    def test_snb_q4_composes_a_cycle(self):
        # knows: P->P, likes: P->M, hasCreator: M->P — composable under +.
        labels = labels_for("Q4", "snb")
        assert labels == {"a": "knows", "b": "likes", "c": "hasCreator"}

    def test_unknown_dataset_rejected(self):
        with pytest.raises(PlanError):
            labels_for("Q1", "dblp")


class TestDirectPlans:
    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4"])
    def test_direct_plan_is_single_path(self, name):
        plan = rpq_direct_plan(name, ABC, W)
        assert isinstance(plan, Relabel)
        assert isinstance(plan.child, Path)

    def test_non_rpq_rejected(self):
        with pytest.raises(PlanError):
            rpq_direct_plan("Q5", ABC, W)

    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4"])
    def test_direct_equals_canonical(self, name):
        canonical = QUERIES[name].plan(ABC, W)
        direct = rpq_direct_plan(name, ABC, W)
        edges = make_stream(13, 60, 6, ("a", "b", "c"), max_gap=2)
        streams = streams_by_label(edges)
        for t in range(0, 80, 4):
            assert evaluate_plan_at(canonical, streams, t) == evaluate_plan_at(
                direct, streams, t
            ), f"{name} diverges at t={t}"


class TestQ4PlanSpace:
    def test_four_plans(self):
        plans = q4_plan_space(ABC, W)
        assert sorted(plans) == ["P1", "P2", "P3", "SGA"]

    def test_canonical_is_loop_caching(self):
        plans = q4_plan_space(ABC, W)
        sga = plans["SGA"]
        assert isinstance(sga, Relabel)
        path = sga.child
        assert isinstance(path, Path)
        # One derived-label input produced by a PATTERN join.
        assert len(path.inputs) == 1
        assert isinstance(path.inputs[0][1], Pattern)

    def test_p1_inlines_everything(self):
        plans = q4_plan_space(ABC, W)
        p1 = plans["P1"].child
        assert isinstance(p1, Path)
        assert set(p1.input_map) == {"a", "b", "c"}

    def test_all_plans_equivalent(self):
        plans = q4_plan_space(ABC, W)
        edges = make_stream(21, 60, 6, ("a", "b", "c"), max_gap=2)
        streams = streams_by_label(edges)
        for t in range(0, 80, 5):
            answers = {
                name: evaluate_plan_at(plan, streams, t)
                for name, plan in plans.items()
            }
            assert len(set(map(frozenset, answers.values()))) == 1, t


class TestEndToEndOnEngine:
    """Workload plans must run on the physical engine and agree with the
    reference (a slice of what the snapshot-reducibility suite checks,
    but through the workload API)."""

    @pytest.mark.parametrize("name", ["Q2", "Q4", "Q6"])
    def test_workload_runs(self, name):
        from tests.conftest import SessionHarness

        plan = QUERIES[name].plan(ABC, W)
        processor = SessionHarness(plan)
        edges = make_stream(5, 50, 5, ("a", "b", "c"), max_gap=2)
        for edge in edges:
            processor.push(edge)
        streams = streams_by_label(edges)
        t = edges[-1].t
        expected = {
            (u, v, "Answer")
            for u, v in evaluate_plan_at(plan, streams, t)
        }
        assert processor.valid_at(t) == expected
