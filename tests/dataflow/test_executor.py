"""Unit tests for the event-time executor."""

import pytest

from repro.core.tuples import SGE
from repro.dataflow.executor import Executor, RunStats, SlideStats
from repro.dataflow.graph import DataflowGraph, PhysicalOperator, SinkOp


class _WatermarkRecorder(PhysicalOperator):
    def __init__(self):
        super().__init__("recorder")
        self.advances: list[int] = []
        self.events: list = []

    def on_event(self, port, event):
        self.events.append(event)
        self.emit(event)

    def on_advance(self, t):
        self.advances.append(t)


def build(slide=10):
    graph = DataflowGraph()
    source = graph.add_source("a")
    recorder = _WatermarkRecorder()
    sink = SinkOp()
    graph.add(recorder)
    graph.add(sink)
    graph.connect(source, recorder, 0)
    graph.connect(recorder, sink, 0)
    return Executor(graph, slide), recorder, sink


class TestBoundaries:
    def test_watermark_advances_before_edges(self):
        executor, recorder, _ = build(slide=10)
        executor.push_edge(SGE(1, 2, "a", 25))
        assert recorder.advances == [20]

    def test_every_boundary_visited(self):
        # The window slides at *every* multiple of beta, even without
        # arrivals in between (this is what the negative-tuple operator's
        # correctness relies on).
        executor, recorder, _ = build(slide=10)
        executor.push_edge(SGE(1, 2, "a", 5))
        executor.push_edge(SGE(1, 2, "a", 47))
        assert recorder.advances == [0, 10, 20, 30, 40]

    def test_advance_to_without_edges(self):
        executor, recorder, _ = build(slide=10)
        executor.advance_to(35)
        assert recorder.advances == [30]

    def test_invalid_slide_rejected(self):
        with pytest.raises(ValueError):
            Executor(DataflowGraph(), 0)


class TestRun:
    def test_stats_per_slide(self):
        executor, _, sink = build(slide=10)
        edges = [SGE(1, 2, "a", t) for t in (0, 3, 12, 25, 27)]
        stats = executor.run(edges)
        assert stats.total_edges == 5
        assert [s.boundary for s in stats.slides] == [0, 10, 20]
        assert [s.edges for s in stats.slides] == [2, 1, 2]
        assert stats.total_seconds > 0
        assert len(sink.events) == 5

    def test_throughput_positive(self):
        executor, _, _ = build()
        stats = executor.run([SGE(1, 2, "a", t) for t in range(30)])
        assert stats.throughput > 0


class TestRunStats:
    def test_tail_latency_empty(self):
        assert RunStats().tail_latency() == 0.0

    def test_tail_latency_p99_picks_max_region(self):
        stats = RunStats(
            slides=[SlideStats(boundary=i, seconds=s) for i, s in
                    enumerate([0.001] * 99 + [5.0])]
        )
        assert stats.tail_latency() == 5.0

    def test_median(self):
        stats = RunStats(
            slides=[SlideStats(boundary=i, seconds=float(i)) for i in range(10)]
        )
        assert stats.tail_latency(0.5) == 5.0

    def test_zero_seconds_infinite_throughput(self):
        assert RunStats(total_edges=10).throughput == float("inf")
