"""Out-of-order input meeting the batched executor's watermark.

The documented policy (see :mod:`repro.dataflow.executor`):

* a late edge — one whose slide boundary precedes the current watermark
  boundary — is **never reassigned to the current slide**: WSCAN derives
  its validity interval from the edge's own timestamp;
* ``late_policy="allow"`` (default) processes it with that timestamp,
* ``late_policy="drop"`` discards and counts it,
* ``late_policy="raise"`` raises :class:`~repro.errors.StreamOrderError`;
* the watermark itself never regresses;
* bounded disorder composes via :func:`repro.dataflow.disorder.reorder`,
  which restores timestamp order upstream of the executor.
"""

import pytest

from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from repro.dataflow.disorder import reorder
from repro.dataflow.executor import Executor
from repro.dataflow.graph import DataflowGraph, PhysicalOperator, SinkOp
from tests.conftest import SessionHarness
from repro.errors import StreamOrderError

WINDOW = SlidingWindow(size=40, slide=10)


class _Recorder(PhysicalOperator):
    def __init__(self):
        super().__init__("recorder")
        self.advances: list[int] = []

    def on_event(self, port, event):
        self.emit(event)

    def on_advance(self, t):
        self.advances.append(t)


def _build(slide=10, batch_size=None, late_policy="allow"):
    from repro.physical.wscan import WScanOp

    graph = DataflowGraph()
    source = graph.add_source("a")
    wscan = WScanOp("a", WINDOW)
    recorder = _Recorder()
    sink = SinkOp()
    graph.add(wscan)
    graph.add(recorder)
    graph.add(sink)
    graph.connect(source, wscan, 0)
    graph.connect(wscan, recorder, 0)
    graph.connect(recorder, sink, 0)
    executor = Executor(
        graph, slide, batch_size=batch_size, late_policy=late_policy
    )
    return executor, recorder, sink


class TestLatePolicyAllow:
    @pytest.mark.parametrize("batch_size", [None, 1, 4])
    def test_late_edge_keeps_own_slide_interval(self, batch_size):
        """A late sge is not silently merged into the wrong slide: its
        validity interval comes from its own timestamp (Definition 16)."""
        executor, recorder, sink = _build(batch_size=batch_size)
        executor.run([SGE(1, 2, "a", 25), SGE(3, 4, "a", 27), SGE(5, 6, "a", 4)])
        intervals = {(e.sgt.src, e.sgt.interval.ts, e.sgt.interval.exp)
                     for e in sink.events}
        # The late edge (t=4) carries the window interval of t=4 — not
        # an interval derived from the slide at 20.
        assert (5, 4, WINDOW.interval_for(4).exp) in intervals
        assert WINDOW.interval_for(4).exp == 40

    @pytest.mark.parametrize("batch_size", [None, 2])
    def test_watermark_never_regresses(self, batch_size):
        executor, recorder, _ = _build(batch_size=batch_size)
        executor.run([SGE(1, 2, "a", 25), SGE(5, 6, "a", 4)])
        assert recorder.advances == sorted(recorder.advances)
        assert recorder.advances[-1] == 20


class TestLatePolicyDrop:
    @pytest.mark.parametrize("batch_size", [None, 1, 4])
    def test_late_edges_dropped_and_counted(self, batch_size):
        executor, _, sink = _build(batch_size=batch_size, late_policy="drop")
        stats = executor.run(
            [SGE(1, 2, "a", 25), SGE(5, 6, "a", 4), SGE(7, 8, "a", 26)]
        )
        assert executor.late_count == 1
        assert {e.sgt.src for e in sink.events} == {1, 7}
        assert stats.total_edges == 2

    def test_push_edge_respects_drop(self):
        executor, _, sink = _build(late_policy="drop")
        executor.push_edge(SGE(1, 2, "a", 25))
        executor.push_edge(SGE(5, 6, "a", 4))
        assert executor.late_count == 1
        assert len(sink.events) == 1

    def test_same_slide_disorder_is_not_late(self):
        # Within one slide, arrival order may jitter freely.
        executor, _, sink = _build(batch_size=4, late_policy="drop")
        executor.run([SGE(1, 2, "a", 14), SGE(3, 4, "a", 11), SGE(5, 6, "a", 13)])
        assert executor.late_count == 0
        assert len(sink.events) == 3


class TestLatePolicyRaise:
    @pytest.mark.parametrize("batch_size", [None, 1])
    def test_late_edge_raises(self, batch_size):
        executor, _, _ = _build(batch_size=batch_size, late_policy="raise")
        with pytest.raises(StreamOrderError):
            executor.run([SGE(1, 2, "a", 25), SGE(5, 6, "a", 4)])

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            _build(late_policy="what")


class TestDisorderBufferComposition:
    def test_reorder_restores_batched_equivalence(self):
        """An out-of-order stream pushed through ``reorder`` produces the
        same results as the in-order stream, at every batch size."""
        query = "Answer(x, y) <- knows+(x, y) as K."
        window = SlidingWindow(size=30, slide=5)
        in_order = [
            SGE("a", "b", "knows", 2),
            SGE("b", "c", "knows", 7),
            SGE("c", "d", "knows", 9),
            SGE("d", "a", "knows", 14),
            SGE("a", "e", "knows", 21),
        ]
        shuffled = [in_order[i] for i in (1, 0, 3, 2, 4)]

        reference = SessionHarness.from_datalog(query, window=window)
        reference.run(in_order)
        expected = reference.coverage()

        for batch_size in (None, 1, 3):
            processor = SessionHarness.from_datalog(
                query, window=window, batch_size=batch_size
            )
            processor.run(reorder(shuffled, lateness=10))
            assert processor.coverage() == expected

    def test_reorder_drops_beyond_lateness(self):
        edges = [SGE(1, 2, "l", 30), SGE(1, 3, "l", 2)]
        released = list(reorder(edges, lateness=5))
        assert [e.t for e in released] == [30]
