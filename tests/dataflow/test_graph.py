"""Unit tests for the dataflow substrate (graph, events, watermarks)."""

import pytest

from repro.core.intervals import Interval
from repro.core.tuples import SGT
from repro.dataflow.graph import (
    DELETE,
    INSERT,
    DataflowGraph,
    Event,
    PhysicalOperator,
    SinkOp,
    SourceOp,
)
from repro.errors import ExecutionError


class _Passthrough(PhysicalOperator):
    def on_event(self, port, event):
        self.emit(event)


def sgt(src, trg, ts, exp, label="l"):
    return SGT(src, trg, label, Interval(ts, exp))


class TestEvents:
    def test_signs(self):
        assert Event(sgt(1, 2, 0, 5)).sign == INSERT
        assert Event(sgt(1, 2, 0, 5), DELETE).sign == DELETE

    def test_invalid_sign_rejected(self):
        with pytest.raises(ExecutionError):
            Event(sgt(1, 2, 0, 5), 3)


class TestGraphWiring:
    def test_source_routing(self):
        graph = DataflowGraph()
        source = graph.add_source("a")
        sink = SinkOp()
        graph.add(sink)
        graph.connect(source, sink, 0)
        graph.push("a", Event(sgt(1, 2, 0, 5, "a")))
        graph.push("zzz", Event(sgt(1, 2, 0, 5, "zzz")))  # discarded
        assert len(sink.events) == 1

    def test_add_source_idempotent(self):
        graph = DataflowGraph()
        assert graph.add_source("a") is graph.add_source("a")

    def test_duplicate_source_rejected(self):
        graph = DataflowGraph()
        graph.add_source("a")
        with pytest.raises(ExecutionError):
            graph.add(SourceOp("a"))

    def test_connect_requires_membership(self):
        graph = DataflowGraph()
        op = _Passthrough("p")
        with pytest.raises(ExecutionError):
            graph.connect(op, SinkOp())

    def test_fan_out(self):
        graph = DataflowGraph()
        source = graph.add_source("a")
        sinks = [SinkOp(f"s{i}") for i in range(3)]
        for sink in sinks:
            graph.add(sink)
            graph.connect(source, sink, 0)
        graph.push("a", Event(sgt(1, 2, 0, 5, "a")))
        assert all(len(s.events) == 1 for s in sinks)

    def test_same_producer_two_ports(self):
        received = []

        class Recorder(PhysicalOperator):
            def on_event(self, port, event):
                received.append(port)

        graph = DataflowGraph()
        source = graph.add_source("a")
        recorder = Recorder("r")
        graph.add(recorder)
        graph.connect(source, recorder, 0)
        graph.connect(source, recorder, 1)
        graph.push("a", Event(sgt(1, 2, 0, 5, "a")))
        assert sorted(received) == [0, 1]


class TestWatermarks:
    def test_regression_rejected(self):
        op = _Passthrough("p")
        op._register_input(0)
        op.receive_watermark(0, 5)
        with pytest.raises(ExecutionError):
            op.receive_watermark(0, 3)

    def test_duplicate_watermark_no_reaction(self):
        calls = []

        class Recorder(_Passthrough):
            def on_advance(self, t):
                calls.append(t)

        op = Recorder("r")
        op._register_input(0)
        op.receive_watermark(0, 5)
        op.receive_watermark(0, 5)
        assert calls == [5]

    def test_diamond_waits_for_slowest_branch(self):
        graph = DataflowGraph()
        source = graph.add_source("a")
        left = _Passthrough("left")
        right = _Passthrough("right")
        join = _Passthrough("join")
        sink = SinkOp()
        for op in (left, right, join, sink):
            graph.add(op)
        graph.connect(source, left, 0)
        graph.connect(source, right, 0)
        graph.connect(left, join, 0)
        graph.connect(right, join, 1)
        graph.connect(join, sink, 0)
        graph.push_watermark(7)
        assert join.watermark == 7
        assert sink.watermark == 7


class TestSink:
    def test_coverage_counting_semantics(self):
        sink = SinkOp()
        sink.on_event(0, Event(sgt(1, 2, 0, 10)))
        sink.on_event(0, Event(sgt(1, 2, 5, 15)))
        sink.on_event(0, Event(sgt(1, 2, 0, 10), DELETE))
        assert sink.coverage()[(1, 2, "l")] == [Interval(5, 15)]

    def test_valid_at(self):
        sink = SinkOp()
        sink.on_event(0, Event(sgt(1, 2, 0, 10)))
        assert sink.valid_at(5) == {(1, 2, "l")}
        assert sink.valid_at(10) == set()

    def test_results_coalesced(self):
        sink = SinkOp()
        sink.on_event(0, Event(sgt(1, 2, 0, 10)))
        sink.on_event(0, Event(sgt(1, 2, 8, 20)))
        results = sink.results()
        assert len(results) == 1
        assert results[0].interval == Interval(0, 20)

    def test_callback(self):
        seen = []
        sink = SinkOp(callback=seen.append)
        event = Event(sgt(1, 2, 0, 10))
        sink.on_event(0, event)
        assert seen == [event]

    def test_clear(self):
        sink = SinkOp()
        sink.on_event(0, Event(sgt(1, 2, 0, 10)))
        sink.clear()
        assert sink.events == []
        assert sink.coverage() == {}
