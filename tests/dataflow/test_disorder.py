"""Unit and property tests for bounded out-of-order handling."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from repro.dataflow.disorder import DisorderBuffer, reorder
from repro.errors import StreamOrderError


def e(t, i=0):
    return SGE(i, i + 1, "l", t)


class TestBuffer:
    def test_in_order_released_with_lag(self):
        buffer = DisorderBuffer(lateness=5)
        assert buffer.push(e(0)) == []
        assert buffer.push(e(3)) == []
        released = buffer.push(e(7))  # watermark -> 2: releases t=0
        assert [x.t for x in released] == [0]

    def test_zero_lateness_immediate(self):
        buffer = DisorderBuffer(lateness=0)
        assert [x.t for x in buffer.push(e(4))] == [4]

    def test_out_of_order_within_bound(self):
        buffer = DisorderBuffer(lateness=10)
        buffer.push(e(5))
        buffer.push(e(2))  # earlier, but within bound
        released = buffer.push(e(14))
        assert [x.t for x in released] == [2]
        assert [x.t for x in buffer.flush()] == [5, 14]

    def test_late_edge_dropped_and_counted(self):
        buffer = DisorderBuffer(lateness=2)
        buffer.push(e(10))  # watermark -> 8
        assert buffer.push(e(7)) == []
        assert buffer.late_count == 1

    def test_late_edge_raises_with_policy(self):
        buffer = DisorderBuffer(lateness=2, late_policy="raise")
        buffer.push(e(10))
        with pytest.raises(StreamOrderError):
            buffer.push(e(1))

    def test_on_late_callback(self):
        seen = []
        buffer = DisorderBuffer(lateness=0, on_late=seen.append)
        buffer.push(e(5))
        buffer.push(e(5))  # t == watermark: late
        assert len(seen) == 1

    def test_flush_releases_everything_in_order(self):
        buffer = DisorderBuffer(lateness=100)
        for t in (9, 2, 5):
            buffer.push(e(t))
        assert [x.t for x in buffer.flush()] == [2, 5, 9]
        assert len(buffer) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DisorderBuffer(lateness=-1)
        with pytest.raises(ValueError):
            DisorderBuffer(lateness=1, late_policy="explode")


class TestReorder:
    def test_docstring_example(self):
        edges = [e(5), e(2), e(9)]
        assert [x.t for x in reorder(edges, lateness=5)] == [2, 5, 9]

    def test_output_feeds_engine(self):
        """A shuffled stream, reordered, runs on the engine and matches
        the sorted-stream result."""
        from repro.engine.session import StreamingGraphEngine

        rng = random.Random(3)
        edges = [SGE(rng.randrange(5), rng.randrange(5), "k", t)
                 for t in range(0, 60, 2)]
        # Bounded disorder: shuffle within blocks of 4 edges (8 ticks),
        # well inside the lateness bound, so nothing is dropped.
        shuffled: list[SGE] = []
        for start in range(0, len(edges), 4):
            block = edges[start : start + 4]
            rng.shuffle(block)
            shuffled.extend(block)

        ordered = list(reorder(shuffled, lateness=10))
        assert len(ordered) == len(edges)
        assert [x.t for x in ordered] == sorted(x.t for x in ordered)

        from repro.query.sgq import SGQ

        query = SGQ.from_text("Answer(x,y) <- k+(x,y) as K.", SlidingWindow(20))
        left_engine = StreamingGraphEngine()
        left = left_engine.register(query, name="q")
        for edge in ordered:
            left_engine.push(edge)
        right_engine = StreamingGraphEngine()
        right = right_engine.register(query, name="q")
        for edge in sorted(edges, key=lambda x: x.t):
            right_engine.push(edge)
        # valid_at answers only performed window movements; probe up to
        # the horizon after advancing both engines to the last instant.
        left_engine.advance_to(79)
        right_engine.advance_to(79)
        for t in range(0, 80, 5):
            assert left.valid_at(t) == right.valid_at(t)


@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=40),
    st.integers(min_value=0, max_value=60),
)
@settings(max_examples=80)
def test_reorder_property(timestamps, lateness):
    edges = [e(t, i) for i, t in enumerate(timestamps)]
    out = list(reorder(edges, lateness=lateness))
    # Output is sorted...
    assert all(a.t <= b.t for a, b in zip(out, out[1:]))
    # ...never invents edges...
    assert len(out) <= len(edges)
    # ...and with a bound covering the full span, nothing is dropped.
    if lateness > max(timestamps):
        assert sorted(x.t for x in out) == sorted(timestamps)
