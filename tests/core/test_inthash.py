"""Unit and property tests for the int64 open-addressing hash table.

The python backend runs the identical probe algorithm over plain lists,
so every test parametrizes over both backends (numpy skipped when the
vector extra is absent) and checks them against a CPython ``dict``
reference model.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.inthash import PACK_LIMIT, Int64Table, pack2, pack3
from repro.core.nplib import HAVE_NUMPY

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestScalarOps:
    def test_put_get_roundtrip(self, backend):
        table = Int64Table(backend=backend)
        table.put(7, 100)
        table.put(0, 5)
        assert table.get(7) == 100
        assert table.get(0) == 5
        assert table.get(99) == -1
        assert table.get(99, default=-7) == -7
        assert len(table) == 2

    def test_overwrite(self, backend):
        table = Int64Table(backend=backend)
        table.put(3, 1)
        table.put(3, 2)
        assert table.get(3) == 2
        assert len(table) == 1

    def test_delete_and_tombstone_reuse(self, backend):
        table = Int64Table(backend=backend)
        table.put(3, 1)
        assert table.delete(3)
        assert not table.delete(3)
        assert table.get(3) == -1
        assert len(table) == 0
        # Reinsert lands in the tombstone slot without growing `used`.
        table.put(3, 9)
        assert table.get(3) == 9

    def test_contains(self, backend):
        table = Int64Table(backend=backend)
        table.put(11, 0)
        assert 11 in table
        assert 12 not in table

    def test_negative_key_rejected(self, backend):
        table = Int64Table(backend=backend)
        with pytest.raises(ValueError, match="non-negative"):
            table.put(-1, 0)

    def test_growth_past_load_factor(self, backend):
        table = Int64Table(capacity=8, backend=backend)
        for key in range(200):
            table.put(key, key * 2)
        assert len(table) == 200
        for key in range(200):
            assert table.get(key) == key * 2

    def test_tombstone_heavy_sweep(self, backend):
        # Repeated insert/delete cycles at one size must not wedge the
        # table (the same-size rehash sweeps tombstones out).
        table = Int64Table(capacity=8, backend=backend)
        for round_num in range(50):
            key = round_num * 3
            table.put(key, round_num)
            assert table.delete(key)
        assert len(table) == 0

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            Int64Table(backend="gpu")


class TestBatchedOps:
    def test_get_many_list_input(self, backend):
        table = Int64Table(backend=backend)
        table.put_many([1, 5, 9], [10, 50, 90])
        assert list(table.get_many([5, 2, 9, 1])) == [50, -1, 90, 10]

    @pytest.mark.skipif(not HAVE_NUMPY, reason="requires numpy")
    def test_get_many_array_input(self):
        import numpy as np

        table = Int64Table(backend="numpy")
        table.put_many(range(100), range(100, 200))
        probe = np.array([3, 300, 99, 0], dtype=np.int64)
        out = table.get_many(probe)
        assert out.dtype == np.int64
        assert out.tolist() == [103, -1, 199, 100]

    @pytest.mark.skipif(not HAVE_NUMPY, reason="requires numpy")
    def test_get_many_empty_array(self):
        import numpy as np

        table = Int64Table(backend="numpy")
        assert table.get_many(np.array([], dtype=np.int64)).shape == (0,)

    def test_put_many_duplicate_keys_last_wins(self, backend):
        table = Int64Table(backend=backend)
        table.put_many([4, 4, 4], [1, 2, 3])
        assert table.get(4) == 3
        assert len(table) == 1

    def test_items_are_live_entries(self, backend):
        table = Int64Table(backend=backend)
        table.put(1, 10)
        table.put(2, 20)
        table.delete(1)
        assert dict(table.items()) == {2: 20}


class TestPacking:
    def test_pack2_distinct(self):
        seen = set()
        for a in (0, 1, 7, PACK_LIMIT - 1):
            for b in (0, 1, 7, PACK_LIMIT - 1):
                seen.add(pack2(a, b))
        assert len(seen) == 16

    def test_pack3_distinct_and_bounded(self):
        top = pack3(PACK_LIMIT - 1, PACK_LIMIT - 1, PACK_LIMIT - 1)
        assert top < (1 << 63)
        assert pack3(1, 2, 3) != pack3(3, 2, 1)

    def test_pack_roundtrip(self):
        key = pack3(5, 6, 7)
        assert key >> 42 == 5
        assert (key >> 21) & (PACK_LIMIT - 1) == 6
        assert key & (PACK_LIMIT - 1) == 7


ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "get", "delete"]),
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=1_000_000),
    ),
    max_size=200,
)


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(script=ops)
def test_property_matches_dict_reference(backend_name, script):
    """Random insert/probe/delete against a dict model: identical
    observable behaviour on both backends, through growth and
    tombstone sweeps (tiny initial capacity forces both)."""
    table = Int64Table(capacity=8, backend=backend_name)
    model: dict = {}
    for op, key, value in script:
        if op == "put":
            table.put(key, value)
            model[key] = value
        elif op == "get":
            assert table.get(key) == model.get(key, -1)
        else:
            assert table.delete(key) == (key in model)
            model.pop(key, None)
    assert len(table) == len(model)
    assert dict(table.items()) == model
    probe = sorted(set(k for _, k, _ in script)) + [10_000]
    assert list(table.get_many(probe)) == [
        model.get(k, -1) for k in probe
    ]
