"""Unit tests for graph streams (Definitions 4, 8, 9)."""

import pytest

from repro.core.intervals import Interval
from repro.core.streams import InputGraphStream, StreamingGraph, partition_by_label
from repro.core.tuples import SGE, SGT
from repro.errors import StreamOrderError


class TestInputGraphStream:
    def test_append_in_order(self):
        s = InputGraphStream()
        s.append(SGE("a", "b", "l", 1))
        s.append(SGE("b", "c", "l", 1))  # ties allowed
        s.append(SGE("c", "d", "l", 5))
        assert len(s) == 3

    def test_out_of_order_rejected(self):
        s = InputGraphStream([SGE("a", "b", "l", 5)])
        with pytest.raises(StreamOrderError):
            s.append(SGE("b", "c", "l", 4))

    def test_labels(self):
        s = InputGraphStream([SGE("a", "b", "x", 1), SGE("a", "b", "y", 2)])
        assert s.labels == {"x", "y"}

    def test_last_timestamp(self):
        assert InputGraphStream().last_timestamp is None
        s = InputGraphStream([SGE("a", "b", "l", 7)])
        assert s.last_timestamp == 7

    def test_indexing_and_iteration(self):
        edges = [SGE("a", "b", "l", 1), SGE("b", "c", "l", 2)]
        s = InputGraphStream(edges)
        assert s[0] == edges[0]
        assert list(s) == edges


class TestStreamingGraph:
    def test_append_ordered_by_ts(self):
        g = StreamingGraph()
        g.append(SGT("a", "b", "l", Interval(1, 5)))
        g.append(SGT("b", "c", "l", Interval(1, 9)))
        g.append(SGT("c", "d", "l", Interval(4, 5)))
        assert len(g) == 3

    def test_out_of_order_rejected(self):
        g = StreamingGraph([SGT("a", "b", "l", Interval(5, 9))])
        with pytest.raises(StreamOrderError):
            g.append(SGT("b", "c", "l", Interval(4, 9)))

    def test_valid_at(self):
        g = StreamingGraph(
            [
                SGT("a", "b", "l", Interval(1, 5)),
                SGT("b", "c", "l", Interval(3, 9)),
            ]
        )
        assert len(g.valid_at(4)) == 2
        assert len(g.valid_at(6)) == 1
        assert g.valid_at(20) == []


class TestPartitionByLabel:
    def test_partition_is_disjoint_and_complete(self):
        tuples = [
            SGT("a", "b", "x", Interval(1, 5)),
            SGT("b", "c", "y", Interval(2, 5)),
            SGT("c", "d", "x", Interval(3, 5)),
        ]
        parts = partition_by_label(tuples)
        assert set(parts) == {"x", "y"}
        assert len(parts["x"]) == 2
        assert len(parts["y"]) == 1
        total = sum(len(p) for p in parts.values())
        assert total == len(tuples)

    def test_partition_preserves_order(self):
        tuples = [
            SGT("a", "b", "x", Interval(1, 5)),
            SGT("c", "d", "x", Interval(3, 5)),
        ]
        parts = partition_by_label(tuples)
        assert [t.ts for t in parts["x"]] == [1, 3]

    def test_empty(self):
        assert partition_by_label([]) == {}
