"""Unit tests for the vertex interner and plan-constant translation."""

from repro.algebra.operators import Filter, Predicate, WScan
from repro.core.interning import Interner, intern_plan
from repro.core.intervals import Interval
from repro.core.tuples import SGT, EdgePayload, PathPayload
from repro.core.windows import SlidingWindow
from repro.dataflow.graph import DELETE, Event

W = SlidingWindow(10)


class TestInterner:
    def test_dense_first_seen_ids(self):
        interner = Interner()
        assert interner.intern("a") == 0
        assert interner.intern(("P", 7)) == 1
        assert interner.intern("a") == 0
        assert len(interner) == 2

    def test_bijection(self):
        interner = Interner()
        values = ["x", ("M", 3), 42, "x", 42]
        ids = interner.intern_many(values)
        assert [interner.value(i) for i in ids] == values

    def test_id_of_and_contains(self):
        interner = Interner()
        interner.intern("v")
        assert interner.id_of("v") == 0
        assert interner.id_of("missing") is None
        assert "v" in interner and "missing" not in interner

    def test_equal_values_share_one_id(self):
        # dict-key equality semantics: 1 and 1.0 are the same vertex,
        # exactly as un-interned execution would treat them.
        interner = Interner()
        assert interner.intern(1) == interner.intern(1.0)


class TestDecoding:
    def test_decode_sgt_edge_payload(self):
        interner = Interner()
        a, b = interner.intern("a"), interner.intern("b")
        decoded = interner.decode_sgt(SGT(a, b, "l", Interval(0, 5)))
        assert (decoded.src, decoded.trg, decoded.label) == ("a", "b", "l")
        assert decoded.payload == EdgePayload("a", "b", "l")

    def test_decode_sgt_path_payload(self):
        interner = Interner()
        a, b, c = (interner.intern(v) for v in "abc")
        payload = PathPayload((EdgePayload(a, b, "l"), EdgePayload(b, c, "l")))
        decoded = interner.decode_sgt(SGT(a, c, "P", Interval(0, 5), payload))
        assert decoded.payload.vertices == ("a", "b", "c")

    def test_decode_event_preserves_sign(self):
        interner = Interner()
        a, b = interner.intern("a"), interner.intern("b")
        event = interner.decode_event(
            Event(SGT(a, b, "l", Interval(0, 5)), DELETE)
        )
        assert event.sign == DELETE and event.sgt.src == "a"

    def test_decode_key(self):
        interner = Interner()
        a, b = interner.intern(("P", 1)), interner.intern(("P", 2))
        assert interner.decode_key((a, b, "knows")) == (
            ("P", 1),
            ("P", 2),
            "knows",
        )


class TestInternPlan:
    def test_vertex_constants_are_translated(self):
        interner = Interner()
        plan = Filter(WScan("l", W), Predicate((("src", "==", "alice"),)))
        translated = intern_plan(plan, interner)
        ((attr, op, value),) = translated.predicate.conditions
        assert (attr, op) == ("src", "==")
        assert value == interner.id_of("alice")

    def test_label_conditions_untouched(self):
        interner = Interner()
        plan = Filter(WScan("l", W), Predicate((("label", "==", "l"),)))
        translated = intern_plan(plan, interner)
        assert translated.predicate.conditions == (("label", "==", "l"),)
        assert len(interner) == 0

    def test_prefilter_translated(self):
        interner = Interner()
        plan = WScan("l", W, Predicate((("trg", "!=", ("P", 9)),)))
        translated = intern_plan(plan, interner)
        ((_, _, value),) = translated.prefilter.conditions
        assert value == interner.id_of(("P", 9))

    def test_translation_is_deterministic_per_interner(self):
        # Equal plans translate to equal plans (the engine's shared
        # sub-expression cache is keyed on translated plans).
        interner = Interner()
        plan = Filter(WScan("l", W), Predicate((("src", "==", "v"),)))
        assert intern_plan(plan, interner) == intern_plan(plan, interner)
