"""Unit tests for the batched delta machinery (DeltaBatch, BatchScheduler)."""

import pytest

from repro.core.batch import (
    DELETE,
    INSERT,
    BatchScheduler,
    DeltaBatch,
    RunStats,
    SlideStats,
)
from repro.core.intervals import Interval
from repro.core.tuples import SGE, SGT


def _sgt(n):
    return SGT(n, n + 1, "l", Interval(n, n + 10))


class TestDeltaBatch:
    def test_insert_only(self):
        batch = DeltaBatch(0, [_sgt(1), _sgt(2)])
        assert batch.insert_only
        assert len(batch) == 2
        assert [sign for _, sign in batch.events()] == [INSERT, INSERT]
        assert batch.inserts == batch.sgts
        assert batch.deletes == []

    def test_mixed_signs_preserve_order(self):
        sgts = [_sgt(1), _sgt(2), _sgt(3)]
        batch = DeltaBatch(0, sgts, [INSERT, DELETE, INSERT])
        assert not batch.insert_only
        assert [s for s, _ in batch.events()] == sgts
        assert [sign for _, sign in batch.events()] == [INSERT, DELETE, INSERT]
        assert batch.inserts == [sgts[0], sgts[2]]
        assert batch.deletes == [sgts[1]]

    def test_sign_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DeltaBatch(0, [_sgt(1)], [INSERT, DELETE])


class TestBatchScheduler:
    def edges(self):
        return [SGE(1, 2, "a", t) for t in (0, 3, 12, 25, 27)]

    def test_one_flush_per_slide_by_default(self):
        seen = []
        scheduler = BatchScheduler(lambda t: t // 10 * 10)
        stats = scheduler.run(self.edges(), lambda b, e: seen.append((b, list(e))))
        assert [(b, [e.t for e in es]) for b, es in seen] == [
            (0, [0, 3]),
            (10, [12]),
            (20, [25, 27]),
        ]
        assert [s.boundary for s in stats.slides] == [0, 10, 20]
        assert [s.edges for s in stats.slides] == [2, 1, 2]
        assert [s.batches for s in stats.slides] == [1, 1, 1]
        assert stats.total_edges == 5
        assert stats.total_seconds > 0

    def test_batch_size_splits_slides(self):
        seen = []
        scheduler = BatchScheduler(lambda t: t // 10 * 10, batch_size=1)
        stats = scheduler.run(self.edges(), lambda b, e: seen.append(b))
        assert len(seen) == 5
        assert stats.total_batches == 5
        assert [s.batches for s in stats.slides] == [2, 1, 2]

    def test_on_late_filtering(self):
        late = []
        scheduler = BatchScheduler(
            lambda t: t // 10 * 10,
            on_late=lambda e, boundary: late.append((e, boundary)) or False,
        )
        applied = []
        stream = [SGE(1, 2, "a", 25), SGE(1, 2, "a", 4), SGE(1, 2, "a", 26)]
        stats = scheduler.run(stream, lambda b, e: applied.extend(e))
        assert [(e.t, boundary) for e, boundary in late] == [(4, 20)]
        assert [e.t for e in applied] == [25, 26]
        assert stats.total_edges == 2

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchScheduler(lambda t: t, batch_size=0)


class TestRunStats:
    def test_epochs_alias(self):
        stats = RunStats(slides=[SlideStats(boundary=0)])
        assert stats.epochs is stats.slides

    def test_total_batches(self):
        stats = RunStats(
            slides=[SlideStats(boundary=0, batches=2), SlideStats(boundary=1, batches=3)]
        )
        assert stats.total_batches == 5
