"""Unit tests for the hierarchical timing wheel."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.expiry import TimingWheel


class TestSchedulingAndDraining:
    def test_drains_due_items_in_exp_order(self):
        wheel = TimingWheel()
        wheel.schedule(30, "c")
        wheel.schedule(10, "a")
        wheel.schedule(20, "b")
        assert wheel.advance(25) == ["a", "b"]
        assert wheel.advance(30) == ["c"]

    def test_fifo_within_one_instant(self):
        wheel = TimingWheel()
        for item in ("first", "second", "third"):
            wheel.schedule(5, item)
        assert wheel.advance(5) == ["first", "second", "third"]

    def test_empty_advance_returns_empty(self):
        wheel = TimingWheel()
        assert wheel.advance(100) == []
        wheel.schedule(200, "x")
        assert wheel.advance(150) == []
        assert len(wheel) == 1

    def test_exclusive_boundary_semantics(self):
        # advance(t) drains exp <= t, matching the heaps it replaced.
        wheel = TimingWheel()
        wheel.schedule(10, "at")
        wheel.schedule(11, "after")
        assert wheel.advance(10) == ["at"]
        assert wheel.advance(11) == ["after"]

    def test_scheduling_in_the_past_drains_next_advance(self):
        wheel = TimingWheel()
        wheel.schedule(10, "a")
        assert wheel.advance(50) == ["a"]
        wheel.schedule(20, "late")  # behind the watermark
        assert wheel.advance(50) == ["late"]

    def test_duplicate_items_are_a_multiset(self):
        wheel = TimingWheel()
        wheel.schedule(5, ("e",))
        wheel.schedule(5, ("e",))
        assert wheel.advance(5) == [("e",), ("e",)]

    def test_direct_bucket_append_idiom(self):
        # The blessed hot-path pattern: append to an existing fine bucket.
        wheel = TimingWheel()
        wheel.schedule(7, "a")
        bucket = wheel.fine.get(7)
        assert bucket is not None
        bucket.append("b")
        assert wheel.advance(7) == ["a", "b"]


class TestHierarchy:
    def test_far_future_entries_cascade(self):
        wheel = TimingWheel(span=16)
        wheel.schedule(5, "near")
        wheel.schedule(1000, "far")  # beyond the fine horizon
        assert len(wheel) == 2
        assert wheel.advance(5) == ["near"]
        assert wheel.advance(999) == []
        assert wheel.advance(1000) == ["far"]
        assert not wheel

    def test_cascade_preserves_exp_order(self):
        wheel = TimingWheel(span=8)
        wheel.schedule(100, "b")
        wheel.schedule(97, "a")
        wheel.schedule(103, "c")
        assert wheel.advance(200) == ["a", "b", "c"]

    def test_coarse_entries_do_not_drain_early(self):
        wheel = TimingWheel(span=8)
        wheel.schedule(50, "far")
        for t in range(0, 49, 7):
            assert wheel.advance(t) == []
        assert wheel.advance(50) == ["far"]

    def test_invalid_span(self):
        with pytest.raises(ValueError, match="span"):
            TimingWheel(span=0)


class TestDrainEpochs:
    def test_groups_by_expiry_instant(self):
        wheel = TimingWheel()
        wheel.schedule(10, "a")
        wheel.schedule(20, "b")
        wheel.schedule(10, "c")
        assert wheel.drain_epochs(20) == [(10, ["a", "c"]), (20, ["b"])]
        assert not wheel

    def test_empty_drain(self):
        wheel = TimingWheel()
        assert wheel.drain_epochs(100) == []
        wheel.schedule(200, "x")
        assert wheel.drain_epochs(150) == []
        assert len(wheel) == 1

    def test_exclusive_boundary(self):
        wheel = TimingWheel()
        wheel.schedule(10, "at")
        wheel.schedule(11, "after")
        assert wheel.drain_epochs(10) == [(10, ["at"])]
        assert wheel.drain_epochs(11) == [(11, ["after"])]

    def test_cascades_coarse_entries(self):
        wheel = TimingWheel(span=8)
        wheel.schedule(5, "near")
        wheel.schedule(1000, "far")
        assert wheel.drain_epochs(1000) == [(5, ["near"]), (1000, ["far"])]

    def test_flatten_matches_advance(self):
        entries = [(30, "c"), (10, "a"), (20, "b"), (10, "a2")]
        reference = TimingWheel()
        bulk = TimingWheel()
        for exp, item in entries:
            reference.schedule(exp, item)
            bulk.schedule(exp, item)
        flat = [
            item for _, items in bulk.drain_epochs(25) for item in items
        ]
        assert flat == reference.advance(25)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=400),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=40,
        ),
        st.lists(st.integers(min_value=0, max_value=500), max_size=8),
        st.sampled_from([4, 8, 16, 64]),
    )
    def test_property_drain_equals_advance(self, entries, advances, span):
        """Flattening drain_epochs reproduces advance exactly, under any
        interleaving of schedules and watermark jumps (including jumps
        far past the fine horizon, forcing coarse cascades)."""
        reference = TimingWheel(span=span)
        bulk = TimingWheel(span=span)
        script = [("schedule", e) for e in entries] + [
            ("advance", t) for t in advances
        ]
        # Deterministic interleave: alternate schedule/advance streams.
        script.sort(key=lambda step: hash(step) % 7)
        for kind, payload in script:
            if kind == "schedule":
                exp, item = payload
                reference.schedule(exp, item)
                bulk.schedule(exp, item)
            else:
                expected = reference.advance(payload)
                epochs = bulk.drain_epochs(payload)
                flat = [item for _, items in epochs for item in items]
                assert flat == expected
                # Epochs are grouped by instant, ascending, within bound.
                exps = [exp for exp, _ in epochs]
                assert exps == sorted(exps)
                assert all(exp <= payload for exp in exps)
                assert len(set(exps)) == len(exps)
        assert len(reference) == len(bulk)

    def test_large_jump_cascade_grouping(self):
        # A jump spanning several coarse buckets must still come out
        # grouped per instant, in ascending order.
        wheel = TimingWheel(span=4)
        for exp in (3, 97, 5, 97, 41, 12, 3):
            wheel.schedule(exp, exp)
        epochs = wheel.drain_epochs(100)
        assert epochs == [
            (3, [3, 3]),
            (5, [5]),
            (12, [12]),
            (41, [41]),
            (97, [97, 97]),
        ]


class TestAccounting:
    def test_len_and_bool(self):
        wheel = TimingWheel(span=16)
        assert not wheel and len(wheel) == 0
        wheel.schedule(3, "a")
        wheel.schedule(10_000, "b")
        assert wheel and len(wheel) == 2
        wheel.advance(3)
        assert len(wheel) == 1
        wheel.advance(10_000)
        assert not wheel

    def test_next_due(self):
        wheel = TimingWheel()
        assert wheel.next_due() is None
        wheel.schedule(42, "x")
        assert wheel.next_due() == 42
