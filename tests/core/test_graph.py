"""Unit tests for materialized path graphs and snapshots (Definitions 6, 12)."""

from repro.core.graph import MaterializedPathGraph, graph_from_triples, snapshot
from repro.core.intervals import Interval
from repro.core.tuples import SGT, EdgePayload, PathPayload


class TestMaterializedPathGraph:
    def test_add_edge_idempotent(self):
        g = MaterializedPathGraph()
        g.add_edge("a", "b", "l")
        g.add_edge("a", "b", "l")
        assert len(g) == 1

    def test_vertices(self):
        g = graph_from_triples([("a", "b", "x"), ("b", "c", "y")])
        assert g.vertices == {"a", "b", "c"}

    def test_successors_predecessors(self):
        g = graph_from_triples([("a", "b", "x"), ("a", "c", "x"), ("a", "d", "y")])
        assert g.successors("a", "x") == {"b", "c"}
        assert g.predecessors("b", "x") == {"a"}
        assert g.successors("a", "z") == set()

    def test_paths_are_first_class(self):
        g = MaterializedPathGraph()
        payload = PathPayload(
            (EdgePayload("a", "b", "l"), EdgePayload("b", "c", "l"))
        )
        g.add_path("a", "c", "P", payload)
        assert g.has("a", "c", "P")
        assert g.successors("a", "P") == {"c"}
        assert g.paths[("a", "c", "P")] == payload

    def test_labels_mix_edges_and_paths(self):
        g = MaterializedPathGraph()
        g.add_edge("a", "b", "l")
        g.add_path("a", "c", "P", PathPayload((EdgePayload("a", "c", "l"),)))
        assert g.labels == {"l", "P"}

    def test_triples_with_label(self):
        g = graph_from_triples([("a", "b", "x"), ("c", "d", "x"), ("a", "b", "y")])
        assert sorted(g.triples_with_label("x")) == [("a", "b"), ("c", "d")]


class TestSnapshot:
    def test_snapshot_filters_by_validity(self):
        tuples = [
            SGT("a", "b", "l", Interval(0, 10)),
            SGT("b", "c", "l", Interval(5, 15)),
        ]
        g0 = snapshot(tuples, 0)
        assert g0.has("a", "b", "l")
        assert not g0.has("b", "c", "l")
        g7 = snapshot(tuples, 7)
        assert len(g7) == 2
        g12 = snapshot(tuples, 12)
        assert not g12.has("a", "b", "l")

    def test_snapshot_materializes_paths(self):
        payload = PathPayload((EdgePayload("a", "b", "l"),))
        tuples = [SGT("a", "b", "P", Interval(0, 10), payload)]
        g = snapshot(tuples, 5)
        assert g.paths[("a", "b", "P")] == payload

    def test_paper_figure4_snapshot(self, paper_stream, window24):
        # Figure 4: the snapshot of the Figure 3 streaming graph at t=25.
        tuples = [
            SGT(e.src, e.trg, e.label, window24.interval_for(e.t))
            for e in paper_stream
        ]
        g = snapshot(tuples, 25)
        assert g.has("u", "v", "follows")
        assert g.has("y", "u", "follows")
        assert g.has("v", "b", "posts")
        assert g.has("v", "c", "posts")
        assert g.has("u", "a", "posts")
        # likes edges arrive after t=25
        assert not g.has("y", "a", "likes")
        assert len(g) == 5
