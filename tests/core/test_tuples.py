"""Unit tests for sges, sgts, and payloads (Definitions 3, 7, 10)."""

import pytest

from repro.core.intervals import Interval
from repro.core.tuples import SGE, SGT, EdgePayload, PathPayload, sgt_from_sge


class TestSGE:
    def test_fields(self):
        e = SGE("a", "b", "knows", 5)
        assert (e.src, e.trg, e.label, e.t) == ("a", "b", "knows", 5)

    def test_immutable(self):
        e = SGE("a", "b", "knows", 5)
        with pytest.raises(AttributeError):
            e.t = 6  # type: ignore[misc]

    def test_equality(self):
        assert SGE("a", "b", "l", 1) == SGE("a", "b", "l", 1)
        assert SGE("a", "b", "l", 1) != SGE("a", "b", "l", 2)


class TestSGT:
    def test_default_payload_is_own_edge(self):
        t = SGT("a", "b", "knows", Interval(1, 5))
        assert t.payload == EdgePayload("a", "b", "knows")

    def test_ts_exp_accessors(self):
        t = SGT("a", "b", "knows", Interval(1, 5))
        assert t.ts == 1
        assert t.exp == 5

    def test_value_equivalence_ignores_interval(self):
        t1 = SGT("a", "b", "l", Interval(1, 5))
        t2 = SGT("a", "b", "l", Interval(3, 9))
        assert t1.value_equivalent(t2)
        assert t1.key() == t2.key()

    def test_value_equivalence_distinguishes_labels(self):
        t1 = SGT("a", "b", "l1", Interval(1, 5))
        t2 = SGT("a", "b", "l2", Interval(1, 5))
        assert not t1.value_equivalent(t2)

    def test_valid_at(self):
        t = SGT("a", "b", "l", Interval(1, 5))
        assert t.valid_at(1)
        assert t.valid_at(4)
        assert not t.valid_at(5)

    def test_with_interval(self):
        t = SGT("a", "b", "l", Interval(1, 5))
        t2 = t.with_interval(Interval(2, 9))
        assert t2.interval == Interval(2, 9)
        assert t2.key() == t.key()
        assert t2.payload is t.payload

    def test_is_path(self):
        edge = SGT("a", "b", "l", Interval(1, 5))
        assert not edge.is_path()
        path = SGT(
            "a",
            "c",
            "p",
            Interval(1, 5),
            PathPayload((EdgePayload("a", "b", "l"), EdgePayload("b", "c", "l"))),
        )
        assert path.is_path()

    def test_sgt_from_sge(self):
        t = sgt_from_sge(SGE("a", "b", "l", 3), Interval(3, 10))
        assert t.key() == ("a", "b", "l")
        assert t.interval == Interval(3, 10)


class TestPathPayload:
    def _path(self):
        return PathPayload(
            (
                EdgePayload("a", "b", "x"),
                EdgePayload("b", "c", "y"),
                EdgePayload("c", "d", "x"),
            )
        )

    def test_length(self):
        assert self._path().length == 3

    def test_vertices(self):
        assert self._path().vertices == ("a", "b", "c", "d")

    def test_label_sequence(self):
        assert self._path().label_sequence() == ("x", "y", "x")

    def test_edges_uniform_access(self):
        assert len(self._path().edges()) == 3
        assert len(EdgePayload("a", "b", "x").edges()) == 1

    def test_concat(self):
        p1 = PathPayload((EdgePayload("a", "b", "x"),))
        p2 = PathPayload((EdgePayload("b", "c", "y"),))
        assert p1.concat(p2).vertices == ("a", "b", "c")

    def test_concat_mismatch_raises(self):
        p1 = PathPayload((EdgePayload("a", "b", "x"),))
        p2 = PathPayload((EdgePayload("z", "c", "y"),))
        with pytest.raises(ValueError):
            p1.concat(p2)

    def test_empty_path_vertices(self):
        assert PathPayload(()).vertices == ()
