"""Unit tests for sliding-window specifications (Definition 16)."""

import pytest

from repro.core.intervals import Interval
from repro.core.windows import DAY, HOUR, SlidingWindow
from repro.errors import InvalidIntervalError


class TestIntervalAssignment:
    def test_default_slide_is_one(self):
        w = SlidingWindow(24)
        assert w.interval_for(7) == Interval(7, 31)

    def test_paper_figure3_assignment(self):
        # Figure 3: a 24h window maps an edge at t=7 to [7, 31).
        w = SlidingWindow(24, 1)
        for t, expected in [(7, 31), (10, 34), (13, 37), (30, 54)]:
            assert w.interval_for(t) == Interval(t, expected)

    def test_definition16_with_slide(self):
        # exp = floor(t / beta) * beta + T
        w = SlidingWindow(24, 6)
        assert w.interval_for(7) == Interval(7, 30)
        assert w.interval_for(6) == Interval(6, 30)
        assert w.interval_for(11) == Interval(11, 30)
        assert w.interval_for(12) == Interval(12, 36)

    def test_zero_timestamp(self):
        w = SlidingWindow(10, 5)
        assert w.interval_for(0) == Interval(0, 10)

    def test_window_shorter_than_gap_to_boundary_rejected(self):
        w = SlidingWindow(2, 10)
        with pytest.raises(InvalidIntervalError):
            w.interval_for(5)  # floor(5/10)*10 + 2 = 2 <= 5


class TestBoundaries:
    def test_slide_boundary(self):
        w = SlidingWindow(24, 6)
        assert w.slide_boundary(0) == 0
        assert w.slide_boundary(5) == 0
        assert w.slide_boundary(6) == 6
        assert w.slide_boundary(17) == 12

    def test_next_boundary(self):
        w = SlidingWindow(24, 6)
        assert w.next_boundary(0) == 6
        assert w.next_boundary(6) == 12


class TestValidation:
    def test_nonpositive_size_rejected(self):
        with pytest.raises(InvalidIntervalError):
            SlidingWindow(0)

    def test_nonpositive_slide_rejected(self):
        with pytest.raises(InvalidIntervalError):
            SlidingWindow(10, 0)

    def test_named_durations(self):
        assert DAY == 24 * HOUR
        w = SlidingWindow(30 * DAY, DAY)
        assert w.interval_for(0) == Interval(0, 30 * DAY)
