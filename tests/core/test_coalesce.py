"""Unit tests for the coalesce primitive (Definition 11)."""

import pytest

from repro.core.coalesce import (
    coalesce,
    coalesce_stream,
    keep_first_payload,
    keep_longest_payload,
)
from repro.core.intervals import Interval
from repro.core.tuples import SGT, EdgePayload, PathPayload
from repro.errors import InvalidIntervalError


def _t(ts, exp, payload=None):
    return SGT("a", "b", "l", Interval(ts, exp), payload)


class TestCoalesce:
    def test_merges_overlapping(self):
        merged = coalesce([_t(1, 5), _t(4, 9)])
        assert merged.interval == Interval(1, 9)

    def test_merges_adjacent(self):
        merged = coalesce([_t(1, 5), _t(5, 9)])
        assert merged.interval == Interval(1, 9)

    def test_paper_example(self):
        # Example from Section 5.1: PATTERN produces (u, RL, v) twice with
        # intervals [29, 31) and [30, 31); coalesced into one sgt.
        merged = coalesce([_t(29, 31), _t(30, 31)])
        assert merged.interval == Interval(29, 31)

    def test_single_tuple_identity(self):
        t = _t(1, 5)
        assert coalesce([t]) == t

    def test_disjoint_raises(self):
        with pytest.raises(InvalidIntervalError):
            coalesce([_t(1, 3), _t(7, 9)])

    def test_not_value_equivalent_raises(self):
        other = SGT("a", "c", "l", Interval(1, 5))
        with pytest.raises(InvalidIntervalError):
            coalesce([_t(1, 5), other])

    def test_empty_raises(self):
        with pytest.raises(InvalidIntervalError):
            coalesce([])

    def test_default_agg_keeps_first_payload(self):
        p1 = PathPayload((EdgePayload("a", "b", "l"),))
        p2 = PathPayload((EdgePayload("a", "x", "l"), EdgePayload("x", "b", "l")))
        merged = coalesce([_t(1, 5, p1), _t(2, 9, p2)], keep_first_payload)
        assert merged.payload == p1

    def test_longest_agg_keeps_latest_expiring_payload(self):
        p1 = PathPayload((EdgePayload("a", "b", "l"),))
        p2 = PathPayload((EdgePayload("a", "x", "l"), EdgePayload("x", "b", "l")))
        merged = coalesce([_t(1, 5, p1), _t(2, 9, p2)], keep_longest_payload)
        assert merged.payload == p2


class TestCoalesceStream:
    def test_groups_by_key(self):
        tuples = [
            SGT("a", "b", "l", Interval(1, 5)),
            SGT("a", "c", "l", Interval(1, 5)),
            SGT("a", "b", "l", Interval(4, 9)),
        ]
        out = coalesce_stream(tuples)
        assert len(out) == 2
        by_key = {t.key(): t for t in out}
        assert by_key[("a", "b", "l")].interval == Interval(1, 9)

    def test_keeps_disjoint_runs_apart(self):
        out = coalesce_stream([_t(1, 3), _t(7, 9), _t(2, 4)])
        assert [t.interval for t in out] == [Interval(1, 4), Interval(7, 9)]

    def test_set_semantics_of_snapshots(self):
        # After coalescing, at any instant each key appears at most once.
        out = coalesce_stream([_t(1, 5), _t(3, 8), _t(7, 12), _t(20, 25)])
        for instant in range(0, 30):
            live = [t for t in out if t.valid_at(instant)]
            assert len(live) <= 1

    def test_empty(self):
        assert coalesce_stream([]) == []
