"""Unit tests for validity intervals (Definition 5)."""

import pytest

from repro.core.intervals import (
    FOREVER,
    Interval,
    cover,
    intersect_all,
    subtract_cover,
)
from repro.errors import InvalidIntervalError


class TestConstruction:
    def test_valid_interval(self):
        iv = Interval(3, 7)
        assert iv.ts == 3
        assert iv.exp == 7

    def test_empty_interval_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(3, 3)

    def test_inverted_interval_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(7, 3)

    def test_single_instant(self):
        assert Interval(5, 6).duration == 1

    def test_is_hashable_and_comparable(self):
        assert Interval(1, 2) == Interval(1, 2)
        assert len({Interval(1, 2), Interval(1, 2), Interval(1, 3)}) == 2
        assert Interval(1, 2) < Interval(1, 3) < Interval(2, 3)


class TestPointQueries:
    def test_contains_start_inclusive(self):
        assert Interval(3, 7).contains(3)

    def test_contains_end_exclusive(self):
        assert not Interval(3, 7).contains(7)

    def test_contains_interior(self):
        assert Interval(3, 7).contains(5)

    def test_contains_outside(self):
        assert not Interval(3, 7).contains(2)

    def test_expiry(self):
        iv = Interval(3, 7)
        assert not iv.is_expired_at(6)
        assert iv.is_expired_at(7)
        assert iv.is_expired_at(100)


class TestRelations:
    def test_overlapping(self):
        assert Interval(1, 5).overlaps(Interval(4, 9))
        assert Interval(4, 9).overlaps(Interval(1, 5))

    def test_adjacent_not_overlapping(self):
        assert not Interval(1, 5).overlaps(Interval(5, 9))
        assert Interval(1, 5).adjacent(Interval(5, 9))
        assert Interval(5, 9).adjacent(Interval(1, 5))

    def test_disjoint(self):
        a, b = Interval(1, 3), Interval(5, 9)
        assert not a.overlaps(b)
        assert not a.adjacent(b)
        assert not a.mergeable(b)

    def test_mergeable_when_overlapping_or_adjacent(self):
        assert Interval(1, 5).mergeable(Interval(4, 9))
        assert Interval(1, 5).mergeable(Interval(5, 9))

    def test_containment_overlaps(self):
        assert Interval(1, 10).overlaps(Interval(4, 5))


class TestCombinators:
    def test_intersect(self):
        assert Interval(1, 7).intersect(Interval(4, 9)) == Interval(4, 7)

    def test_intersect_disjoint_is_none(self):
        assert Interval(1, 3).intersect(Interval(5, 9)) is None

    def test_intersect_adjacent_is_none(self):
        assert Interval(1, 5).intersect(Interval(5, 9)) is None

    def test_union(self):
        assert Interval(1, 5).union(Interval(4, 9)) == Interval(1, 9)

    def test_union_adjacent(self):
        assert Interval(1, 5).union(Interval(5, 9)) == Interval(1, 9)

    def test_union_disjoint_raises(self):
        with pytest.raises(InvalidIntervalError):
            Interval(1, 3).union(Interval(5, 9))

    def test_intersect_all(self):
        ivs = [Interval(0, 10), Interval(3, 8), Interval(5, 20)]
        assert intersect_all(ivs) == Interval(5, 8)

    def test_intersect_all_disjoint(self):
        assert intersect_all([Interval(0, 3), Interval(5, 8)]) is None

    def test_intersect_all_empty_raises(self):
        with pytest.raises(InvalidIntervalError):
            intersect_all([])


class TestCover:
    def test_cover_empty(self):
        assert cover([]) == []

    def test_cover_merges_overlaps(self):
        assert cover([Interval(4, 9), Interval(1, 5)]) == [Interval(1, 9)]

    def test_cover_merges_adjacent(self):
        assert cover([Interval(1, 5), Interval(5, 9)]) == [Interval(1, 9)]

    def test_cover_keeps_gaps(self):
        result = cover([Interval(1, 3), Interval(5, 9), Interval(2, 4)])
        assert result == [Interval(1, 4), Interval(5, 9)]

    def test_cover_nested(self):
        assert cover([Interval(1, 10), Interval(3, 5)]) == [Interval(1, 10)]


class TestSubtractCover:
    def test_subtract_nothing(self):
        assert subtract_cover([Interval(1, 5)], []) == [Interval(1, 5)]

    def test_subtract_everything(self):
        assert subtract_cover([Interval(1, 5)], [Interval(0, 9)]) == []

    def test_subtract_middle_splits(self):
        result = subtract_cover([Interval(1, 9)], [Interval(3, 5)])
        assert result == [Interval(1, 3), Interval(5, 9)]

    def test_subtract_prefix(self):
        assert subtract_cover([Interval(1, 9)], [Interval(0, 4)]) == [Interval(4, 9)]

    def test_subtract_suffix(self):
        assert subtract_cover([Interval(1, 9)], [Interval(6, 12)]) == [Interval(1, 6)]

    def test_subtract_multiple_cuts(self):
        result = subtract_cover(
            [Interval(0, 20)], [Interval(2, 4), Interval(6, 8), Interval(18, 30)]
        )
        assert result == [
            Interval(0, 2),
            Interval(4, 6),
            Interval(8, 18),
        ]

    def test_subtract_disjoint_minus(self):
        result = subtract_cover([Interval(0, 5), Interval(10, 15)], [Interval(4, 11)])
        assert result == [Interval(0, 4), Interval(11, 15)]

    def test_forever_sentinel_is_large(self):
        assert Interval(0, FOREVER).contains(10**9)
