"""Units for the hash-partitioning primitives and shard routing."""

from __future__ import annotations

import pytest

from repro.core.partition import ShardContext, key_owner, vertex_owner


class TestOwnership:
    def test_vertex_owner_dense_ints(self):
        assert [vertex_owner(v, 4) for v in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_vertex_owner_covers_all_shards(self):
        owners = {vertex_owner(v, 3) for v in range(100)}
        assert owners == {0, 1, 2}

    def test_single_component_key_matches_vertex_owner(self):
        # Join ownership and vertex ownership agree when the key is one
        # vertex — what keeps PATH root partitioning and single-variable
        # join partitioning consistent.
        for v in range(50):
            assert key_owner((v,), 4) == vertex_owner(v, 4)

    def test_wide_keys_are_deterministic_and_balanced(self):
        owners = [key_owner((a, b), 4) for a in range(20) for b in range(20)]
        assert set(owners) == {0, 1, 2, 3}
        assert owners == [key_owner((a, b), 4) for a in range(20) for b in range(20)]

    def test_non_int_vertices_route_by_hash(self):
        assert 0 <= vertex_owner(("P", 42), 5) < 5


class TestShardContext:
    def test_shard_id_validated(self):
        with pytest.raises(ValueError):
            ShardContext(4, 4)
        with pytest.raises(ValueError):
            ShardContext(-1, 2)

    def test_send_routes_to_registered_endpoint(self):
        delivered = []

        class Endpoint:
            def receive_exchange(self, payload):
                delivered.append(payload)

        contexts = [ShardContext(i, 3) for i in range(3)]

        def send(dest, uid, payload):
            contexts[dest].endpoints[uid].receive_exchange(payload)

        for ctx in contexts:
            ctx.set_transport(send)
        contexts[2].register(7, Endpoint())
        contexts[0].send(2, 7, (1, 2, 3))
        assert delivered == [(1, 2, 3)]

    def test_broadcast_skips_self(self):
        sent = []
        ctx = ShardContext(1, 4)
        ctx.set_transport(lambda dest, uid, payload: sent.append(dest))
        ctx.broadcast(0, ())
        assert sent == [0, 2, 3]

    def test_unregister_endpoints_drops_pruned_operators(self):
        ctx = ShardContext(0, 2)
        a, b = object(), object()
        ctx.register(1, a)
        ctx.register(2, b)
        ctx.unregister_endpoints({id(a)})
        assert 1 not in ctx.endpoints and ctx.endpoints[2] is b
