"""Hypothesis property tests for the core interval/coalesce layer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.coalesce import coalesce_stream
from repro.core.intervals import Interval, cover, subtract_cover
from repro.core.tuples import SGT

intervals = st.builds(
    lambda ts, length: Interval(ts, ts + length),
    st.integers(min_value=0, max_value=80),
    st.integers(min_value=1, max_value=30),
)


def instants(intervals_list, lo=0, hi=130):
    return range(lo, hi)


@given(st.lists(intervals, max_size=12))
def test_cover_preserves_instants(ivs):
    covered = cover(ivs)
    for t in instants(ivs):
        expected = any(iv.contains(t) for iv in ivs)
        actual = any(iv.contains(t) for iv in covered)
        assert actual == expected


@given(st.lists(intervals, max_size=12))
def test_cover_is_disjoint_sorted_and_non_adjacent(ivs):
    covered = cover(ivs)
    for left, right in zip(covered, covered[1:]):
        assert left.exp < right.ts  # disjoint AND non-adjacent


@given(st.lists(intervals, max_size=10), st.lists(intervals, max_size=10))
def test_subtract_cover_pointwise(plus, minus):
    result = subtract_cover(plus, minus)
    for t in instants(plus):
        expected = any(iv.contains(t) for iv in plus) and not any(
            iv.contains(t) for iv in minus
        )
        actual = any(iv.contains(t) for iv in result)
        assert actual == expected


@given(st.lists(intervals, max_size=10), st.lists(intervals, max_size=10))
def test_subtract_cover_result_is_normalized(plus, minus):
    result = subtract_cover(plus, minus)
    for left, right in zip(result, result[1:]):
        assert left.exp < right.ts


@given(
    st.lists(
        st.tuples(st.sampled_from(["ab", "ac", "bc"]), intervals), max_size=15
    )
)
def test_coalesce_stream_preserves_snapshots(items):
    tuples = [
        SGT(key[0], key[1], "l", interval) for key, interval in items
    ]
    coalesced = coalesce_stream(tuples)
    for t in range(0, 130):
        before = {s.key() for s in tuples if s.valid_at(t)}
        after = {s.key() for s in coalesced if s.valid_at(t)}
        assert before == after


@given(
    st.lists(
        st.tuples(st.sampled_from(["ab", "ac"]), intervals), max_size=15
    )
)
def test_coalesce_stream_set_semantics(items):
    tuples = [SGT(key[0], key[1], "l", interval) for key, interval in items]
    coalesced = coalesce_stream(tuples)
    for t in range(0, 130):
        live = [s for s in coalesced if s.valid_at(t)]
        keys = [s.key() for s in live]
        assert len(keys) == len(set(keys))
