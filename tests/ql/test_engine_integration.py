"""StreamingGraphEngine.register over first-class Query values."""

import pytest

from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from repro.engine.session import StreamingGraphEngine
from repro.errors import PlanError
from repro.ql import Query

W = SlidingWindow(100, 10)
DATALOG = "Answer(x, y) <- knows+(x, y) as KP."

EDGES = [
    SGE("ada", "bob", "knows", 0),
    SGE("bob", "cyd", "knows", 12),
    SGE("cyd", "dan", "knows", 25),
]


class TestRegisterQuery:
    def test_all_dialects_one_engine(self):
        engine = StreamingGraphEngine()
        dl = engine.register(Query.datalog(DATALOG, W), name="datalog")
        rq = engine.register(Query.rpq("knows+", W), name="rpq")
        gc = engine.register(
            Query.gcore(
                "CONSTRUCT (x)-[:Answer]->(y) "
                "MATCH (x)-/<:knows*>/->(y) ON s WINDOW (100) SLIDE (10)"
            ),
            name="gcore",
        )
        for edge in EDGES:
            engine.push(edge)
        t = EDGES[-1].t
        keys = dl.valid_at(t)
        assert {(u, v) for u, v, _ in keys} == {
            ("ada", "bob"), ("bob", "cyd"), ("cyd", "dan"),
            ("ada", "cyd"), ("bob", "dan"), ("ada", "dan"),
        }
        assert rq.valid_at(t) == keys
        assert gc.valid_at(t) == keys

    def test_query_options_become_overrides(self):
        engine = StreamingGraphEngine()
        handle = engine.register(
            Query.datalog(DATALOG, W, path_impl="negative"), name="neg"
        )
        assert "NegativeTupleRpqOp" in handle.explain("physical")

    def test_explicit_override_wins_over_query_options(self):
        engine = StreamingGraphEngine()
        handle = engine.register(
            Query.datalog(DATALOG, W, path_impl="negative"),
            name="forced",
            path_impl="spath",
        )
        assert "SPathOp" in handle.explain("physical")

    def test_engine_wide_option_on_query_rejected(self):
        engine = StreamingGraphEngine()
        with pytest.raises(ValueError, match="engine-wide"):
            engine.register(Query.datalog(DATALOG, W), batch_size=64)

    def test_unbound_template_rejected(self):
        engine = StreamingGraphEngine()
        with pytest.raises(PlanError, match=r"\$a"):
            engine.register(
                Query.datalog("Answer(x, y) <- $a(x, y).", W), name="t"
            )

    def test_dd_backend_rejects_rpq_dialect(self):
        engine = StreamingGraphEngine(backend="dd")
        with pytest.raises(PlanError, match="rule program"):
            engine.register(Query.rpq("knows+", W), name="r")

    def test_dd_handle_explain_level_parity(self):
        engine = StreamingGraphEngine(backend="dd")
        handle = engine.register(Query.datalog(DATALOG, W), name="q")
        # Same handle API across backends: every sga level is accepted.
        for level in ("source", "logical", "optimized", "physical"):
            assert "knows+" in handle.explain(level)
        with pytest.raises(PlanError):
            handle.explain("nope")

    def test_handle_explain_levels(self):
        engine = StreamingGraphEngine()
        handle = engine.register(Query.datalog(DATALOG, W), name="q")
        assert "RELABEL" in handle.explain()
        assert "PATH (knows)+ -> Answer" in handle.explain("optimized")
        assert "SinkOp" in handle.explain("physical")
        with pytest.raises(PlanError):
            handle.explain("nope")

    def test_legacy_facade_routes_through_query(self):
        import warnings

        from repro.engine import StreamingGraphQueryProcessor

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            processor = StreamingGraphQueryProcessor.from_datalog(DATALOG, W)
        for edge in EDGES:
            processor.push(edge)
        assert ("ada", "dan", "Answer") in processor.valid_at(EDGES[-1].t)
