"""Uniform ParseError surface: line/column + caret excerpt, all frontends."""

import pytest

from repro.errors import ParseError
from repro.gcore import parse_gcore
from repro.query.parser import parse_rq
from repro.regex.parser import parse_regex


def _raises(fn, *args) -> ParseError:
    with pytest.raises(ParseError) as info:
        fn(*args)
    return info.value


class TestDatalogErrors:
    def test_line_column_and_caret(self):
        err = _raises(
            parse_rq,
            "Answer(x, y) <- knows(x, y).\nBad(x, ) <- likes(x, y).",
        )
        assert (err.line, err.column) == (2, 8)
        message = str(err)
        assert "(line 2, column 8)" in message
        excerpt, caret = message.splitlines()[1:3]
        assert excerpt.strip() == "Bad(x, ) <- likes(x, y)."
        assert caret.index("^") == excerpt.index(")")

    def test_comments_do_not_shift_positions(self):
        err = _raises(
            parse_rq,
            "# leading comment\nAnswer(x, y) <- knows(x y).",
        )
        assert err.line == 2
        # The caret must point into the original (commented) source.
        excerpt = str(err).splitlines()[1]
        assert "knows(x y)" in excerpt

    def test_position_attribute_is_flat_offset(self):
        err = _raises(parse_rq, "Answer(x y) <- a(x, y).")
        assert err.position == err.column - 1  # single-line: col == offset+1


class TestRegexErrors:
    def test_caret_points_at_open_paren(self):
        err = _raises(parse_regex, "a (b|c * d")
        assert (err.line, err.column) == (1, 3)
        excerpt, caret = str(err).splitlines()[1:3]
        assert excerpt[caret.index("^")] == "("

    def test_end_of_expression(self):
        err = _raises(parse_regex, "a |")
        assert err.line == 1
        assert err.column == 4  # one past the last character


class TestGcoreErrors:
    def test_line_column_reported(self):
        err = _raises(
            parse_gcore,
            "CONSTRUCT (x)-[:out]->(y) "
            "MATCH (x)-[:a]->(y) ON s WINDOW (10 parsecs)",
        )
        assert err.line == 1
        assert "parsecs" in str(err).splitlines()[1]

    def test_missing_match(self):
        err = _raises(parse_gcore, "CONSTRUCT (x)-[:out]->(y)")
        assert "MATCH" in str(err)
        assert err.line is not None


class TestBackwardCompatibility:
    def test_position_only_error(self):
        err = ParseError("bad token", position=17)
        assert err.position == 17
        assert "17" in str(err)
        assert err.line is None and err.column is None

    def test_message_only_error(self):
        err = ParseError("oops")
        assert err.position is None
        assert str(err) == "oops"

    def test_offset_past_source_end_clamped(self):
        err = ParseError("unexpected end", position=99, source="one\ntwo")
        assert (err.line, err.column) == (2, 4)
