"""Unit tests for the first-class Query value object and pipeline."""

import pytest

from repro import ql
from repro.core.windows import SlidingWindow
from repro.errors import PlanError, QueryValidationError
from repro.ql import CompileOptions, Query

W = SlidingWindow(100, 10)
DATALOG = "Answer(x, y) <- knows+(x, y) as KP."
GCORE = "CONSTRUCT (x)-[:out]->(y) MATCH (x)-[:a]->(y) ON s WINDOW (10)"


class TestDialectDetection:
    def test_datalog_arrow(self):
        assert ql.detect_dialect(DATALOG) == "datalog"
        assert ql.detect_dialect("Answer(x, y) :- a(x, y).") == "datalog"

    def test_gcore_keywords(self):
        assert ql.detect_dialect(GCORE) == "gcore"
        assert ql.detect_dialect("  match (x)-[:a]->(y) ON s WINDOW (5)") == "gcore"
        assert ql.detect_dialect("PATH p = (x)-[:a]->(y) CONSTRUCT ...") == "gcore"

    def test_regex_fallback(self):
        assert ql.detect_dialect("a b* (c|d)+") == "rpq"

    def test_gcore_backward_edge_not_mistaken_for_rule_arrow(self):
        text = (
            "CONSTRUCT (x)-[:Answer]->(y) "
            "MATCH (x)<-[:knows]-(y) ON s WINDOW (100) SLIDE (10)"
        )
        assert ql.detect_dialect(text) == "gcore"
        assert Query.from_text(text).plan().out_label == "Answer"
        # ...even with ASCII-art whitespace inside the edge.
        spaced = (
            "CONSTRUCT (x)-[:o]->(y) MATCH (x) <- [:a] - (y) ON s WINDOW (5)"
        )
        assert ql.detect_dialect(spaced) == "gcore"

    def test_datalog_head_named_like_gcore_keyword(self):
        assert ql.detect_dialect("Match(x, y) <- a(x, y).") == "datalog"

    def test_regex_label_starting_with_keyword_is_rpq(self):
        assert ql.detect_dialect("path+") == "rpq"
        assert ql.detect_dialect("match follows*") == "rpq"
        q = Query.from_text("path+", window=100)
        assert q.dialect == "rpq"
        assert q.plan().out_label == "Answer"

    def test_from_text_gcore_rejects_conflicting_window(self):
        with pytest.raises(QueryValidationError, match="ON"):
            Query.from_text(GCORE, window=100)

    def test_from_text_routes(self):
        assert Query.from_text(DATALOG, W).dialect == "datalog"
        assert Query.from_text(GCORE).dialect == "gcore"
        assert Query.from_text("knows+", 100).dialect == "rpq"

    def test_from_text_window_required_for_datalog(self):
        with pytest.raises(QueryValidationError):
            Query.from_text(DATALOG)


class TestQueryValue:
    def test_frozen_and_hashable(self):
        a = Query.datalog(DATALOG, W)
        b = Query.datalog(DATALOG, W)
        assert a == b and hash(a) == hash(b)
        assert a != Query.datalog(DATALOG, SlidingWindow(50))

    def test_window_coercion(self):
        q = Query.datalog(DATALOG, 100, slide=10)
        assert q.window == W

    def test_invalid_dialect(self):
        with pytest.raises(PlanError):
            Query(text="x", dialect="sql", window=W)

    def test_gcore_rejects_external_window(self):
        q = Query.gcore(GCORE)
        assert q.window is None
        with pytest.raises(QueryValidationError):
            q.with_window(100)

    def test_with_options_merge(self):
        q = Query.datalog(DATALOG, W, path_impl="negative")
        q2 = q.with_options(materialize_paths=False)
        assert q2.options.path_impl == "negative"
        assert q2.options.materialize_paths is False

    def test_bad_option_rejected(self):
        with pytest.raises(PlanError):
            CompileOptions(path_impl="quantum")


class TestPipelineStages:
    def test_logical_plan_memoized(self):
        q = Query.datalog(DATALOG, W)
        assert q.plan() is Query.datalog(DATALOG, W).plan()

    def test_gcore_and_datalog_meet_in_one_pipeline(self):
        gq = Query.gcore(
            "CONSTRUCT (x)-[:Answer]->(y) "
            "MATCH (x)-/<:knows*>/->(y) ON s WINDOW (100) SLIDE (10)"
        )
        assert gq.sgq().window == W
        assert gq.plan().out_label == "Answer"

    def test_rpq_has_no_sgq(self):
        with pytest.raises(PlanError):
            Query.rpq("knows+", W).sgq()

    def test_explain_levels(self):
        q = Query.datalog(DATALOG, W)
        assert "WSCAN knows" in q.explain("logical")
        assert "PATH (knows)+ -> Answer" in q.explain("optimized")
        physical = q.explain("physical")
        assert "SinkOp" in physical and "SPathOp" in physical
        assert "Query[datalog" in q.explain("source")
        for stage in ("source", "logical", "optimized", "physical"):
            assert f"-- {stage} " in q.explain("all")

    def test_explain_unknown_level(self):
        with pytest.raises(PlanError):
            Query.datalog(DATALOG, W).explain("telepathic")

    def test_physical_respects_options(self):
        q = Query.datalog(DATALOG, W, path_impl="negative")
        assert "NegativeTupleRpqOp" in q.explain("physical")

    def test_unbound_params_refuse_compile(self):
        q = Query.datalog("Answer(x, y) <- $a+(x, y) as T.", W)
        assert q.params == ("a",)
        with pytest.raises(PlanError, match=r"\$a"):
            q.plan()


class TestCounters:
    def test_parse_and_translate_counted_once(self):
        ql.reset_counters()
        q = Query.datalog("Answer(x, y) <- likes(x, y).", W)
        q.plan()
        q.plan()
        assert ql.COUNTERS.parses == 1
        assert ql.COUNTERS.translations == 1
