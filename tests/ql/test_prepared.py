"""PreparedQuery: compile once, bind many — the acceptance contract.

* binding a second instance performs **no re-parse** (compile-counter
  instrumentation);
* bound plans are bit-identical to the pre-refactor text-compile path
  (``SGQ.from_text`` + SGQParser) for Q1-Q7 on the Table 2 workloads;
* registering bound instances on an engine session reuses the cached
  compiled plan structure (operator sharing, no new operators for a
  re-registration of the same binding).
"""

import pytest

from repro import ql
from repro.algebra.translate import sgq_to_sga
from repro.core.windows import HOUR, SlidingWindow
from repro.engine.session import StreamingGraphEngine
from repro.errors import PlanError, QueryValidationError
from repro.query.sgq import SGQ
from repro.workloads import QUERIES, labels_for
from repro.workloads.queries import rpq_direct_plan

W = SlidingWindow(8 * HOUR, HOUR)

Q4_TEMPLATE = """
D(x, t) <- $a(x, y), $b(y, z), $c(z, t).
Answer(x, y) <- D+(x, y) as DP.
"""


class TestBindContract:
    def test_second_bind_returns_identical_query(self):
        prepared = ql.prepare(Q4_TEMPLATE, window=W)
        first = prepared.bind(a="knows", b="likes", c="hasCreator")
        second = prepared.bind(a="knows", b="likes", c="hasCreator")
        assert second is first
        assert second.plan() is first.plan()

    def test_bind_performs_no_parse(self):
        prepared = ql.prepare(Q4_TEMPLATE, window=W)  # parses here, once
        ql.reset_counters()
        prepared.bind(a="knows", b="likes", c="hasCreator")
        prepared.bind(a="a2q", b="c2q", c="c2a")
        prepared.bind(a="x1", b="x2", c="x3")
        assert ql.COUNTERS.parses == 0
        assert ql.COUNTERS.binds == 3
        # One translation for the shared template plan; label binding is
        # structural substitution, not re-translation.
        assert ql.COUNTERS.translations <= 1

    def test_distinct_windows_translate_once_each(self):
        prepared = ql.prepare(Q4_TEMPLATE)
        ql.reset_counters()
        prepared.bind(window=W, a="k", b="l", c="m")
        prepared.bind(window=W, a="p", b="q", c="r")
        other = SlidingWindow(60)
        prepared.bind(window=other, a="k", b="l", c="m")
        prepared.bind(window=other, a="p", b="q", c="r")
        assert ql.COUNTERS.parses == 0
        assert ql.COUNTERS.translations == 2

    def test_binding_validation(self):
        prepared = ql.prepare(Q4_TEMPLATE, window=W)
        with pytest.raises(PlanError, match="unbound"):
            prepared.bind(a="knows")
        with pytest.raises(PlanError, match="unknown"):
            prepared.bind(a="knows", b="l", c="m", d="extra")
        with pytest.raises(PlanError, match="non-empty label"):
            prepared.bind(a="", b="l", c="m")

    def test_window_required_somewhere(self):
        prepared = ql.prepare(Q4_TEMPLATE)
        with pytest.raises(QueryValidationError, match="window"):
            prepared.bind(a="k", b="l", c="m")

    def test_bare_slide_repaces_template_window(self):
        prepared = ql.prepare(Q4_TEMPLATE, window=W)
        bound = prepared.bind(slide=5, a="k", b="l", c="m")
        assert bound.window == SlidingWindow(W.size, 5)

    def test_slide_without_any_window_rejected(self):
        with pytest.raises(QueryValidationError, match="slide"):
            ql.prepare(Q4_TEMPLATE, slide=5)
        prepared = ql.prepare(Q4_TEMPLATE)
        with pytest.raises(QueryValidationError, match="slide"):
            prepared.bind(slide=5, a="k", b="l", c="m")

    def test_head_label_params_rejected(self):
        with pytest.raises(QueryValidationError, match="input"):
            ql.prepare("$head(x, y) <- a(x, y).\nAnswer(x, y) <- a(x, y).",
                       window=W)

    def test_two_params_same_label_share_window_override(self):
        # Both $a and $b bind "knows": a bind-time override keyed by the
        # bound label must reach *both* scans, as a text compile would.
        tpl = ql.prepare("Answer(x, y) <- $a(x, z), $b(z, y).", window=W)
        override = SlidingWindow(50, 5)
        bound = tpl.bind(a="knows", b="knows",
                         label_windows={"knows": override})
        direct = sgq_to_sga(SGQ.from_text(
            "Answer(x, y) <- knows(x, z), knows(z, y).", W,
            {"knows": override},
        ))
        assert bound.plan() == direct

    def test_bound_caches_are_lru_capped(self):
        tpl = ql.prepare("Answer(x, y) <- $a(x, y).", window=W)
        for i in range(tpl.MAX_BOUND + 50):
            tpl.bind(a=f"label_{i}")
        assert len(tpl._bound) <= tpl.MAX_BOUND

    def test_gcore_template_rejects_conflicting_window(self):
        with pytest.raises(QueryValidationError, match="ON"):
            ql.prepare("MATCH (x)-[:a]->(y) ON s WINDOW (5)", window=100)
        tpl = ql.prepare(
            "CONSTRUCT (x)-[:Answer]->(y) "
            "MATCH (x)-[:$r]->(y) ON s WINDOW (5)"
        )
        with pytest.raises(QueryValidationError, match="ON"):
            tpl.bind(r="knows", window=100)

    def test_anonymous_closure_name_substitutes(self):
        prepared = ql.prepare("Answer(x, y) <- $a+(x, y).", window=W)
        bound = prepared.bind(a="knows")
        direct = sgq_to_sga(SGQ.from_text("Answer(x, y) <- knows+(x, y).", W))
        assert bound.plan() == direct

    def test_bound_query_value_semantics(self):
        prepared = ql.prepare(Q4_TEMPLATE, window=W)
        bound = prepared.bind(a="knows", b="likes", c="hasCreator")
        from_text = ql.Query.datalog(bound.text, W)
        assert bound == from_text  # a bound query IS its text + window
        assert bound.bindings == (("a", "knows"), ("b", "likes"),
                                  ("c", "hasCreator"))


class TestBitIdenticalToTextCompile:
    """Acceptance: Q1-Q7 bound plans == pre-refactor text-compiled plans."""

    @pytest.mark.parametrize("dataset", ["so", "snb"])
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_workload_plan_equals_text_compile(self, name, dataset):
        labels = labels_for(name, dataset)
        text = QUERIES[name].datalog(labels)
        via_text = sgq_to_sga(SGQ.from_text(text, W))
        via_bind = QUERIES[name].plan(labels, W)
        assert via_bind == via_text

    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4"])
    def test_rpq_direct_plan_equals_regex_compile(self, name):
        labels = labels_for(name, "snb")
        plan = rpq_direct_plan(name, labels, W)
        # Pre-refactor construction: parse the instantiated regex text.
        from repro.algebra.operators import Path, Relabel, WScan
        from repro.regex.parser import parse_regex
        from repro.ql.params import substitute_text
        from repro.workloads.queries import _RPQ_REGEXES

        regex = parse_regex(substitute_text(_RPQ_REGEXES[name], labels))
        inputs = {label: WScan(label, W) for label in regex.alphabet()}
        expected = Relabel(Path.over(inputs, regex, "AnswerPath"), "Answer")
        assert plan == expected

    def test_workload_datalog_text_instantiates(self):
        text = QUERIES["Q6"].datalog(labels_for("Q6", "snb"))
        assert "$" not in text
        assert "knows+(x, y) as AP" in text


class TestEngineReuse:
    def test_rebind_registration_adds_no_operators(self):
        engine = StreamingGraphEngine()
        prepared = ql.prepare(Q4_TEMPLATE, window=W)
        first = prepared.bind(a="knows", b="likes", c="hasCreator")
        engine.register(first, name="first")
        operators = engine.operator_count()
        ql.reset_counters()
        second = prepared.bind(a="knows", b="likes", c="hasCreator")
        engine.register(second, name="second")
        # No re-parse, no re-translation, and the session plan cache
        # resolved every operator of the second registration.
        assert ql.COUNTERS.parses == 0
        assert ql.COUNTERS.translations == 0
        assert engine.operator_count() == operators
        assert engine.sharing_savings() > 0

    def test_partial_sharing_across_bindings(self):
        engine = StreamingGraphEngine()
        prepared = ql.prepare(
            "Answer(x, y) <- $a(x, z), follows+(z, y) as FP.", window=W
        )
        engine.register(prepared.bind(a="likes"), name="likes")
        operators = engine.operator_count()
        engine.register(prepared.bind(a="mentions"), name="mentions")
        # The follows-closure (and its WSCAN) are shared; only the $a
        # scan and the join differ.
        added = engine.operator_count() - operators
        assert 0 < added < operators

    def test_results_identical_to_text_registration(self):
        from tests.conftest import make_stream

        labels = labels_for("Q2", "snb")
        stream = make_stream(17, 60 * HOUR, 40, tuple(labels.values()),
                             max_gap=30)
        text = QUERIES["Q2"].datalog(labels)

        bound_engine = StreamingGraphEngine()
        handle_bound = bound_engine.register(
            QUERIES["Q2"].query(labels, W), name="q2"
        )
        bound_engine.push_many(list(stream))

        text_engine = StreamingGraphEngine()
        handle_text = text_engine.register(SGQ.from_text(text, W), name="q2")
        text_engine.push_many(list(stream))

        assert handle_bound.results() == handle_text.results()
        assert handle_bound.coverage() == handle_text.coverage()

    def test_dd_backend_accepts_bound_query(self):
        from tests.conftest import make_stream

        labels = labels_for("Q1", "snb")
        stream = list(make_stream(11, 60 * HOUR, 30, tuple(labels.values()),
                                  max_gap=30))
        bound = QUERIES["Q1"].query(labels, W)

        dd_engine = StreamingGraphEngine(backend="dd")
        handle = dd_engine.register(bound, name="q1")
        dd_engine.push_many(stream)

        text_engine = StreamingGraphEngine(backend="dd")
        handle_text = text_engine.register(
            SGQ.from_text(QUERIES["Q1"].datalog(labels), W), name="q1"
        )
        text_engine.push_many(stream)
        assert handle.results() == handle_text.results()


class TestGcoreTemplates:
    def test_gcore_prepare_and_bind(self):
        prepared = ql.prepare(
            "CONSTRUCT (x)-[:Answer]->(y) "
            "MATCH (x)-/<:$rel*>/->(y) ON s WINDOW (100) SLIDE (10)"
        )
        assert prepared.dialect == "gcore"
        bound = prepared.bind(rel="knows")
        direct = ql.Query.gcore(
            "CONSTRUCT (x)-[:Answer]->(y) "
            "MATCH (x)-/<:knows*>/->(y) ON s WINDOW (100) SLIDE (10)"
        )
        assert bound.plan() == direct.plan()
        assert bound.sgq().window == SlidingWindow(100, 10)
