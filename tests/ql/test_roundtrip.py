"""Round-trip: builder-authored Query → text → parsed Query → same plan.

Each of Q1-Q7 (Table 1) is authored with the fluent builder using the
canonical variable names, rendered to Datalog text, re-parsed through
the text frontend, and both the re-parsed plan and the workload
template's canonical plan must be *identical* to the builder's
precompiled plan.
"""

import pytest

from repro import ql
from repro.core.windows import SlidingWindow
from repro.errors import QueryValidationError
from repro.ql import Query
from repro.workloads import QUERIES

W = SlidingWindow(15)
ABC = {"a": "a", "b": "b", "c": "c"}


def _q1():
    return ql.match().closure("a", "x", "y", name="TC_A")


def _q2():
    return (
        ql.match()
        .rule("Answer", "x", "y").edge("a", "x", "y")
        .rule("Answer", "x", "y").edge("a", "x", "z")
                                 .closure("b", "z", "y", name="TC_B")
    )


def _q3():
    return (
        ql.match()
        .rule("AB", "x", "y").edge("a", "x", "y")
        .rule("AB", "x", "y").edge("a", "x", "z")
                             .closure("b", "z", "y", name="TC_B")
        .rule("Answer", "x", "y").edge("AB", "x", "y")
        .rule("Answer", "x", "y").edge("AB", "x", "z")
                                 .closure("c", "z", "y", name="TC_C")
    )


def _q4():
    return (
        ql.match()
        .rule("D", "x", "t").edge("a", "x", "y")
                            .edge("b", "y", "z")
                            .edge("c", "z", "t")
        .rule("Answer", "x", "y").closure("D", "x", "y", name="DP")
    )


def _q5():
    return (
        ql.match()
        .rule("RR", "m1", "m2").edge("a", "x", "y")
                               .edge("b", "m1", "x")
                               .edge("b", "m2", "y")
                               .edge("c", "m2", "m1")
        .rule("Answer", "m1", "m2").edge("RR", "m1", "m2")
    )


def _q6():
    return (
        ql.match()
        .rule("RL", "x", "y").closure("a", "x", "y", name="AP")
                             .edge("b", "x", "m")
                             .edge("c", "m", "y")
        .rule("Answer", "x", "y").edge("RL", "x", "y")
    )


def _q7():
    return (
        ql.match()
        .rule("RL", "x", "y").closure("a", "x", "y", name="AP")
                             .edge("b", "x", "m")
                             .edge("c", "m", "y")
        .rule("Answer", "x", "m").closure("RL", "x", "y", name="RLP")
                                 .edge("c", "m", "y")
    )


BUILDERS = {
    "Q1": _q1,
    "Q2": _q2,
    "Q3": _q3,
    "Q4": _q4,
    "Q5": _q5,
    "Q6": _q6,
    "Q7": _q7,
}


class TestTable1RoundTrip:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_builder_text_parse_identical_plan(self, name):
        built = BUILDERS[name]().window(W.size).slide(W.slide).build()
        # 1. The builder's in-memory program and its rendered text parse
        #    to the same canonical plan.
        reparsed = Query.datalog(built.text, built.window)
        assert reparsed.plan() == built.plan()
        # 2. Both agree with the workload template's canonical plan.
        canonical = QUERIES[name].plan(ABC, W)
        assert built.plan() == canonical

    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_round_trip_query_values_agree(self, name):
        built = BUILDERS[name]().window(W.size).slide(W.slide).build()
        # Text → Query → text is a fixpoint.
        reparsed = Query.datalog(built.text, built.window)
        assert Query.datalog(reparsed.text, reparsed.window) == reparsed


class TestBuilderMechanics:
    def test_issue_example_chain(self):
        q = (
            ql.match()
            .edge("likes")
            .closure("follows")
            .window(hours=1)
            .slide(minutes=10)
            .build()
        )
        assert q.window == SlidingWindow(60, 10)
        assert "likes(x, v1)" in q.text
        assert "follows+(v1, y) as follows_tc" in q.text
        assert q.plan().out_label == "Answer"

    def test_chain_tail_renamed_to_head_target(self):
        q = ql.match("u", "w").edge("a").edge("b").window(10).build()
        assert q.text == "Answer(u, w) <- a(u, v1), b(v1, w)."

    def test_auto_variables_skip_user_names(self):
        q = ql.match().edge("a", "x", "v1").edge("b").window(10).build()
        assert q.text == "Answer(x, y) <- a(x, v1), b(v1, y)."

    def test_duration_units(self):
        q = ql.match().edge("a").window(days=1, hours=2).slide(hours=1).build()
        assert q.window == SlidingWindow(26 * 60, 60)

    def test_window_required(self):
        with pytest.raises(QueryValidationError, match="window"):
            ql.match().edge("a").build()

    def test_empty_rule_rejected(self):
        with pytest.raises(QueryValidationError, match="no body atoms"):
            ql.match().rule("Answer").window(10).build()

    def test_no_rules_rejected(self):
        with pytest.raises(QueryValidationError, match="no rules"):
            ql.match().window(10).build()

    def test_label_window_override(self):
        q = (
            ql.match()
            .edge("social", "x", "z")
            .edge("purchase", "z", "y")
            .window(days=30)
            .label_window("social", hours=24)
            .build()
        )
        sgq = q.sgq()
        assert sgq.window_for("social").size == 24 * 60
        assert sgq.window_for("purchase").size == 30 * 24 * 60

    def test_builder_options_carried(self):
        q = ql.match().edge("a").window(10).options(path_impl="negative").build()
        assert q.options.path_impl == "negative"

    def test_params_require_prepare(self):
        with pytest.raises(QueryValidationError, match="prepare"):
            ql.match().edge("$a").window(10).build()
        prepared = ql.match().edge("$a").window(10).prepare()
        bound = prepared.bind(a="knows")
        assert "knows(x, y)" in bound.text

    def test_builder_precompiled_plan_attached(self):
        ql.reset_counters()
        q = ql.match().closure("knows").window(100).slide(10).build()
        assert ql.COUNTERS.parses == 0  # authored in memory, never parsed
        q.plan()
        assert ql.COUNTERS.parses == 0
