"""Golden equivalence: batched execution must match per-tuple execution.

For each example query shipped in ``examples/``, running the stream
through the batched executor (any batch size) must produce the identical
result-sgt multiset — payloads and intervals included — as per-tuple
execution.  Batches preserve arrival order exactly (whole-slide
accumulation, consecutive same-label runs), so every operator observes
the same event sequence; these tests pin that contract end to end.
"""

from __future__ import annotations

import pytest

from repro.core.windows import SlidingWindow
from repro.datasets import stackoverflow_stream
from tests.conftest import SessionHarness
from repro.workloads import labels_for, q4_plan_space

BATCH_SIZES = (1, 7, 64, 1024)

# ----------------------------------------------------------------------
# The example queries (examples/*.py) and their streams
# ----------------------------------------------------------------------

QUICKSTART_QUERY = "Answer(x, y) <- knows+(x, y) as KnowsPath."

SOCIAL_GCORE = """
PATH RL = (u1) -/<:follows*>/-> (u2),
          (u1)-[:likes]->(m1)<-[:posts]-(u2)
CONSTRUCT (u)-[:notify]->(m)
MATCH (u) -/p<~RL*>/-> (v),
      (v)-[:posts]->(m)
ON social_stream WINDOW (360 ticks) SLIDE (60 ticks)
"""

MULTI_STREAM_GCORE = """
GRAPH VIEW rec_stream AS (
CONSTRUCT (u1)-[:recommendation]->(p)
MATCH (u1)
OPTIONAL (u1)-[:follows]->(u2)
OPTIONAL (u1)-[:likes]->(m)<-[:posts]-(u2)
ON social_stream WINDOW (24 ticks)
MATCH (c)-[:purchase]->(p)
ON tx_stream WINDOW (720 ticks) SLIDE (24 ticks)
WHERE (u2) = (c) )
"""


def _social_stream(n_edges=1500):
    social = stackoverflow_stream(n_edges=n_edges, n_users=60, seed=42)
    relabel = {"a2q": "follows", "c2q": "likes", "c2a": "posts"}
    return [e.__class__(e.src, e.trg, relabel[e.label], e.t) for e in social]


def _tx_stream(n_edges=1200):
    social = stackoverflow_stream(n_edges=n_edges, n_users=50, seed=9)
    relabel = {"a2q": "follows", "c2q": "likes", "c2a": "purchase"}
    return [e.__class__(e.src, e.trg, relabel[e.label], e.t) for e in social]


def _signature(processor):
    """The full observable output: raw count, coalesced results with
    payloads, and the net validity coverage."""
    results = sorted(
        (
            repr(s.src),
            repr(s.trg),
            s.label,
            s.interval.ts,
            s.interval.exp,
            str(s.payload),
        )
        for s in processor.results()
    )
    coverage = {
        key: tuple(intervals)
        for key, intervals in processor.coverage().items()
    }
    return processor.result_count(), results, coverage


def _assert_equivalent(make_processor, stream):
    reference = None
    for batch_size in (None,) + BATCH_SIZES:
        processor = make_processor(batch_size)
        processor.run(stream)
        signature = _signature(processor)
        if reference is None:
            reference = signature  # per-tuple execution
        else:
            assert signature == reference, (
                f"batch_size={batch_size} diverged from per-tuple execution"
            )


class TestExampleQueryEquivalence:
    def test_quickstart_closure(self):
        # examples/quickstart.py: knows+ with materialized paths.
        stream = [
            e.__class__(e.src, e.trg, "knows", e.t)
            for e in stackoverflow_stream(n_edges=1200, n_users=50, seed=3)
            if e.label == "a2q"
        ]
        window = SlidingWindow(size=100, slide=10)

        def make(batch_size):
            return SessionHarness.from_datalog(
                QUICKSTART_QUERY, window=window, batch_size=batch_size
            )

        _assert_equivalent(make, stream)

    @pytest.mark.parametrize("path_impl", ["spath", "negative"])
    def test_social_recommendation(self, path_impl):
        # examples/social_recommendation.py: pattern + closure over the
        # derived recentLiker stream, for both PATH implementations.
        stream = _social_stream()

        def make(batch_size):
            return SessionHarness.from_gcore(
                SOCIAL_GCORE, path_impl=path_impl, batch_size=batch_size
            )

        _assert_equivalent(make, stream)

    def test_multi_stream_join(self):
        # examples/multi_stream_join.py: union patterns over two streams
        # with different windows.
        stream = sorted(
            _tx_stream(), key=lambda e: e.t
        )

        def make(batch_size):
            return SessionHarness.from_gcore(
                MULTI_STREAM_GCORE, batch_size=batch_size
            )

        _assert_equivalent(make, stream)

    @pytest.mark.parametrize("path_impl", ["spath", "negative"])
    def test_path_over_derived_self_join(self, path_impl):
        # Regression: a PATH over a relation derived by a *self-join*
        # (the same source label on two join ports).  Whole-batch
        # delivery at the fanout point would reorder the derived-label
        # event stream relative to per-tuple interleaving, and the
        # order-sensitive expand-only PATH then records different first
        # derivations; batches must degrade to per-event delivery there.
        import random

        from repro.core.tuples import SGE

        rng = random.Random(2)
        stream = [
            SGE(rng.randrange(5), rng.randrange(5), "a", t)
            for t in sorted(rng.randrange(60) for _ in range(60))
        ]
        window = SlidingWindow(size=8, slide=2)
        query = "d(x, z) <- a(x, y), a(y, z). Answer(x, z) <- d+(x, z) as P."

        def make(batch_size):
            return SessionHarness.from_datalog(
                query,
                window=window,
                path_impl=path_impl,
                batch_size=batch_size,
            )

        _assert_equivalent(make, stream)

    @pytest.mark.parametrize("plan_name", ["SGA", "P1", "P2", "P3"])
    def test_plan_exploration_q4_plans(self, plan_name):
        # examples/plan_exploration.py: every plan of the Q4 plan space.
        window = SlidingWindow(size=480, slide=60)
        plan = q4_plan_space(labels_for("Q4", "so"), window)[plan_name]
        stream = stackoverflow_stream(n_edges=1500, n_users=80, seed=7)

        def make(batch_size):
            return SessionHarness(
                plan, path_impl="negative", batch_size=batch_size
            )

        _assert_equivalent(make, stream)
