"""Golden equivalence: interned/columnar + timing-wheel execution must be
bit-identical — as decoded result sets per epoch — to the row-wise path.

``execution="rows"`` preserves the historical object-per-tuple pipeline
(per-tuple events, heap-era semantics), so running every Table 1 query
on both executions over the same stream and comparing

* the coalesced decoded result set,
* the net validity coverage, and
* the ``valid_at`` snapshot at every epoch's final instant

pins the whole interning/columnar/wheel machinery to the reference
semantics.  The dd backend is additionally held to the sga answers at
the final epoch (the cross-backend golden the engine API guarantees).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import Scale, _stream
from repro.core.windows import HOUR
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.query.parser import parse_rq
from repro.query.sgq import SGQ
from repro.workloads import QUERIES, labels_for

ALL = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7")
SCALE = Scale(n_edges=500, n_vertices=60, window=6 * HOUR, slide=HOUR)


@pytest.fixture(scope="module")
def streams():
    return {ds: _stream(ds, SCALE) for ds in ("so", "snb")}


def _run_sga(plan, stream, execution):
    engine = StreamingGraphEngine(
        EngineConfig(
            backend="sga",
            path_impl="negative",
            materialize_paths=False,
            execution=execution,
        )
    )
    handle = engine.register(plan, name="q")
    engine.push_many(stream)
    return handle


def _epoch_instants(stream, slide):
    boundaries = sorted({(e.t // slide) * slide for e in stream})
    return [b + slide - 1 for b in boundaries]


class TestColumnarGolden:
    @pytest.mark.parametrize("dataset", ["so", "snb"])
    @pytest.mark.parametrize("query_name", ALL)
    def test_columnar_matches_rows(self, streams, dataset, query_name):
        stream = streams[dataset]
        window = SCALE.sliding_window()
        plan = QUERIES[query_name].plan(labels_for(query_name, dataset), window)
        rows = _run_sga(plan, stream, "rows")
        cols = _run_sga(plan, stream, "columnar")

        assert set(cols.results()) == set(rows.results())
        cover_rows = {k: tuple(v) for k, v in rows.coverage().items()}
        cover_cols = {k: tuple(v) for k, v in cols.coverage().items()}
        assert cover_cols == cover_rows
        for t in _epoch_instants(stream, window.slide):
            assert cols.valid_at(t) == rows.valid_at(t), f"t={t}"

    @pytest.mark.parametrize("dataset", ["so", "snb"])
    @pytest.mark.parametrize("query_name", ALL)
    def test_columnar_matches_dd_backend(self, streams, dataset, query_name):
        """Both backends, same decoded per-epoch answers.

        DD batches one slide per epoch, so the comparison instant is the
        final instant of the last epoch (DD's temporal resolution).
        """
        stream = streams[dataset]
        window = SCALE.sliding_window()
        labels = labels_for(query_name, dataset)
        plan = QUERIES[query_name].plan(labels, window)
        sga = _run_sga(plan, stream, "columnar")

        engine = StreamingGraphEngine(EngineConfig(backend="dd"))
        program = parse_rq(QUERIES[query_name].datalog(labels))
        dd = engine.register(SGQ(program, window), name="q")
        engine.push_many(stream)

        t = _epoch_instants(stream, window.slide)[-1]
        sga_keys = {(u, v) for u, v, _ in sga.valid_at(t)}
        dd_keys = {(u, v) for u, v, _ in dd.valid_at(t)}
        assert sga_keys == dd_keys


class TestMaterializedPathsGolden:
    """Materialized paths survive interning.

    Which witness path the expand-only operator records is (and always
    was) hash-order dependent, so hop sequences are not compared
    verbatim; what interning must guarantee is that the *result sets*
    agree and every decoded payload is a well-formed path over original
    vertex values chaining the result's endpoints.
    """

    @pytest.mark.parametrize("dataset", ["so", "snb"])
    def test_path_payloads_decode_to_chained_vertices(self, streams, dataset):
        stream = streams[dataset]
        window = SCALE.sliding_window()
        plan = QUERIES["Q1"].plan(labels_for("Q1", dataset), window)

        def run(execution):
            engine = StreamingGraphEngine(
                EngineConfig(
                    backend="sga", path_impl="negative", execution=execution
                )
            )
            handle = engine.register(plan, name="q")
            engine.push_many(stream)
            return handle.results()

        rows = run("rows")
        cols = run("columnar")
        assert {(s.key(), s.interval) for s in cols} == {
            (s.key(), s.interval) for s in rows
        }
        raw_vertices = {e.src for e in stream} | {e.trg for e in stream}
        for sgt in cols:
            hops = sgt.payload.edges()
            assert hops, "materialized result must carry its path"
            vertices = [hops[0].src] + [hop.trg for hop in hops]
            assert vertices[0] == sgt.src and vertices[-1] == sgt.trg
            # Decoded, not dense ids: every hop endpoint is a stream vertex.
            assert set(vertices) <= raw_vertices
