"""Golden equivalence: the numpy vector execution must be bit-identical
to the columnar reference (and set-identical to the historical row-wise
path) on every Table 1 query over both benchmark streams.

``execution="vector"`` carries ndarray-backed :class:`DeltaColumns`
through the kernels and relaxes exactly one thing — per-slide label
grouping at ingress, and only for plans the compile-time analysis
(:func:`repro.ql.pipeline.vector_ingress_mode`) proves insensitive to
it.  These tests pin the whole mode to the columnar semantics on

* the coalesced decoded result set (asserted as *lists* against
  columnar: same members in the same order — bit-identical, not just
  set-equal),
* the net validity coverage,
* the ``valid_at`` snapshot at every epoch's final instant,
* materialized-path decoding (payload vertices + label sequences), and
* sharded execution (``shards=2`` pinned against the serial engine).

numpy-less hosts skip this module (the no-numpy CI leg exercises the
degrade path instead; see tests/engine/test_vector_config.py).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import Scale, _stream
from repro.core.nplib import HAVE_NUMPY
from repro.core.windows import HOUR
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.workloads import QUERIES, labels_for

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vector execution requires numpy"
)

ALL = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7")
SCALE = Scale(n_edges=500, n_vertices=60, window=6 * HOUR, slide=HOUR)


@pytest.fixture(scope="module")
def streams():
    return {ds: _stream(ds, SCALE) for ds in ("so", "snb")}


def _run_sga(
    plan,
    stream,
    execution,
    path_impl="negative",
    materialize_paths=False,
    shards=1,
):
    engine = StreamingGraphEngine(
        EngineConfig(
            backend="sga",
            path_impl=path_impl,
            materialize_paths=materialize_paths,
            execution=execution,
            shards=shards,
        )
    )
    handle = engine.register(plan, name="q")
    engine.push_many(stream)
    return handle


def _epoch_instants(stream, slide):
    boundaries = sorted({(e.t // slide) * slide for e in stream})
    return [b + slide - 1 for b in boundaries]


class TestVectorGolden:
    @pytest.mark.parametrize("dataset", ["so", "snb"])
    @pytest.mark.parametrize("query_name", ALL)
    def test_vector_matches_columnar_bit_identical(
        self, streams, dataset, query_name
    ):
        stream = streams[dataset]
        window = SCALE.sliding_window()
        plan = QUERIES[query_name].plan(labels_for(query_name, dataset), window)
        cols = _run_sga(plan, stream, "columnar")
        vec = _run_sga(plan, stream, "vector")

        # List equality: identical members in identical order — the
        # vector kernels are exactly order-preserving, and ingress
        # grouping is only enabled where the analysis proves it
        # unobservable, so even the emission order must survive.
        assert list(vec.results()) == list(cols.results())
        cover_cols = {k: tuple(v) for k, v in cols.coverage().items()}
        cover_vec = {k: tuple(v) for k, v in vec.coverage().items()}
        assert cover_vec == cover_cols
        for t in _epoch_instants(stream, window.slide):
            assert vec.valid_at(t) == cols.valid_at(t), f"t={t}"

    @pytest.mark.parametrize("dataset", ["so", "snb"])
    @pytest.mark.parametrize("query_name", ALL)
    def test_vector_matches_rows(self, streams, dataset, query_name):
        stream = streams[dataset]
        window = SCALE.sliding_window()
        plan = QUERIES[query_name].plan(labels_for(query_name, dataset), window)
        rows = _run_sga(plan, stream, "rows")
        vec = _run_sga(plan, stream, "vector")

        assert set(vec.results()) == set(rows.results())
        cover_rows = {k: tuple(v) for k, v in rows.coverage().items()}
        cover_vec = {k: tuple(v) for k, v in vec.coverage().items()}
        assert cover_vec == cover_rows
        for t in _epoch_instants(stream, window.slide):
            assert vec.valid_at(t) == rows.valid_at(t), f"t={t}"

    @pytest.mark.parametrize("dataset", ["so", "snb"])
    @pytest.mark.parametrize("query_name", ["Q1", "Q2", "Q4"])
    def test_vector_matches_columnar_spath(self, streams, dataset, query_name):
        """The S-PATH operator under vector ingress, same surfaces."""
        stream = streams[dataset]
        window = SCALE.sliding_window()
        plan = QUERIES[query_name].plan(labels_for(query_name, dataset), window)
        cols = _run_sga(plan, stream, "columnar", path_impl="spath")
        vec = _run_sga(plan, stream, "vector", path_impl="spath")

        assert list(vec.results()) == list(cols.results())
        cover_cols = {k: tuple(v) for k, v in cols.coverage().items()}
        cover_vec = {k: tuple(v) for k, v in vec.coverage().items()}
        assert cover_vec == cover_cols

    @pytest.mark.parametrize("dataset", ["so", "snb"])
    @pytest.mark.parametrize("query_name", ["Q1", "Q4"])
    def test_materialized_path_decoding(self, streams, dataset, query_name):
        """Witness payloads (vertices + label sequence) decode the same.

        Q1 is a single-label PATH (grouped ingress stays on); Q4 is a
        multi-label PATH, which the analysis forces to segmented ingress
        precisely so first-derivation witnesses stay bit-identical.
        """
        stream = streams[dataset]
        window = SCALE.sliding_window()
        plan = QUERIES[query_name].plan(labels_for(query_name, dataset), window)
        cols = _run_sga(plan, stream, "columnar", materialize_paths=True)
        vec = _run_sga(plan, stream, "vector", materialize_paths=True)

        def decoded(handle):
            out = []
            for sgt in handle.results():
                payload = sgt.payload
                vertices = getattr(payload, "vertices", None)
                labels = (
                    payload.label_sequence()
                    if hasattr(payload, "label_sequence")
                    else None
                )
                out.append((sgt.src, sgt.trg, sgt.interval, vertices, labels))
            return out

        assert decoded(vec) == decoded(cols)

    @pytest.mark.parametrize("dataset", ["so", "snb"])
    @pytest.mark.parametrize("query_name", ["Q1", "Q4", "Q5", "Q6"])
    def test_vector_two_shards_match_serial(self, streams, dataset, query_name):
        """``execution="vector"`` with ``shards=2``: the sharded runtime
        ingests interned scalars itself (vector ingress is a serial-
        executor concern), but the configuration must hold the same
        set/cover golden against the serial vector engine."""
        stream = streams[dataset]
        window = SCALE.sliding_window()
        plan = QUERIES[query_name].plan(labels_for(query_name, dataset), window)
        serial = _run_sga(plan, stream, "vector")
        sharded = _run_sga(plan, stream, "vector", shards=2)

        assert set(sharded.results()) == set(serial.results())
        cover_serial = {k: tuple(v) for k, v in serial.coverage().items()}
        cover_sharded = {k: tuple(v) for k, v in sharded.coverage().items()}
        assert cover_sharded == cover_serial
