"""End-to-end integration scenarios spanning the whole stack."""

import pytest

from repro.algebra.reference import evaluate_plan_at
from repro.core.tuples import SGE
from repro.core.windows import SlidingWindow
from repro.dataflow.disorder import reorder
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.query.sgq import SGQ
from tests.conftest import SessionHarness
from repro.query.parser import parse_rq
from repro.workloads import QUERIES, labels_for
from tests.conftest import PAPER_QUERY, make_stream, streams_by_label


class TestThreeFormulationsAgree:
    """Datalog, G-CORE, and hand-built plans of the paper's query must
    produce identical output streams."""

    GCORE = """
    PATH RL = (u1) -/<:follows*>/-> (u2),
              (u1)-[:likes]->(m1)<-[:posts]-(u2)
    CONSTRUCT (u)-[:notify]->(m)
    MATCH (u) -/p<~RL*>/-> (v), (v)-[:posts]->(m)
    ON social_stream WINDOW (24 ticks) SLIDE (1 ticks)
    """

    def test_agreement(self, paper_stream):
        processors = [
            SessionHarness.from_datalog(
                PAPER_QUERY, SlidingWindow(24)
            ),
            SessionHarness.from_gcore(self.GCORE),
        ]
        for edge in paper_stream:
            for processor in processors:
                processor.push(edge)
        for processor in processors:
            processor.advance_to(59)  # perform the probed movements
        for t in range(0, 60):
            snapshots = [p.valid_at(t) for p in processors]
            assert snapshots[0] == snapshots[1], t


class TestWorkloadOnSyntheticDatasets:
    """Q1-Q7 run end-to-end on the synthetic SO and SNB streams and
    agree with the one-time reference at sampled instants."""

    @pytest.mark.parametrize("dataset", ["so", "snb"])
    @pytest.mark.parametrize("query_name", ["Q1", "Q4", "Q5", "Q6", "Q7"])
    def test_workload(self, dataset, query_name):
        from repro.bench.experiments import Scale, _stream

        scale = Scale(n_edges=400, n_vertices=60, window=240, slide=60)
        stream = _stream(dataset, scale)
        labels = labels_for(query_name, dataset)
        plan = QUERIES[query_name].plan(labels, scale.sliding_window())

        processor = SessionHarness(plan)
        for edge in stream:
            processor.push(edge)

        streams = streams_by_label(stream)
        label = plan.out_label
        for t in range(0, stream[-1].t + 1, 97):
            expected = {
                (u, v, label)
                for u, v in evaluate_plan_at(plan, streams, t)
            }
            assert processor.valid_at(t) == expected, (dataset, query_name, t)


class TestEnginesAgreeOnWorkload:
    """The SGA engine and the DD baseline compute the same answers on
    the synthetic SO stream (at epoch-aligned instants)."""

    @pytest.mark.parametrize("query_name", ["Q1", "Q5", "Q7"])
    def test_agreement(self, query_name):
        from repro.bench.experiments import Scale, _stream

        scale = Scale(n_edges=400, n_vertices=60, window=240, slide=60)
        window = scale.sliding_window()
        stream = _stream("so", scale)
        labels = labels_for(query_name, "so")

        sga = SessionHarness(
            QUERIES[query_name].plan(labels, window)
        )
        dd_engine = StreamingGraphEngine(EngineConfig(backend="dd"))
        dd = dd_engine.register(
            SGQ(parse_rq(QUERIES[query_name].datalog(labels)), window)
        )

        by_boundary: dict[int, list[SGE]] = {}
        for edge in stream:
            by_boundary.setdefault(window.slide_boundary(edge.t), []).append(edge)
        for boundary in sorted(by_boundary):
            batch = by_boundary[boundary]
            dd_answer = dd.advance_epoch(boundary, batch)
            for edge in batch:
                sga.push(edge)
            instant = boundary + window.slide - 1
            sga.advance_to(instant)
            sga_answer = {(u, v) for (u, v, _) in sga.valid_at(instant)}
            assert dd_answer == sga_answer, (query_name, boundary)


class TestDisorderedIngestion:
    """An out-of-order stream, run through the disorder buffer, yields
    the same results as the sorted stream."""

    def test_full_pipeline(self):
        import random

        rng = random.Random(11)
        edges = make_stream(11, 80, 6, ("a",), max_gap=2)
        shuffled: list[SGE] = []
        for start in range(0, len(edges), 5):
            block = edges[start : start + 5]
            rng.shuffle(block)
            shuffled.extend(block)

        window = SlidingWindow(20)
        text = "Answer(x, y) <- a+(x, y) as A."
        disordered = SessionHarness.from_datalog(text, window)
        for edge in reorder(shuffled, lateness=15):
            disordered.push(edge)
        ordered = SessionHarness.from_datalog(text, window)
        for edge in edges:
            ordered.push(edge)
        final_t = edges[-1].t + 10
        disordered.advance_to(final_t)  # perform the probed movements
        ordered.advance_to(final_t)
        for t in range(0, final_t, 7):
            assert disordered.valid_at(t) == ordered.valid_at(t), t


class TestOptimizedPlansOnEngine:
    """The optimizer's chosen plan runs on the engine and matches the
    canonical plan's output."""

    def test_q4_optimized(self):
        from repro.algebra.optimizer import choose_plan

        window = SlidingWindow(16, 4)
        labels = {"a": "a", "b": "b", "c": "c"}
        canonical = QUERIES["Q4"].plan(labels, window)
        report = choose_plan(canonical, limit=8)

        edges = make_stream(23, 60, 6, ("a", "b", "c"), max_gap=2)
        left = SessionHarness(canonical)
        right = SessionHarness(report.best)
        for edge in edges:
            left.push(edge)
            right.push(edge)
        final_t = edges[-1].t + 10
        left.advance_to(final_t)  # perform the probed movements
        right.advance_to(final_t)
        for t in range(0, final_t, 5):
            left_pairs = {(u, v) for (u, v, _) in left.valid_at(t)}
            right_pairs = {(u, v) for (u, v, _) in right.valid_at(t)}
            assert left_pairs == right_pairs, t


class TestStateHygiene:
    """After everything expires, stateful operators hold no tuples."""

    @pytest.mark.parametrize("impl", ["spath", "negative"])
    def test_state_drains(self, impl):
        processor = SessionHarness.from_datalog(
            PAPER_QUERY, SlidingWindow(24), path_impl=impl
        )
        edges = make_stream(
            3, 120, 8, ("likes", "follows", "posts"), max_gap=2
        )
        for edge in edges:
            processor.push(edge)
        assert processor.state_size() > 0
        processor.advance_to(edges[-1].t + 100)
        assert processor.state_size() == 0

    def test_dd_state_drains(self):
        program = parse_rq(PAPER_QUERY)
        engine = StreamingGraphEngine(EngineConfig(backend="dd"))
        handle = engine.register(SGQ(program, SlidingWindow(24, 8)))
        edges = make_stream(
            3, 120, 8, ("likes", "follows", "posts"), max_gap=2
        )
        stats = engine.push_many(edges)
        assert stats.total_edges == 120
        for boundary in range(edges[-1].t, edges[-1].t + 60, 8):
            handle.advance_epoch((boundary // 8) * 8, [])
        assert engine.state_size() == 0
