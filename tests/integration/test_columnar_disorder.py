"""Columnar execution under out-of-order arrivals and late policies.

Property-style: for randomized streams with bounded timestamp disorder,
the interned/columnar/timing-wheel execution must produce exactly the
row-wise path's decoded results under every ``late_policy`` — including
which edges are dropped and whether order violations raise.
"""

from __future__ import annotations

import random

import pytest

from repro.core.tuples import SGE
from repro.core.windows import HOUR, SlidingWindow
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.errors import StreamOrderError
from repro.workloads import QUERIES, labels_for

WINDOW = SlidingWindow(4 * HOUR, HOUR)
CHECK_QUERIES = ("Q1", "Q2", "Q5")


def _disordered_stream(seed: int, n_edges: int = 400, jitter: int = 90):
    """Roughly increasing timestamps with bounded local disorder."""
    rng = random.Random(seed)
    labels = ("knows", "likes", "hasCreator", "replyOf")
    edges = []
    t = 0
    for _ in range(n_edges):
        t += rng.randint(0, 3)
        edges.append(
            SGE(
                ("P", rng.randrange(25)),
                ("P", rng.randrange(25)),
                rng.choice(labels),
                max(0, t + rng.randint(-jitter, jitter)),
            )
        )
    return edges


def _run(plan, stream, execution, late_policy):
    engine = StreamingGraphEngine(
        EngineConfig(
            backend="sga",
            path_impl="negative",
            materialize_paths=False,
            execution=execution,
            late_policy=late_policy,
        )
    )
    handle = engine.register(plan, name="q")
    engine.push_many(stream)
    return engine, handle


def _snapshot(handle):
    return (
        set(handle.results()),
        {k: tuple(v) for k, v in handle.coverage().items()},
    )


class TestDisorderEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("late_policy", ["allow", "drop"])
    @pytest.mark.parametrize("query_name", CHECK_QUERIES)
    def test_columnar_matches_rows(self, seed, late_policy, query_name):
        stream = _disordered_stream(seed)
        plan = QUERIES[query_name].plan(
            labels_for(query_name, "snb"), WINDOW
        )
        rows_engine, rows = _run(plan, stream, "rows", late_policy)
        cols_engine, cols = _run(plan, stream, "columnar", late_policy)
        assert _snapshot(cols) == _snapshot(rows)
        assert cols_engine.late_count == rows_engine.late_count

    @pytest.mark.parametrize("seed", range(2))
    def test_raise_policy_raises_in_both_executions(self, seed):
        stream = _disordered_stream(seed)
        plan = QUERIES["Q1"].plan(labels_for("Q1", "snb"), WINDOW)
        for execution in ("rows", "columnar"):
            with pytest.raises(StreamOrderError):
                _run(plan, stream, execution, "raise")

    @pytest.mark.parametrize("late_policy", ["allow", "drop"])
    def test_ordered_stream_drops_nothing(self, late_policy):
        stream = sorted(_disordered_stream(0), key=lambda e: e.t)
        plan = QUERIES["Q2"].plan(labels_for("Q2", "snb"), WINDOW)
        engine, _ = _run(plan, stream, "columnar", late_policy)
        assert engine.late_count == 0


class TestExplicitDeletionsEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_negative_tuples_match_rows_path(self, seed):
        """Explicit deletions (timing-wheel repair path) decode to the
        row-wise reference under interleaved insert/delete traffic."""
        rng = random.Random(seed)
        plan = QUERIES["Q1"].plan(labels_for("Q1", "snb"), WINDOW)
        inserts = sorted(
            _disordered_stream(seed + 100, n_edges=150, jitter=0),
            key=lambda e: e.t,
        )
        knows = [e for e in inserts if e.label == "knows"]
        victims = rng.sample(knows, min(10, len(knows)))

        def run(execution):
            engine = StreamingGraphEngine(
                EngineConfig(
                    backend="sga",
                    path_impl="negative",
                    materialize_paths=False,
                    execution=execution,
                )
            )
            handle = engine.register(plan, name="q")
            for edge in inserts:
                engine.push(edge)
            for edge in victims:
                engine.delete(edge)
            return _snapshot(handle)

        assert run("columnar") == run("rows")
