"""Unit tests for edge-stream (de)serialization."""

import pytest

from repro.core.tuples import SGE
from repro.datasets.io import read_stream, write_stream
from repro.errors import ParseError


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        edges = [
            SGE("a", "b", "knows", 1),
            SGE("b", "c", "likes", 2),
        ]
        path = tmp_path / "stream.tsv"
        assert write_stream(edges, path) == 2
        assert read_stream(path) == edges

    def test_int_vertices(self, tmp_path):
        edges = [SGE(1, 2, "knows", 5)]
        path = tmp_path / "stream.tsv"
        write_stream(edges, path)
        assert read_stream(path, vertex_type=int) == edges

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "stream.tsv"
        path.write_text("# header\n\na\tb\tknows\t3\n")
        assert read_stream(path) == [SGE("a", "b", "knows", 3)]

    def test_read_sorts_by_timestamp(self, tmp_path):
        path = tmp_path / "stream.tsv"
        path.write_text("a\tb\tl\t9\nc\td\tl\t2\n")
        edges = read_stream(path)
        assert [e.t for e in edges] == [2, 9]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "stream.tsv"
        path.write_text("a\tb\tknows\n")
        with pytest.raises(ParseError, match="4 tab-separated"):
            read_stream(path)

    def test_generated_stream_round_trips(self, tmp_path):
        from repro.datasets import stackoverflow_stream

        edges = stackoverflow_stream(n_edges=100, n_users=20, seed=5)
        path = tmp_path / "so.tsv"
        write_stream(edges, path)
        assert read_stream(path, vertex_type=int) == edges
