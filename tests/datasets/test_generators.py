"""Unit tests for the synthetic dataset generators."""

from collections import Counter

from repro.datasets import (
    SNB_LABELS,
    SO_LABELS,
    snb_stream,
    stackoverflow_stream,
    uniform_stream,
    zipf_stream,
)
from repro.datasets.snb import message, person


class TestUniformAndZipf:
    def test_sizes_and_order(self):
        for generator in (uniform_stream, zipf_stream):
            edges = generator(200, 20, ("a", "b"), seed=1)
            assert len(edges) == 200
            assert all(
                e1.t <= e2.t for e1, e2 in zip(edges, edges[1:])
            ), "timestamps must be non-decreasing"

    def test_deterministic_per_seed(self):
        assert uniform_stream(50, 10, ("a",), seed=3) == uniform_stream(
            50, 10, ("a",), seed=3
        )
        assert uniform_stream(50, 10, ("a",), seed=3) != uniform_stream(
            50, 10, ("a",), seed=4
        )

    def test_labels_restricted(self):
        edges = uniform_stream(100, 10, ("x", "y"), seed=0)
        assert {e.label for e in edges} <= {"x", "y"}

    def test_zipf_is_skewed(self):
        edges = zipf_stream(2000, 100, ("a",), seed=0, skew=1.3)
        degree = Counter(e.src for e in edges)
        top = sum(count for _, count in degree.most_common(10))
        assert top > 0.35 * len(edges), "top-10 vertices should dominate"


class TestStackOverflow:
    def test_basic_shape(self):
        edges = stackoverflow_stream(n_edges=500, n_users=50, seed=0)
        assert len(edges) == 500
        assert {e.label for e in edges} <= set(SO_LABELS)
        assert all(e1.t <= e2.t for e1, e2 in zip(edges, edges[1:]))

    def test_no_self_loops(self):
        edges = stackoverflow_stream(n_edges=500, n_users=50, seed=1)
        assert all(e.src != e.trg for e in edges)

    def test_cyclic_structure(self):
        """Reciprocity must create 2-cycles — the property that makes SO
        the paper's hardest dataset."""
        edges = stackoverflow_stream(
            n_edges=1000, n_users=60, seed=2, reciprocity=0.5
        )
        pairs = {(e.src, e.trg) for e in edges}
        reciprocated = sum(1 for (u, v) in pairs if (v, u) in pairs)
        assert reciprocated > len(pairs) * 0.2

    def test_heavy_tail(self):
        edges = stackoverflow_stream(n_edges=2000, n_users=200, seed=3)
        degree = Counter()
        for e in edges:
            degree[e.trg] += 1
        top = sum(count for _, count in degree.most_common(20))
        assert top > 0.25 * len(edges)

    def test_deterministic(self):
        a = stackoverflow_stream(n_edges=300, n_users=40, seed=9)
        b = stackoverflow_stream(n_edges=300, n_users=40, seed=9)
        assert a == b


class TestSNB:
    def test_basic_shape(self):
        edges = snb_stream(n_edges=800, n_persons=60, seed=0)
        assert len(edges) == 800
        assert {e.label for e in edges} <= set(SNB_LABELS)
        assert all(e1.t <= e2.t for e1, e2 in zip(edges, edges[1:]))

    def test_vertex_spaces_disjoint(self):
        edges = snb_stream(n_edges=800, n_persons=60, seed=1)
        for e in edges:
            if e.label == "knows":
                assert e.src[0] == "P" and e.trg[0] == "P"
            elif e.label == "likes":
                assert e.src[0] == "P" and e.trg[0] == "M"
            elif e.label == "hasCreator":
                assert e.src[0] == "M" and e.trg[0] == "P"
            elif e.label == "replyOf":
                assert e.src[0] == "M" and e.trg[0] == "M"

    def test_replyof_is_forest(self):
        """The tree-shape of replyOf is what the paper's SNB observations
        hinge on: each message replies to at most one earlier message."""
        edges = snb_stream(n_edges=3000, n_persons=100, seed=2)
        parent: dict = {}
        for e in edges:
            if e.label != "replyOf":
                continue
            assert e.src not in parent, "a message replied twice"
            parent[e.src] = e.trg
        # Replies always point to strictly earlier messages: acyclic.
        for child, par in parent.items():
            assert child[1] > par[1]

    def test_knows_inserted_both_directions(self):
        edges = snb_stream(n_edges=2000, n_persons=50, seed=3)
        knows = [(e.src, e.trg, e.t) for e in edges if e.label == "knows"]
        forward = {(u, v, t) for u, v, t in knows}
        matched = sum(1 for (u, v, t) in knows if (v, u, t) in forward)
        assert matched >= len(knows) - 2  # boundary truncation tolerance

    def test_messages_have_creators(self):
        edges = snb_stream(n_edges=1000, n_persons=40, seed=4)
        created = {e.src for e in edges if e.label == "hasCreator"}
        replied = {e.src for e in edges if e.label == "replyOf"}
        assert replied <= created

    def test_person_message_helpers(self):
        assert person(3) == ("P", 3)
        assert message(7) == ("M", 7)
