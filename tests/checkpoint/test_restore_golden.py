"""Golden restore-parity suite, mirroring the sharded golden tests.

The durability contract under test: snapshot an engine mid-stream,
restore it (same process or fresh one, same shard count or not), replay
the stream suffix, and compare against an engine that never stopped.

* Same configuration (any shard count, both transports): the restored
  run is **bit-identical** — the raw result-event stream, ``results()``,
  ``coverage()`` and every ``valid_at`` surface match exactly.
* Restore into a *different* shard count (offline rebalancing): result
  sets, coverage and ``valid_at`` match exactly; raw event
  interleavings may differ (cross-shard cascade order is ownership-
  dependent), which is the same contract the live sharding suite pins.

Both runs ingest the stream as two ``push_many`` calls split at the
same cut so batch-sensitive execution modes (vector grouping) see
identical ingress on both sides — the *only* difference between the
runs is the snapshot/restore cycle itself.
"""

import pytest

from repro.bench.experiments import Scale, _stream
from repro.checkpoint import DirectoryCheckpointStore
from repro.core.nplib import HAVE_NUMPY
from repro.core.windows import HOUR
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.workloads import QUERIES, labels_for

ALL = ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7"]
SCALE = Scale(n_edges=400, n_vertices=50, window=6 * HOUR, slide=HOUR)


@pytest.fixture(scope="module")
def streams():
    return {ds: _stream(ds, SCALE) for ds in ("so", "snb")}


def _epoch_instants(stream, slide):
    boundaries = sorted({(e.t // slide) * slide for e in stream})
    return [b + slide - 1 for b in boundaries]


def _plan(query_name, dataset):
    return QUERIES[query_name].plan(
        labels_for(query_name, dataset), SCALE.sliding_window()
    )


def _surfaces(handle, stream):
    window = SCALE.sliding_window()
    return {
        "results": handle.results(),
        "coverage": {k: tuple(v) for k, v in handle.coverage().items()},
        "valid_at": [
            handle.valid_at(t) for t in _epoch_instants(stream, window.slide)
        ],
    }


def _uninterrupted(config, plan, stream, cut):
    engine = StreamingGraphEngine(config)
    handle = engine.register(plan, name="q")
    events = []
    engine.set_result_callback("q", events.append)
    engine.push_many(stream[:cut])
    engine.push_many(stream[cut:])
    surfaces = _surfaces(handle, stream)
    engine.close()
    return events, surfaces


def _with_restore(config, plan, stream, cut, tmp_path, restore_config=None):
    store = DirectoryCheckpointStore(str(tmp_path / "store"))
    engine = StreamingGraphEngine(config)
    engine.register(plan, name="q")
    events = []
    engine.set_result_callback("q", events.append)
    engine.push_many(stream[:cut])
    engine.checkpoint(store)
    engine.close()

    restored = StreamingGraphEngine.restore(store, config=restore_config)
    handle = restored.handle("q")
    restored.set_result_callback("q", events.append)
    restored.push_many(stream[cut:])
    surfaces = _surfaces(handle, stream)
    restored.close()
    return events, surfaces


class TestRestoreBitParity:
    @pytest.mark.parametrize("dataset", ["so", "snb"])
    @pytest.mark.parametrize("query_name", ALL)
    @pytest.mark.parametrize("shards", [1, 2])
    def test_suffix_replay_bit_identical(
        self, streams, tmp_path, dataset, query_name, shards
    ):
        stream = streams[dataset]
        cut = len(stream) // 2
        plan = _plan(query_name, dataset)
        config = EngineConfig(shards=shards)
        ref_events, ref = _uninterrupted(config, plan, stream, cut)
        got_events, got = _with_restore(config, plan, stream, cut, tmp_path)
        assert got_events == ref_events
        assert got == ref

    @pytest.mark.parametrize(
        "execution",
        [
            "rows",
            "columnar",
            pytest.param(
                "vector",
                marks=pytest.mark.skipif(
                    not HAVE_NUMPY, reason="numpy not installed"
                ),
            ),
        ],
    )
    @pytest.mark.parametrize("query_name", ["Q1", "Q5"])
    def test_every_execution_mode(
        self, streams, tmp_path, execution, query_name
    ):
        stream = streams["snb"]
        cut = len(stream) // 2
        plan = _plan(query_name, "snb")
        config = EngineConfig(execution=execution)
        ref_events, ref = _uninterrupted(config, plan, stream, cut)
        got_events, got = _with_restore(config, plan, stream, cut, tmp_path)
        assert got_events == ref_events
        assert got == ref

    @pytest.mark.parametrize("query_name", ["Q1", "Q5"])
    def test_negative_path_impl(self, streams, tmp_path, query_name):
        stream = streams["so"]
        cut = len(stream) // 2
        plan = _plan(query_name, "so")
        config = EngineConfig(path_impl="negative", shards=2)
        ref_events, ref = _uninterrupted(config, plan, stream, cut)
        got_events, got = _with_restore(config, plan, stream, cut, tmp_path)
        assert got_events == ref_events
        assert got == ref

    def test_uneven_cut_points(self, streams, tmp_path):
        """The snapshot boundary is wherever the caller stops pushing —
        not just the midpoint; early and late cuts restore exactly."""
        stream = streams["snb"]
        plan = _plan("Q4", "snb")
        config = EngineConfig(shards=2)
        for cut in (1, len(stream) // 4, len(stream) - 1):
            ref_events, ref = _uninterrupted(config, plan, stream, cut)
            got_events, got = _with_restore(
                config, plan, stream, cut, tmp_path / f"cut{cut}"
            )
            assert got_events == ref_events, f"cut={cut}"
            assert got == ref, f"cut={cut}"


class TestRebalancedRestore:
    """Restore with a different shard count: set/coverage/valid_at
    parity against the uninterrupted run (raw interleavings are
    ownership-dependent, exactly as in the live sharding suite)."""

    @pytest.mark.parametrize("dataset", ["so", "snb"])
    @pytest.mark.parametrize("query_name", ALL)
    @pytest.mark.parametrize("old_new", [(2, 3), (3, 2)])
    def test_repartitioned_restore_parity(
        self, streams, tmp_path, dataset, query_name, old_new
    ):
        old_shards, new_shards = old_new
        stream = streams[dataset]
        cut = len(stream) // 2
        plan = _plan(query_name, dataset)
        _, ref = _uninterrupted(
            EngineConfig(shards=old_shards), plan, stream, cut
        )
        _, got = _with_restore(
            EngineConfig(shards=old_shards),
            plan,
            stream,
            cut,
            tmp_path,
            restore_config=EngineConfig(shards=new_shards),
        )
        assert set(got["results"]) == set(ref["results"])
        assert got["coverage"] == ref["coverage"]
        assert got["valid_at"] == ref["valid_at"]


class TestTransportsAndBackends:
    def test_process_transport_round_trip(self, streams, tmp_path):
        """Snapshot forked workers, restore into fresh forked workers."""
        stream = streams["snb"]
        cut = len(stream) // 2
        plan = _plan("Q1", "snb")
        config = EngineConfig(shards=2, shard_transport="process")
        store = DirectoryCheckpointStore(str(tmp_path / "store"))

        engine = StreamingGraphEngine(config)
        handle = engine.register(plan, name="q")
        engine.push_many(stream[:cut])
        engine.checkpoint(store)
        engine.close()

        ref_engine = StreamingGraphEngine(config)
        ref_handle = ref_engine.register(plan, name="q")
        ref_engine.push_many(stream[:cut])
        ref_engine.push_many(stream[cut:])

        restored = StreamingGraphEngine.restore(store)
        handle = restored.handle("q")
        restored.push_many(stream[cut:])
        assert handle.results() == ref_handle.results()
        assert {k: tuple(v) for k, v in handle.coverage().items()} == {
            k: tuple(v) for k, v in ref_handle.coverage().items()
        }
        restored.close()
        ref_engine.close()

    def test_inline_snapshot_restores_under_process_transport(
        self, streams, tmp_path
    ):
        """Only shards/shard_transport may move between snapshot and
        restore — transport is execution strategy, not state shape."""
        stream = streams["snb"]
        cut = len(stream) // 2
        plan = _plan("Q4", "snb")
        store = DirectoryCheckpointStore(str(tmp_path / "store"))
        engine = StreamingGraphEngine(EngineConfig(shards=2))
        engine.register(plan, name="q")
        engine.push_many(stream[:cut])
        engine.checkpoint(store)

        ref_handle = engine.handle("q")
        engine.push_many(stream[cut:])

        restored = StreamingGraphEngine.restore(
            store, shard_transport="process"
        )
        handle = restored.handle("q")
        restored.push_many(stream[cut:])
        assert set(handle.results()) == set(ref_handle.results())
        restored.close()
        engine.close()

    def test_dd_backend_round_trip(self, streams, tmp_path):
        stream = streams["snb"]
        cut = len(stream) // 2
        sgq = QUERIES["Q1"].sgq(
            labels_for("Q1", "snb"), SCALE.sliding_window()
        )
        config = EngineConfig(backend="dd")
        store = DirectoryCheckpointStore(str(tmp_path / "store"))
        slide = SCALE.sliding_window().slide

        ref = StreamingGraphEngine(config)
        ref_handle = ref.register(sgq, name="q")
        ref.push_many(stream[:cut])
        ref.push_many(stream[cut:])

        engine = StreamingGraphEngine(config)
        engine.register(sgq, name="q")
        engine.push_many(stream[:cut])
        engine.checkpoint(store)
        engine.close()
        restored = StreamingGraphEngine.restore(store)
        handle = restored.handle("q")
        restored.push_many(stream[cut:])

        assert handle.results() == ref_handle.results()
        for t in _epoch_instants(stream, slide):
            assert handle.valid_at(t) == ref_handle.valid_at(t), f"t={t}"
        restored.close()
        ref.close()


CHILD_SCRIPT = """
import sys, json
from repro.bench.experiments import Scale, _stream
from repro.checkpoint import DirectoryCheckpointStore
from repro.core.windows import HOUR
from repro.engine.session import StreamingGraphEngine
from repro.workloads import QUERIES, labels_for

store_dir, cut = sys.argv[1], int(sys.argv[2])
scale = Scale(n_edges=400, n_vertices=50, window=6 * HOUR, slide=HOUR)
stream = _stream("snb", scale)
engine = StreamingGraphEngine.restore(DirectoryCheckpointStore(store_dir))
events = []
engine.set_result_callback("q", events.append)
engine.push_many(stream[cut:])
handle = engine.handle("q")
print(json.dumps({
    "events": [repr(e) for e in events],
    "results": sorted(repr(r) for r in handle.results()),
}))
engine.close()
"""


class TestCrossProcess:
    def test_restore_in_fresh_process(self, streams, tmp_path):
        """The headline guarantee: snapshot here, restore in a process
        with no shared memory, replay the suffix, match bit-for-bit."""
        import subprocess
        import sys as _sys
        import json as _json
        import os
        import pathlib

        stream = streams["snb"]
        cut = len(stream) // 2
        plan = _plan("Q4", "snb")
        config = EngineConfig(shards=2)
        store_dir = str(tmp_path / "store")
        store = DirectoryCheckpointStore(store_dir)

        engine = StreamingGraphEngine(config)
        engine.register(plan, name="q")
        events = []
        engine.set_result_callback("q", events.append)
        engine.push_many(stream[:cut])
        engine.checkpoint(store)
        engine.close()

        ref_engine = StreamingGraphEngine(config)
        ref_handle = ref_engine.register(plan, name="q")
        ref_events = []
        ref_engine.set_result_callback("q", ref_events.append)
        ref_engine.push_many(stream[:cut])
        ref_engine.push_many(stream[cut:])

        repo = pathlib.Path(__file__).resolve().parents[2]
        env = dict(os.environ, PYTHONPATH=str(repo / "src"))
        proc = subprocess.run(
            [_sys.executable, "-c", CHILD_SCRIPT, store_dir, str(cut)],
            capture_output=True,
            text=True,
            env=env,
            timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        child = _json.loads(proc.stdout)
        suffix_events = [repr(e) for e in ref_events[len(events) :]]
        assert child["events"] == suffix_events
        assert child["results"] == sorted(
            repr(r) for r in ref_handle.results()
        )
        ref_engine.close()
