"""Checkpoint store unit tests: atomicity, retention, corruption.

The store's contract is that a checkpoint is either fully committed and
self-verifying or invisible: blobs stage in a hidden directory, a single
``os.replace`` publishes the whole checkpoint, and every read re-checks
size + sha256 before unpickling.  Corruption of any kind — truncated
blob, flipped bytes, a tampered or unparseable manifest, a format
version from a different build — must surface as a typed
:class:`~repro.errors.CheckpointError` naming the offending blob or
field, never as a half-restored engine or a raw unpickling crash.
"""

import json
import os

import pytest

from repro.bench.experiments import Scale, _stream
from repro.checkpoint import (
    FORMAT_VERSION,
    DirectoryCheckpointStore,
)
from repro.core.windows import HOUR
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.errors import CheckpointError
from repro.workloads import QUERIES, labels_for


def _commit_one(store, **blobs):
    writer = store.begin()
    for name, payload in blobs.items():
        writer.put(name, payload)
    writer.set_meta(kind="test")
    return writer.commit()


class TestWriteReadRoundTrip:
    def test_blobs_round_trip(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        writer = store.begin()
        writer.put("engine", {"queries": ["q1"], "boundary": 42})
        writer.put("tenants/alice/state-0", [(1, 2), (3, 4)])
        writer.set_meta(kind="engine", shards=2)
        checkpoint_id = writer.commit()

        reader = store.open()
        assert reader.checkpoint_id == checkpoint_id
        assert reader.blob_names() == ["engine", "tenants/alice/state-0"]
        assert reader.has("engine")
        assert not reader.has("missing")
        assert reader.get("engine") == {"queries": ["q1"], "boundary": 42}
        assert reader.get("tenants/alice/state-0") == [(1, 2), (3, 4)]
        assert reader.meta == {"kind": "engine", "shards": 2}

    def test_hierarchical_names_stay_flat_on_disk(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        checkpoint_id = _commit_one(store, **{"tenants/bob/serve": 1})
        entries = os.listdir(tmp_path / checkpoint_id)
        assert "tenants__bob__serve.pkl" in entries
        assert not (tmp_path / checkpoint_id / "tenants").exists()

    def test_ids_are_monotonic(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        first = _commit_one(store, a=1)
        second = _commit_one(store, a=2)
        assert [first, second] == ["ckpt-000001", "ckpt-000002"]
        assert store.list() == [first, second]
        # A fresh store handle over the same directory continues the
        # sequence instead of colliding.
        third = _commit_one(DirectoryCheckpointStore(str(tmp_path)), a=3)
        assert third == "ckpt-000003"

    def test_open_picks_latest_by_default(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        _commit_one(store, a=1)
        newest = _commit_one(store, a=2)
        assert store.open().checkpoint_id == newest
        assert store.open("ckpt-000001").get("a") == 1


class TestWriterProtocol:
    def test_duplicate_blob_rejected(self, tmp_path):
        writer = DirectoryCheckpointStore(str(tmp_path)).begin()
        writer.put("engine", 1)
        with pytest.raises(CheckpointError, match="duplicate blob 'engine'"):
            writer.put("engine", 2)

    def test_put_after_commit_rejected(self, tmp_path):
        writer = DirectoryCheckpointStore(str(tmp_path)).begin()
        writer.put("engine", 1)
        writer.commit()
        with pytest.raises(CheckpointError, match="already committed"):
            writer.put("late", 2)
        with pytest.raises(CheckpointError, match="already committed"):
            writer.commit()

    def test_uncommitted_checkpoint_is_invisible(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        writer = store.begin()
        writer.put("engine", {"big": list(range(1000))})
        # Staged but not committed: nothing listable, nothing openable.
        assert store.list() == []
        with pytest.raises(CheckpointError, match="no checkpoints"):
            store.open()
        writer.commit()
        assert store.list() == [writer.checkpoint_id]

    def test_abort_discards_staging(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        writer = store.begin()
        writer.put("engine", 1)
        writer.abort()
        writer.abort()  # idempotent
        assert store.list() == []
        assert os.listdir(tmp_path) == []

    def test_abandoned_staging_never_pollutes_list(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        writer = store.begin()
        writer.put("engine", 1)
        # Simulate a crash: the writer is dropped without commit/abort.
        del writer
        assert store.list() == []
        committed = _commit_one(store, a=1)
        assert store.list() == [committed]


class TestRetention:
    def test_gc_keeps_last_k(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path), retain=2)
        ids = [_commit_one(store, n=i) for i in range(5)]
        assert store.list() == ids[-2:]
        # The survivors are intact and readable.
        assert store.open(ids[-1]).get("n") == 4
        assert store.open(ids[-2]).get("n") == 3
        with pytest.raises(CheckpointError, match="no checkpoint"):
            store.open(ids[0])

    def test_retain_none_keeps_everything(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        ids = [_commit_one(store, n=i) for i in range(4)]
        assert store.list() == ids

    def test_retain_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="retain"):
            DirectoryCheckpointStore(str(tmp_path), retain=0)


class TestCorruption:
    """Every tampered artifact fails loudly, naming what is wrong."""

    def _store_with_checkpoint(self, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        checkpoint_id = _commit_one(
            store, **{"engine": {"x": 1}, "state-0": [1, 2, 3]}
        )
        return store, tmp_path / checkpoint_id

    def test_truncated_blob_names_the_blob(self, tmp_path):
        store, ckpt = self._store_with_checkpoint(tmp_path)
        blob = ckpt / "state-0.pkl"
        blob.write_bytes(blob.read_bytes()[:-4])
        reader = store.open()
        assert reader.get("engine") == {"x": 1}  # untouched blob still reads
        with pytest.raises(
            CheckpointError, match=r"blob 'state-0'.*truncated"
        ):
            reader.get("state-0")

    def test_flipped_bytes_fail_sha_check(self, tmp_path):
        store, ckpt = self._store_with_checkpoint(tmp_path)
        blob = ckpt / "state-0.pkl"
        data = bytearray(blob.read_bytes())
        data[len(data) // 2] ^= 0xFF
        blob.write_bytes(bytes(data))
        with pytest.raises(
            CheckpointError, match=r"blob 'state-0'.*sha256.*corrupted"
        ):
            store.open().get("state-0")

    def test_missing_blob_file(self, tmp_path):
        store, ckpt = self._store_with_checkpoint(tmp_path)
        os.unlink(ckpt / "state-0.pkl")
        with pytest.raises(
            CheckpointError, match=r"blob 'state-0' file is missing"
        ):
            store.open().get("state-0")

    def test_unknown_blob_name(self, tmp_path):
        store, _ = self._store_with_checkpoint(tmp_path)
        with pytest.raises(
            CheckpointError, match="no blob named 'nonexistent'"
        ):
            store.open().get("nonexistent")

    def test_wrong_format_version(self, tmp_path):
        store, ckpt = self._store_with_checkpoint(tmp_path)
        manifest = json.loads((ckpt / "MANIFEST.json").read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        (ckpt / "MANIFEST.json").write_text(json.dumps(manifest))
        with pytest.raises(
            CheckpointError,
            match=f"format version {FORMAT_VERSION + 1}.*not supported",
        ):
            store.open()

    def test_unparseable_manifest(self, tmp_path):
        store, ckpt = self._store_with_checkpoint(tmp_path)
        (ckpt / "MANIFEST.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="unparseable MANIFEST"):
            store.open()

    def test_missing_manifest(self, tmp_path):
        store, ckpt = self._store_with_checkpoint(tmp_path)
        os.unlink(ckpt / "MANIFEST.json")
        with pytest.raises(CheckpointError, match="missing MANIFEST"):
            store.open()

    def test_tampered_manifest_blobs_field(self, tmp_path):
        store, ckpt = self._store_with_checkpoint(tmp_path)
        manifest = json.loads((ckpt / "MANIFEST.json").read_text())
        manifest["blobs"] = ["engine"]
        (ckpt / "MANIFEST.json").write_text(json.dumps(manifest))
        with pytest.raises(
            CheckpointError, match="field 'blobs' is list, expected"
        ):
            store.open()


class TestEngineNeverHalfRestores:
    """A corrupted engine checkpoint must not materialize an engine."""

    def test_truncated_state_blob_aborts_restore(self, tmp_path):
        scale = Scale(n_edges=60, n_vertices=20, window=6 * HOUR, slide=HOUR)
        stream = _stream("snb", scale)
        plan = QUERIES["Q1"].plan(
            labels_for("Q1", "snb"), scale.sliding_window()
        )
        store = DirectoryCheckpointStore(str(tmp_path))
        engine = StreamingGraphEngine(EngineConfig(backend="sga"))
        engine.register(plan, name="q")
        engine.push_many(stream)
        checkpoint_id = engine.checkpoint(store)
        engine.close()

        blob = tmp_path / checkpoint_id / "state-0.pkl"
        blob.write_bytes(blob.read_bytes()[:-10])
        with pytest.raises(CheckpointError, match=r"'state-0'"):
            StreamingGraphEngine.restore(store)
