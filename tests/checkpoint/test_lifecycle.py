"""Checkpoint lifecycle edges: drift rejection, unregister, re-register.

Beyond the straight-line snapshot/restore path (tests/checkpoint/
test_restore_golden.py), the checkpoint subsystem has to behave at the
lifecycle seams: a query unregistered before the snapshot must not
reappear after restore, a restored engine must accept brand-new query
registrations, restoring the same checkpoint twice must be idempotent,
and any restore-time configuration drift beyond the sanctioned shard
re-layout must be refused with a typed error before any state is
attached.
"""

import pytest

from repro.bench.experiments import Scale, _stream
from repro.checkpoint import DirectoryCheckpointStore
from repro.core.windows import HOUR
from repro.engine.session import EngineConfig, StreamingGraphEngine
from repro.errors import CheckpointError
from repro.workloads import QUERIES, labels_for

SCALE = Scale(n_edges=120, n_vertices=30, window=6 * HOUR, slide=HOUR)


@pytest.fixture(scope="module")
def stream():
    return _stream("snb", SCALE)


def _plan(query_name):
    return QUERIES[query_name].plan(
        labels_for(query_name, "snb"), SCALE.sliding_window()
    )


def _checkpoint_after(stream, cut, store, config=None, queries=("Q1",)):
    engine = StreamingGraphEngine(config or EngineConfig(backend="sga"))
    for name in queries:
        engine.register(_plan(name), name=name)
    engine.push_many(stream[:cut])
    checkpoint_id = engine.checkpoint(store)
    engine.close()
    return checkpoint_id


class TestConfigDrift:
    def test_path_impl_drift_rejected(self, stream, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        _checkpoint_after(stream, 60, store)
        with pytest.raises(
            CheckpointError, match=r"field\(s\) \['path_impl'\] differ"
        ):
            StreamingGraphEngine.restore(store, path_impl="negative")

    def test_execution_drift_rejected(self, stream, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        _checkpoint_after(
            stream, 60, store, EngineConfig(backend="sga", execution="rows")
        )
        with pytest.raises(
            CheckpointError, match=r"field\(s\) \['execution'\]"
        ):
            StreamingGraphEngine.restore(
                store, config=EngineConfig(backend="sga", execution="columnar")
            )

    def test_serial_to_sharded_rejected(self, stream, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        _checkpoint_after(stream, 60, store)
        with pytest.raises(
            CheckpointError, match="requires both shard counts >= 2"
        ):
            StreamingGraphEngine.restore(store, shards=2)

    def test_sharded_to_serial_rejected(self, stream, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        _checkpoint_after(
            stream,
            60,
            store,
            EngineConfig(backend="sga", shards=2, execution="columnar"),
        )
        with pytest.raises(
            CheckpointError, match="requires both shard counts >= 2"
        ):
            StreamingGraphEngine.restore(store, shards=1)

    def test_stored_config_is_the_default(self, stream, tmp_path):
        """Restore with no config inherits the checkpoint's own config."""
        store = DirectoryCheckpointStore(str(tmp_path))
        _checkpoint_after(
            stream, 60, store, EngineConfig(backend="sga", execution="rows")
        )
        restored = StreamingGraphEngine.restore(store)
        assert restored.config.execution == "rows"
        restored.close()


class TestUnregisterInteraction:
    def test_unregistered_query_stays_gone(self, stream, tmp_path):
        cut = len(stream) // 2
        store = DirectoryCheckpointStore(str(tmp_path))

        engine = StreamingGraphEngine(EngineConfig(backend="sga"))
        engine.register(_plan("Q1"), name="Q1")
        engine.register(_plan("Q5"), name="Q5")
        engine.push_many(stream[:cut])
        engine.unregister("Q5")
        engine.checkpoint(store)
        engine.close()

        ref = StreamingGraphEngine(EngineConfig(backend="sga"))
        ref_handle = ref.register(_plan("Q1"), name="Q1")
        ref.push_many(stream[:cut])
        ref.push_many(stream[cut:])

        restored = StreamingGraphEngine.restore(store)
        assert restored.query_names == ("Q1",)
        restored.push_many(stream[cut:])
        assert restored.handle("Q1").results() == ref_handle.results()
        restored.close()
        ref.close()

    def test_register_new_query_after_restore(self, stream, tmp_path):
        cut = len(stream) // 2
        store = DirectoryCheckpointStore(str(tmp_path))
        _checkpoint_after(stream, cut, store)

        restored = StreamingGraphEngine.restore(store)
        fresh = restored.register(_plan("Q5"), name="Q5")
        restored.push_many(stream[cut:])

        # The late-registered query sees only the suffix, like a live
        # registration at the same point would.
        ref = StreamingGraphEngine(EngineConfig(backend="sga"))
        ref_q1 = ref.register(_plan("Q1"), name="Q1")
        ref.push_many(stream[:cut])
        ref_q5 = ref.register(_plan("Q5"), name="Q5")
        ref.push_many(stream[cut:])

        assert restored.handle("Q1").results() == ref_q1.results()
        assert fresh.results() == ref_q5.results()
        restored.close()
        ref.close()


class TestDoubleRestore:
    def test_restore_twice_is_idempotent(self, stream, tmp_path):
        cut = len(stream) // 2
        store = DirectoryCheckpointStore(str(tmp_path))
        _checkpoint_after(stream, cut, store)

        first = StreamingGraphEngine.restore(store)
        second = StreamingGraphEngine.restore(store)
        first.push_many(stream[cut:])
        second.push_many(stream[cut:])
        assert first.handle("Q1").results() == second.handle("Q1").results()
        assert (
            first.handle("Q1").coverage() == second.handle("Q1").coverage()
        )
        first.close()
        second.close()

    def test_restored_engine_can_checkpoint_again(self, stream, tmp_path):
        third = len(stream) // 3
        store = DirectoryCheckpointStore(str(tmp_path))
        _checkpoint_after(stream, third, store)

        mid = StreamingGraphEngine.restore(store)
        mid.push_many(stream[third : 2 * third])
        second_id = mid.checkpoint(store)
        mid.close()

        final = StreamingGraphEngine.restore(store, checkpoint_id=second_id)
        final.push_many(stream[2 * third :])

        ref = StreamingGraphEngine(EngineConfig(backend="sga"))
        ref_handle = ref.register(_plan("Q1"), name="Q1")
        ref.push_many(stream[:third])
        ref.push_many(stream[third : 2 * third])
        ref.push_many(stream[2 * third :])

        assert final.handle("Q1").results() == ref_handle.results()
        final.close()
        ref.close()


class TestStateBreakdown:
    def test_breakdown_reports_rows_and_bytes(self, stream):
        engine = StreamingGraphEngine(EngineConfig(backend="sga"))
        engine.register(_plan("Q1"), name="Q1")
        engine.push_many(stream)
        breakdown = engine.state_breakdown()
        assert breakdown, "stateful operators expected"
        for name, entry in breakdown.items():
            assert set(entry) >= {"rows", "bytes"}, name
            assert entry["rows"] >= 0
            assert entry["bytes"] >= 0
        assert sum(e["rows"] for e in breakdown.values()) > 0
        assert sum(e["bytes"] for e in breakdown.values()) > 0
        engine.close()

    def test_breakdown_survives_restore(self, stream, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        engine = StreamingGraphEngine(EngineConfig(backend="sga"))
        engine.register(_plan("Q1"), name="Q1")
        engine.push_many(stream)
        before = engine.state_breakdown()
        engine.checkpoint(store)
        engine.close()
        restored = StreamingGraphEngine.restore(store)
        assert restored.state_breakdown() == before
        restored.close()


class TestCheckpointMeta:
    def test_meta_records_boundary_and_queries(self, stream, tmp_path):
        store = DirectoryCheckpointStore(str(tmp_path))
        engine = StreamingGraphEngine(EngineConfig(backend="sga"))
        engine.register(_plan("Q1"), name="Q1")
        engine.register(_plan("Q5"), name="Q5")
        engine.push_many(stream)
        engine.checkpoint(store, note="pre-deploy")
        boundary = engine.watermark
        engine.close()

        meta = store.open().meta
        assert meta["kind"] == "engine"
        assert meta["boundary"] == boundary
        assert sorted(meta["queries"]) == ["Q1", "Q5"]
        assert meta["note"] == "pre-deploy"
