"""Unit tests for the benchmark harness and experiment registry."""

from repro.bench import (
    fig10a_window_size,
    fig10b_slide,
    fig11_dd_slide,
    format_rows,
    plan_space,
    run_dd_bench,
    run_sga_bench,
    table2_rows,
    table3_rows,
)
from repro.bench.experiments import Scale
from repro.core.windows import HOUR, SlidingWindow
from repro.datasets import uniform_stream
from repro.query.parser import parse_rq
from repro.workloads import QUERIES

TINY = Scale(n_edges=300, n_vertices=60, window=4 * HOUR, slide=HOUR)


class TestHarness:
    def test_sga_bench_metrics(self):
        window = SlidingWindow(50, 10)
        plan = QUERIES["Q1"].plan({"a": "a", "b": "b", "c": "c"}, window)
        stream = uniform_stream(200, 30, ("a",), seed=1, max_gap=2)
        result = run_sga_bench(plan, stream)
        assert result.system == "SGA[negative]"
        assert result.edges == 200
        assert result.throughput > 0
        assert result.slides >= 1
        assert result.results > 0

    def test_dd_bench_metrics(self):
        window = SlidingWindow(50, 10)
        program = parse_rq("Answer(x,y) <- a+(x,y) as A.")
        stream = uniform_stream(200, 30, ("a",), seed=1, max_gap=2)
        result = run_dd_bench(program, stream, window)
        assert result.system == "DD"
        assert result.edges == 200
        assert result.throughput > 0

    def test_row_shape(self):
        window = SlidingWindow(50, 10)
        plan = QUERIES["Q1"].plan({"a": "a", "b": "b", "c": "c"}, window)
        stream = uniform_stream(100, 30, ("a",), seed=1, max_gap=2)
        row = run_sga_bench(plan, stream).row(dataset="so", query="Q1")
        assert row["dataset"] == "so"
        assert "throughput (edges/s)" in row


class TestExperiments:
    def test_table2_produces_rows(self):
        rows = table2_rows(TINY, queries=("Q1",))
        # 2 datasets x 1 query x 2 systems
        assert len(rows) == 4
        systems = {row["system"] for row in rows}
        assert systems == {"SGA[negative]", "DD"}

    def test_table3_reports_improvement(self):
        rows = table3_rows(TINY, datasets=("so",), queries=("Q1",))
        assert len(rows) == 1
        assert "improvement_pct" in rows[0]

    def test_fig10a_sweeps_windows(self):
        rows = fig10a_window_size(TINY, multipliers=(1, 2), queries=("Q1",))
        sizes = {row["window_ticks"] for row in rows}
        assert sizes == {TINY.window, 2 * TINY.window}

    def test_fig10b_and_fig11_sweep_slides(self):
        slides = (HOUR // 2, HOUR)
        for experiment in (fig10b_slide, fig11_dd_slide):
            rows = experiment(TINY, slides=slides, queries=("Q1",))
            assert {row["slide_ticks"] for row in rows} == set(slides)

    def test_plan_space_q4(self):
        rows = plan_space("Q4", TINY, datasets=("so",))
        assert {row["plan"] for row in rows} == {"SGA", "P1", "P2", "P3"}

    def test_plan_space_q2(self):
        rows = plan_space("Q2", TINY, datasets=("snb",))
        assert {row["plan"] for row in rows} == {"SGA", "P1"}


class TestReporting:
    def test_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_columns_ordered_and_padded(self):
        rows = [
            {"query": "Q1", "system": "SGA", "throughput (edges/s)": 10.0},
            {"query": "Q2", "system": "DD", "throughput (edges/s)": 123456.5},
        ]
        table = format_rows(rows, title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("query")
        assert "123456.5" in table

    def test_missing_cells_blank(self):
        rows = [{"query": "Q1"}, {"query": "Q2", "extra": 1}]
        table = format_rows(rows)
        assert "extra" in table
