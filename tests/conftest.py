"""Shared fixtures and stream builders for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import SGE, SlidingWindow


class SessionHarness:
    """One-query engine session with the historical processor's surface.

    Test plumbing over the session API (``StreamingGraphEngine`` +
    ``QueryHandle``): pre-session tests keep their call shape without
    routing through the deprecated facades (which the suite now treats
    as errors outside the dedicated shim tests).
    """

    _CONFIG_FIELDS = frozenset(
        {
            "backend",
            "path_impl",
            "materialize_paths",
            "coalesce_intermediate",
            "batch_size",
            "late_policy",
            "execution",
            "shards",
            "shard_transport",
        }
    )

    def __init__(self, query, **options):
        from repro.engine.session import EngineConfig, StreamingGraphEngine

        config = {
            key: options.pop(key)
            for key in list(options)
            if key in self._CONFIG_FIELDS
        }
        self.engine = StreamingGraphEngine(EngineConfig(**config))
        self.handle = self.engine.register(query, name="q0", **options)
        self.plan = getattr(self.handle, "plan", None)

    @classmethod
    def from_datalog(cls, text, window, label_windows=None, **options):
        from repro.ql.query import Query

        return cls(
            Query.datalog(text, window, label_windows=label_windows), **options
        )

    @classmethod
    def from_gcore(cls, text, **options):
        from repro.ql.query import Query

        return cls(Query.gcore(text), **options)

    # streaming --------------------------------------------------------
    def push(self, edge):
        self.engine.push(edge)

    def delete(self, edge):
        self.engine.delete(edge)

    def advance_to(self, t):
        self.engine.advance_to(t)

    def run(self, stream):
        return self.engine.push_many(stream)

    # reads ------------------------------------------------------------
    def results(self):
        return self.handle.results()

    def coverage(self):
        return self.handle.coverage()

    def valid_at(self, t):
        return self.handle.valid_at(t)

    def result_count(self):
        return self.handle.result_count()

    def clear_results(self):
        return self.handle.clear_results()

    def tap(self, label):
        return self.engine.tap(label)

    def state_size(self):
        return self.engine.state_size()


def make_stream(
    seed: int,
    n_edges: int,
    n_vertices: int,
    labels: tuple[str, ...],
    max_gap: int = 3,
) -> list[SGE]:
    """A random timestamp-ordered sge stream for tests."""
    rng = random.Random(seed)
    t = 0
    edges = []
    for _ in range(n_edges):
        t += rng.randint(0, max_gap)
        u = rng.randrange(n_vertices)
        v = rng.randrange(n_vertices)
        edges.append(SGE(u, v, rng.choice(labels), t))
    return edges


def streams_by_label(edges: list[SGE]) -> dict[str, list[SGE]]:
    out: dict[str, list[SGE]] = {}
    for edge in edges:
        out.setdefault(edge.label, []).append(edge)
    return out


@pytest.fixture
def window24() -> SlidingWindow:
    return SlidingWindow(24)


@pytest.fixture
def paper_stream() -> list[SGE]:
    """The input graph stream of Figure 2 in the paper."""
    return [
        SGE("u", "v", "follows", 7),
        SGE("v", "b", "posts", 10),
        SGE("y", "u", "follows", 13),
        SGE("v", "c", "posts", 17),
        SGE("u", "a", "posts", 22),
        SGE("y", "a", "likes", 28),
        SGE("u", "b", "likes", 29),
        SGE("u", "c", "likes", 30),
    ]


PAPER_QUERY = """
RL(u1, u2)   <- likes(u1, m1), follows+(u1, u2) as FP, posts(u2, m1).
Notify(u, m) <- RL+(u, v) as RLP, posts(v, m).
Answer(u, m) <- Notify(u, m).
"""
