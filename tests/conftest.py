"""Shared fixtures and stream builders for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import SGE, SlidingWindow


def make_stream(
    seed: int,
    n_edges: int,
    n_vertices: int,
    labels: tuple[str, ...],
    max_gap: int = 3,
) -> list[SGE]:
    """A random timestamp-ordered sge stream for tests."""
    rng = random.Random(seed)
    t = 0
    edges = []
    for _ in range(n_edges):
        t += rng.randint(0, max_gap)
        u = rng.randrange(n_vertices)
        v = rng.randrange(n_vertices)
        edges.append(SGE(u, v, rng.choice(labels), t))
    return edges


def streams_by_label(edges: list[SGE]) -> dict[str, list[SGE]]:
    out: dict[str, list[SGE]] = {}
    for edge in edges:
        out.setdefault(edge.label, []).append(edge)
    return out


@pytest.fixture
def window24() -> SlidingWindow:
    return SlidingWindow(24)


@pytest.fixture
def paper_stream() -> list[SGE]:
    """The input graph stream of Figure 2 in the paper."""
    return [
        SGE("u", "v", "follows", 7),
        SGE("v", "b", "posts", 10),
        SGE("y", "u", "follows", 13),
        SGE("v", "c", "posts", 17),
        SGE("u", "a", "posts", 22),
        SGE("y", "a", "likes", 28),
        SGE("u", "b", "likes", 29),
        SGE("u", "c", "likes", 30),
    ]


PAPER_QUERY = """
RL(u1, u2)   <- likes(u1, m1), follows+(u1, u2) as FP, posts(u2, m1).
Notify(u, m) <- RL+(u, v) as RLP, posts(v, m).
Answer(u, m) <- Notify(u, m).
"""
